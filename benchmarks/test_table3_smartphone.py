"""Table 3: the smart phone real-life example.

Two rows — fixed-voltage and DVS — each comparing the
probability-neglecting with the probability-aware synthesis on the
eight-mode smart phone of paper Fig. 1a.  Shape checks follow the
paper's reading of its Table 3: considering probabilities helps in
both rows, DVS lowers absolute power for both policies, and the
combined effect (fixed-voltage/no-Ψ → DVS+Ψ) is a large overall
reduction (the paper reports ≈67 % on its instance).
"""

from typing import Dict

import pytest

from repro.analysis.experiments import ComparisonResult, compare_policies
from repro.analysis.reporting import format_smartphone_table
from repro.benchgen.smartphone import smartphone_problem
from repro.synthesis.config import DvsMethod

from benchmarks.conftest import BENCH_RUNS_DVS, archive, bench_config

_RESULTS: Dict[str, ComparisonResult] = {}


@pytest.mark.parametrize(
    "label, dvs",
    [("w/o DVS", DvsMethod.NONE), ("with DVS", DvsMethod.GRADIENT)],
)
def test_table3_row(benchmark, label, dvs):
    problem = smartphone_problem()
    config = bench_config().with_updates(dvs=dvs)

    def run() -> ComparisonResult:
        return compare_policies(
            problem, config, runs=BENCH_RUNS_DVS, base_seed=400
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[label] = result
    assert result.without.mean_power > 0


def test_table3_report(benchmark):
    assert set(_RESULTS) == {"w/o DVS", "with DVS"}

    def render() -> str:
        return format_smartphone_table(
            _RESULTS,
            title=(
                f"Table 3: Results of Smart Phone Experiments "
                f"({BENCH_RUNS_DVS} runs averaged)"
            ),
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    archive("table3_smartphone", text)

    fixed = _RESULTS["w/o DVS"]
    dvs = _RESULTS["with DVS"]
    # DVS reduces absolute power for both policies (Table 3's columns).
    assert dvs.without.mean_power < fixed.without.mean_power
    assert (
        dvs.with_probabilities.mean_power
        < fixed.with_probabilities.mean_power
    )
    # Combined saving: fixed-voltage/no-Ψ -> DVS+Ψ must be substantial.
    overall = 1.0 - (
        dvs.with_probabilities.mean_power / fixed.without.mean_power
    )
    assert overall > 0.30
