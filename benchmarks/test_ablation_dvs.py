"""Ablation: gradient (PV-DVS) vs naive uniform voltage selection.

DESIGN.md calls out the energy-gradient slack distribution as a design
choice worth ablating: the naive baseline stretches every scalable
activity by one global factor, which wastes the slack of off-critical
activities.  The benchmark synthesises three suite instances with each
method and reports the power gap.
"""

import statistics
from typing import Dict, Tuple

import pytest

from repro.benchgen.suite import suite_problem
from repro.synthesis.config import DvsMethod
from repro.synthesis.cosynthesis import MultiModeSynthesizer

from benchmarks.conftest import archive, bench_config

INSTANCES = ("mul5", "mul9", "mul11")
RUNS = 2

_RESULTS: Dict[str, Dict[str, float]] = {}


@pytest.mark.parametrize("name", INSTANCES)
def test_dvs_method_ablation(benchmark, name):
    problem = suite_problem(name)

    def run() -> Dict[str, float]:
        powers: Dict[str, float] = {}
        for method in (
            DvsMethod.NONE,
            DvsMethod.UNIFORM,
            DvsMethod.GRADIENT,
        ):
            config = bench_config().with_updates(dvs=method)
            values = []
            for seed in range(RUNS):
                result = MultiModeSynthesizer(
                    problem, config.with_updates(seed=500 + seed)
                ).run()
                values.append(result.average_power)
            powers[method.value] = statistics.mean(values)
        return powers

    powers = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = powers
    # Any DVS must beat no DVS; the gradient method must not lose to
    # the naive one beyond noise.
    assert powers["gradient"] < powers["none"]
    assert powers["uniform"] <= powers["none"] + 1e-12
    assert powers["gradient"] <= powers["uniform"] * 1.10


def test_dvs_ablation_report(benchmark):
    assert _RESULTS

    def render() -> str:
        lines = [
            "Ablation: DVS voltage-selection method",
            "=" * 54,
            f"{'instance':<10}{'no DVS':>12}{'uniform':>12}"
            f"{'gradient':>12}{'grad vs uni':>14}",
            "-" * 60,
        ]
        for name, powers in _RESULTS.items():
            gain = 100.0 * (
                1.0 - powers["gradient"] / powers["uniform"]
            )
            lines.append(
                f"{name:<10}"
                f"{powers['none'] * 1e3:>11.3f} "
                f"{powers['uniform'] * 1e3:>11.3f} "
                f"{powers['gradient'] * 1e3:>11.3f} "
                f"{gain:>12.2f} %"
            )
        return "\n".join(lines)

    archive(
        "ablation_dvs_method",
        benchmark.pedantic(render, rounds=1, iterations=1),
    )
