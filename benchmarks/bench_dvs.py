"""PV-DVS kernel microbench: legacy loop vs array kernels vs warm start.

Times :func:`repro.dvs.pv_dvs.scale_schedule` in isolation — no GA, no
mode cache — over a fixed-seed corpus of random-mapping schedules per
instance, so the kernel's own speedup is visible without the engine's
other phases diluting it.  Three arms per case:

``legacy``
    ``vector=False`` — the original object-graph descent loop.
``vector``
    ``vector=True`` — the struct-of-arrays kernels.  Asserted
    bit-identical to ``legacy`` on every corpus entry before timing.
``warm``
    ``vector=True, warm_start=True`` — the analytical continuous
    relaxation seeding the descent (result changes; never worse final
    energy, asserted per entry).

Cases span the paper-scale gradient suite (where fixed per-call
overhead dominates) and the ``stress1``/``stress2`` tier (200+ tasks
per mode — where the kernels' asymptotic advantage shows).  Results
are written to ``benchmarks/results/bench_dvs.json``; ``--quick`` runs
a two-case smoke subset (used by ``make bench-smoke``) and fails on
any identity or never-worse violation.

Usage::

    python benchmarks/bench_dvs.py            # full corpus
    python benchmarks/bench_dvs.py --quick    # smoke subset
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import random
import sys
import time
from typing import Dict, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchgen import registry  # noqa: E402
from repro.dvs.pv_dvs import scale_schedule  # noqa: E402
from repro.engine.decode_cache import context_for  # noqa: E402
from repro.mapping.cores import allocate_cores  # noqa: E402
from repro.mapping.encoding import MappingString  # noqa: E402
from repro.problem import Problem  # noqa: E402
from repro.scheduling.list_scheduler import schedule_mode  # noqa: E402

#: (instance, corpus genomes full, corpus genomes quick)
CASES: Tuple[Tuple[str, int, int], ...] = (
    ("mul1", 25, 4),
    ("mul3", 20, 0),
    ("mul8", 15, 0),
    ("smartphone", 20, 0),
    ("stress1", 3, 1),
    ("stress2", 2, 0),
)

#: Relative tolerance of the warm-start never-worse assertion: the
#: warm descent must not end above the cold descent's final energy
#: beyond float accumulation noise.
NEVER_WORSE_RTOL = 1e-12


def _corpus(problem: Problem, genomes: int, seed: int):
    """Fixed-seed random-mapping schedules across all modes."""
    rng = random.Random(seed)
    cases = []
    for _ in range(genomes):
        genome = MappingString.random(problem, rng)
        try:
            cores = allocate_cores(problem, genome)
        except Exception:
            continue
        for mode in problem.omsm.modes:
            try:
                schedule = schedule_mode(
                    problem, mode, genome.mode_mapping(mode.name), cores
                )
            except Exception:
                continue
            cases.append((mode, schedule))
    return cases


def _identical(a, b) -> bool:
    return (
        len(a.tasks) == len(b.tasks)
        and len(a.comms) == len(b.comms)
        and all(x == y for x, y in zip(a.tasks, b.tasks))
        and all(x == y for x, y in zip(a.comms, b.comms))
    )


def _energy(schedule) -> float:
    return sum(task.energy for task in schedule.tasks)


def run_case(
    name: str, genomes: int, seed: int, repeats: int
) -> Dict[str, object]:
    problem = registry.get(name)
    context = context_for(problem)
    corpus = _corpus(problem, genomes, seed)

    identical = True
    never_worse = True
    for mode, schedule in corpus:
        legacy = scale_schedule(
            problem, mode, schedule, context=context, vector=False
        )
        vector = scale_schedule(
            problem, mode, schedule, context=context, vector=True
        )
        if not _identical(legacy, vector):
            identical = False
        warm = scale_schedule(
            problem,
            mode,
            schedule,
            context=context,
            vector=True,
            warm_start=True,
        )
        if _energy(warm) > _energy(vector) * (1.0 + NEVER_WORSE_RTOL):
            never_worse = False

    def timed(**kwargs) -> float:
        best = math.inf
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            for mode, schedule in corpus:
                scale_schedule(
                    problem, mode, schedule, context=context, **kwargs
                )
            elapsed = time.perf_counter() - started
            if elapsed < best:
                best = elapsed
        return best / len(corpus)

    legacy_us = timed(vector=False) * 1e6
    vector_us = timed(vector=True) * 1e6
    warm_us = timed(vector=True, warm_start=True) * 1e6
    return {
        "name": name,
        "corpus_calls": len(corpus),
        "identical": identical,
        "warm_never_worse": never_worse,
        "legacy_us_per_call": round(legacy_us, 2),
        "vector_us_per_call": round(vector_us, 2),
        "warm_us_per_call": round(warm_us, 2),
        "speedup_vector": round(legacy_us / vector_us, 4),
        "speedup_warm": round(legacy_us / warm_us, 4),
    }


def _geomean(values: List[float]) -> Optional[float]:
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="two-case smoke subset (used by 'make bench-smoke')",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats, best-of-N (default: 3 full, 1 quick)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help=(
            "output JSON path (default: benchmarks/results/"
            "bench_dvs.json, or bench_dvs_quick.json with --quick)"
        ),
    )
    args = parser.parse_args(argv)
    repeats = args.repeats
    if repeats is None:
        repeats = 1 if args.quick else 3

    cases = []
    for name, full, quick in CASES:
        genomes = quick if args.quick else full
        if not genomes:
            continue
        print(f"[bench_dvs] running {name} ...", flush=True)
        case = run_case(name, genomes, args.seed, repeats)
        cases.append(case)
        print(
            f"[bench_dvs]   legacy {case['legacy_us_per_call']:.0f}us, "
            f"vector {case['vector_us_per_call']:.0f}us "
            f"({case['speedup_vector']:.2f}x), "
            f"warm {case['warm_us_per_call']:.0f}us, "
            f"identical={case['identical']}, "
            f"never_worse={case['warm_never_worse']}",
            flush=True,
        )

    report = {
        "benchmark": "dvs",
        "quick": args.quick,
        "seed": args.seed,
        "repeats": repeats,
        "cases": cases,
        "aggregate": {
            "geomean_speedup_vector": _geomean(
                [c["speedup_vector"] for c in cases]
            ),
            "all_identical": all(c["identical"] for c in cases),
            "warm_never_worse": all(c["warm_never_worse"] for c in cases),
        },
    }
    if args.out is None:
        stem = "bench_dvs_quick.json" if args.quick else "bench_dvs.json"
        out_path = REPO_ROOT / "benchmarks" / "results" / stem
    else:
        out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    aggregate = report["aggregate"]
    print(
        f"[bench_dvs] geomean vector speedup "
        f"{aggregate['geomean_speedup_vector']:.2f}x; report written to "
        f"{out_path}"
    )
    if not aggregate["all_identical"]:
        print("[bench_dvs] FAIL: vector kernels diverged from legacy")
        return 1
    if not aggregate["warm_never_worse"]:
        print("[bench_dvs] FAIL: warm start ended above the cold start")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
