"""Ablation: shared voltage rail vs idealised per-core rails.

The paper constrains all cores of one hardware component to a single
supply rail (per-core DC/DC converters cost area and power) and pays
for it with the Fig. 5 serialisation during voltage selection.  This
benchmark quantifies what per-core rails would buy on instances whose
hardware components are DVS-capable — bounding the benefit the paper
gives up.
"""

import statistics
from typing import Dict

import pytest

from repro.benchgen.suite import suite_problem
from repro.synthesis.config import DvsMethod
from repro.synthesis.cosynthesis import MultiModeSynthesizer

from benchmarks.conftest import archive, bench_config

INSTANCES = ("mul4", "mul5", "mul11")
RUNS = 2

_RESULTS: Dict[str, Dict[str, float]] = {}


@pytest.mark.parametrize("name", INSTANCES)
def test_shared_vs_per_core_rail(benchmark, name):
    problem = suite_problem(name)

    def run() -> Dict[str, float]:
        outcome: Dict[str, float] = {}
        for label, shared in (("shared", True), ("per-core", False)):
            config = bench_config().with_updates(
                dvs=DvsMethod.GRADIENT, dvs_shared_rail=shared
            )
            values = []
            for seed in range(RUNS):
                result = MultiModeSynthesizer(
                    problem, config.with_updates(seed=550 + seed)
                ).run()
                values.append(result.average_power)
            outcome[label] = statistics.mean(values)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = outcome
    # The idealised per-core variant can only help (more freedom), up
    # to search noise.
    assert outcome["per-core"] <= outcome["shared"] * 1.10


def test_shared_rail_report(benchmark):
    assert _RESULTS

    def render() -> str:
        lines = [
            "Ablation: shared rail (paper) vs per-core rails (ideal)",
            "=" * 58,
            f"{'instance':<10}{'shared (mW)':>14}{'per-core (mW)':>16}"
            f"{'gap (%)':>10}",
            "-" * 50,
        ]
        for name, outcome in _RESULTS.items():
            gap = 100.0 * (
                1.0 - outcome["per-core"] / outcome["shared"]
            )
            lines.append(
                f"{name:<10}{outcome['shared'] * 1e3:>14.3f}"
                f"{outcome['per-core'] * 1e3:>16.3f}{gap:>10.2f}"
            )
        return "\n".join(lines)

    archive(
        "ablation_shared_rail",
        benchmark.pedantic(render, rounds=1, iterations=1),
    )
