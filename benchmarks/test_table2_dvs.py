"""Table 2: considering execution probabilities, with DVS.

Same protocol as Table 1 but with the PV-DVS gradient voltage
selection active in the inner loop (``REPRO_BENCH_RUNS_DVS``
repetitions — DVS evaluation is several times more expensive, exactly
as the paper's CPU-time columns show).  Shape checks: the
probability-aware policy still wins on average, and the DVS powers are
below the corresponding Table-1 powers for every instance.
"""

import statistics
from typing import Dict

import pytest

from repro.analysis.experiments import ComparisonResult, compare_policies
from repro.analysis.paper_data import TABLE2
from repro.analysis.reporting import (
    format_comparison_table,
    format_paper_comparison,
)
from repro.benchgen.suite import SUITE_SPECS, suite_problem
from repro.synthesis.config import DvsMethod

from benchmarks.conftest import BENCH_RUNS_DVS, archive, bench_config

_RESULTS: Dict[str, ComparisonResult] = {}


@pytest.mark.parametrize("name", [spec.name for spec in SUITE_SPECS])
def test_table2_instance(benchmark, name):
    problem = suite_problem(name)
    config = bench_config().with_updates(dvs=DvsMethod.GRADIENT)

    def run() -> ComparisonResult:
        return compare_policies(
            problem, config, runs=BENCH_RUNS_DVS, base_seed=400
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = result
    assert result.without.mean_power > 0


def test_table2_report(benchmark):
    ordered = [
        _RESULTS[spec.name]
        for spec in SUITE_SPECS
        if spec.name in _RESULTS
    ]
    assert ordered, "instance benchmarks must run first"

    def render() -> str:
        table = format_comparison_table(
            ordered,
            title=(
                f"Table 2: Experimental Results with DVS "
                f"({BENCH_RUNS_DVS} runs averaged)"
            ),
        )
        paper = format_paper_comparison(
            ordered,
            {row.example: row for row in TABLE2},
            title="Table 2 vs paper (reduction %)",
        )
        return table + "\n\n" + paper

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    archive("table2_dvs", text)

    reductions = [r.reduction_pct for r in ordered]
    assert statistics.mean(reductions) > 0.0
