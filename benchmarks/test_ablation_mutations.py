"""Ablation: the paper's improvement mutations and Ψ-biased targeting.

The paper attributes part of the GA's quality to four directed
mutations (Fig. 4 lines 19–22) and we additionally bias the shut-down
mutation toward probable modes.  This benchmark synthesises suite
instances with the operators enabled/disabled and reports the best
powers found under an identical evaluation budget.
"""

import statistics
from typing import Dict

import pytest

from repro.benchgen.suite import suite_problem
from repro.synthesis.cosynthesis import MultiModeSynthesizer

from benchmarks.conftest import archive, bench_config

INSTANCES = ("mul9", "mul11")
RUNS = 2

VARIANTS = {
    "full": {},
    "no improvement ops": dict(
        enable_shutdown_improvement=False,
        enable_area_improvement=False,
        enable_timing_improvement=False,
        enable_transition_improvement=False,
    ),
    "no shutdown op": dict(enable_shutdown_improvement=False),
    "unbiased shutdown": dict(bias_shutdown_by_probability=False),
}

_RESULTS: Dict[str, Dict[str, float]] = {}


@pytest.mark.parametrize("name", INSTANCES)
def test_mutation_ablation(benchmark, name):
    problem = suite_problem(name)

    def run() -> Dict[str, float]:
        outcome: Dict[str, float] = {}
        for label, overrides in VARIANTS.items():
            config = bench_config().with_updates(**overrides)
            values = []
            for seed in range(RUNS):
                result = MultiModeSynthesizer(
                    problem, config.with_updates(seed=600 + seed)
                ).run()
                values.append(result.average_power)
            outcome[label] = statistics.mean(values)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = outcome
    for power in outcome.values():
        assert power > 0


def test_mutation_ablation_report(benchmark):
    assert _RESULTS

    def render() -> str:
        labels = list(VARIANTS)
        header = f"{'instance':<10}" + "".join(
            f"{label:>22}" for label in labels
        )
        lines = [
            "Ablation: improvement mutations (mean power, mW)",
            "=" * len(header),
            header,
            "-" * len(header),
        ]
        for name, outcome in _RESULTS.items():
            lines.append(
                f"{name:<10}"
                + "".join(
                    f"{outcome[label] * 1e3:>22.3f}" for label in labels
                )
            )
        return "\n".join(lines)

    archive(
        "ablation_mutations",
        benchmark.pedantic(render, rounds=1, iterations=1),
    )
