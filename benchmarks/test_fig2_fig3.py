"""Figures 2 and 3: the motivational examples, to the printed digit.

Fig. 2's two mappings must evaluate to exactly the published energies
(26.7158 mW·s without probabilities, 15.7423 mW·s with — a 41 %
reduction), and the synthesis must rediscover the probability-aware
optimum.  Fig. 3's two mappings must differ exactly in the
shut-down opportunity of PE1/CL0 during mode O2.
"""

import pytest

from repro.examples_support import (
    fig2_mapping_with_probabilities,
    fig2_mapping_without_probabilities,
    fig2_problem,
    fig3_mapping_multiple_implementations,
    fig3_mapping_shared_core,
    fig3_problem,
    weighted_task_energy,
)
from repro.synthesis import SynthesisConfig, synthesize
from repro.synthesis.evaluator import evaluate_mapping

from benchmarks.conftest import archive


def test_fig2_energies(benchmark):
    problem = fig2_problem()

    def run():
        without = weighted_task_energy(
            problem, fig2_mapping_without_probabilities(problem)
        )
        with_p = weighted_task_energy(
            problem, fig2_mapping_with_probabilities(problem)
        )
        return without, with_p

    without, with_p = benchmark(run)
    assert without == pytest.approx(26.7158e-3, abs=1e-9)
    assert with_p == pytest.approx(15.7423e-3, abs=1e-9)
    reduction = 100.0 * (without - with_p) / without
    archive(
        "fig2_motivational",
        "Fig. 2 (Example 1) energies\n"
        "===========================\n"
        f"mapping w/o Ψ (Fig. 2b): {without * 1e3:.4f} mW·s "
        "(paper: 26.7158)\n"
        f"mapping with Ψ (Fig. 2c): {with_p * 1e3:.4f} mW·s "
        "(paper: 15.7423)\n"
        f"reduction: {reduction:.1f} % (paper: 41 %)",
    )


def test_fig2_synthesis_rediscovers_optimum(benchmark):
    problem = fig2_problem(period=1.0)

    def run():
        return synthesize(
            problem,
            SynthesisConfig(
                seed=1,
                population_size=20,
                max_generations=40,
                convergence_generations=10,
            ),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.average_power <= 15.7423e-3 + 1e-9


def test_fig3_shutdown(benchmark):
    problem = fig3_problem()

    def run():
        shared = evaluate_mapping(
            problem, fig3_mapping_shared_core(problem), SynthesisConfig()
        )
        multiple = evaluate_mapping(
            problem,
            fig3_mapping_multiple_implementations(problem),
            SynthesisConfig(),
        )
        return shared, multiple

    shared, multiple = benchmark(run)
    assert shared.shut_down_components("O2") == ()
    assert multiple.shut_down_components("O2") == ("PE1", "CL0")
    assert (
        multiple.metrics.average_power < shared.metrics.average_power
    )
    archive(
        "fig3_motivational",
        "Fig. 3 (Example 2) multiple implementations\n"
        "===========================================\n"
        f"shared core  : off in O2 = none, "
        f"P = {shared.metrics.average_power * 1e3:.3f} mW\n"
        f"multiple impl: off in O2 = PE1, CL0, "
        f"P = {multiple.metrics.average_power * 1e3:.3f} mW",
    )
