"""Design-space exploration: the area/power trade-off curve.

Beyond the paper: sweep the hardware area of one suite instance and
synthesise at every point, producing the cost/power curve a designer
would use to size the ASIC.  The shape check encodes the expected
monotone trend — more area never costs power (up to search noise).
"""

import pytest

from repro.benchgen.suite import suite_problem
from repro.synthesis.pareto import (
    area_power_tradeoff,
    format_tradeoff,
    pareto_front,
)

from benchmarks.conftest import archive, bench_config

SCALES = (0.4, 0.7, 1.0, 1.5, 2.5)


def test_area_power_sweep(benchmark):
    problem = suite_problem("mul11")
    config = bench_config()

    def run():
        return area_power_tradeoff(
            problem,
            scales=SCALES,
            config=config,
            runs=2,
            base_seed=520,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    archive(
        "pareto_area_power",
        "Area/power trade-off (mul11)\n"
        "============================\n" + format_tradeoff(points),
    )
    front = pareto_front(points)
    assert front
    # The largest-area point must not be worse than the smallest-area
    # point (monotone trend up to noise).
    assert points[-1].average_power <= points[0].average_power * 1.10
