"""Equation-(1) validation: analytical vs trace-driven simulated power.

Not a paper table — this benchmark validates the power model the whole
reproduction rests on.  An implementation of a suite instance is
replayed over semi-Markov mode traces of growing horizon; the simulated
average power must converge onto the analytical Equation-(1) estimate.
"""

import pytest

from repro.benchgen.suite import suite_problem
from repro.simulation.executor import simulate
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer

from benchmarks.conftest import archive


@pytest.fixture(scope="module")
def implementation():
    problem = suite_problem("mul9")
    config = SynthesisConfig(
        seed=1,
        population_size=24,
        max_generations=50,
        convergence_generations=12,
    )
    return MultiModeSynthesizer(problem, config).run().best


def test_equation1_convergence(benchmark, implementation):
    horizons = (100.0, 1000.0, 10000.0, 50000.0)

    def run():
        return [
            simulate(implementation, horizon=h, seed=42)
            for h in horizons
        ]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Equation (1) vs trace-driven simulation (mul9)",
        "=" * 52,
        f"{'horizon (s)':>12}{'simulated (mW)':>17}{'error (%)':>11}",
        "-" * 40,
    ]
    for horizon, report in zip(horizons, reports):
        lines.append(
            f"{horizon:>12.0f}{report.average_power * 1e3:>17.4f}"
            f"{report.relative_error * 100:>11.2f}"
        )
    lines.append(
        f"{'analytical':>12}"
        f"{reports[-1].analytical_power * 1e3:>17.4f}"
    )
    archive("simulation_validation", "\n".join(lines))

    # Convergence: the longest horizon lands within 5 % of Equation (1).
    assert abs(reports[-1].relative_error) < 0.05
