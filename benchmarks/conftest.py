"""Shared configuration of the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints (and archives under ``benchmarks/results/``) the paper-style
rows.  GA sizing and run counts are environment-configurable so the
default invocation finishes in minutes while paper-grade averaging
stays one variable away:

=======================  =======  =====================================
variable                 default  meaning
=======================  =======  =====================================
REPRO_BENCH_RUNS         2        optimisation runs averaged per policy
REPRO_BENCH_RUNS_DVS     1        same, for the DVS table (slower)
REPRO_BENCH_POPULATION   32       GA population size
REPRO_BENCH_GENERATIONS  90       GA generation limit
REPRO_BENCH_CONVERGENCE  18       stop after N stagnant generations
=======================  =======  =====================================

The paper averages 40 runs of a larger GA; set REPRO_BENCH_RUNS=40 to
match (hours of CPU time).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.synthesis.config import SynthesisConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


BENCH_RUNS = _env_int("REPRO_BENCH_RUNS", 2)
BENCH_RUNS_DVS = _env_int("REPRO_BENCH_RUNS_DVS", 1)
BENCH_POPULATION = _env_int("REPRO_BENCH_POPULATION", 32)
BENCH_GENERATIONS = _env_int("REPRO_BENCH_GENERATIONS", 90)
BENCH_CONVERGENCE = _env_int("REPRO_BENCH_CONVERGENCE", 18)


def bench_config() -> SynthesisConfig:
    """The GA configuration all table benchmarks share."""
    return SynthesisConfig(
        population_size=BENCH_POPULATION,
        max_generations=BENCH_GENERATIONS,
        convergence_generations=BENCH_CONVERGENCE,
    )


def archive(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
