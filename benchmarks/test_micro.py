"""Micro-benchmarks of the library's building blocks.

Statistical pytest-benchmark timings of the hot paths — mobility
analysis, list scheduling, the Fig. 5 transformation, gradient DVS and
full candidate evaluation — on the smart phone's largest mode.  These
are the per-candidate costs the GA pays thousands of times, i.e. the
drivers behind the paper's CPU-time columns.
"""

import random

import pytest

from repro.benchgen.smartphone import smartphone_problem
from repro.dvs.pv_dvs import scale_schedule
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.scheduling.list_scheduler import schedule_mode
from repro.scheduling.mobility import compute_mobilities
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.evaluator import evaluate_mapping


@pytest.fixture(scope="module")
def problem():
    return smartphone_problem()


@pytest.fixture(scope="module")
def genome(problem):
    return MappingString.random(problem, random.Random(3))


@pytest.fixture(scope="module")
def largest_mode(problem):
    return max(problem.omsm.modes, key=lambda m: len(m.task_graph))


def test_bench_mobility(benchmark, problem, genome, largest_mode):
    mode = largest_mode

    def exec_time(task_name):
        task = mode.task_graph.task(task_name)
        return problem.technology.implementation(
            task.task_type, genome.pe_of(mode.name, task_name)
        ).exec_time

    benchmark(compute_mobilities, mode, exec_time)


def test_bench_core_allocation(benchmark, problem, genome):
    benchmark(allocate_cores, problem, genome)


def test_bench_list_scheduler(benchmark, problem, genome, largest_mode):
    cores = allocate_cores(problem, genome)
    mapping = genome.mode_mapping(largest_mode.name)
    benchmark(
        schedule_mode, problem, largest_mode, mapping, cores
    )


def test_bench_gradient_dvs(benchmark, problem, genome, largest_mode):
    cores = allocate_cores(problem, genome)
    schedule = schedule_mode(
        problem,
        largest_mode,
        genome.mode_mapping(largest_mode.name),
        cores,
    )
    benchmark(scale_schedule, problem, largest_mode, schedule)


def test_bench_full_evaluation_no_dvs(benchmark, problem, genome):
    config = SynthesisConfig()
    benchmark(evaluate_mapping, problem, genome, config)


def test_bench_full_evaluation_with_dvs(benchmark, problem, genome):
    config = SynthesisConfig(dvs=DvsMethod.GRADIENT)
    benchmark(evaluate_mapping, problem, genome, config)


def test_bench_problem_generation(benchmark):
    from repro.benchgen.suite import suite_problem

    benchmark(suite_problem, "mul8")
