"""Table 1: considering execution probabilities, without DVS.

For every suite instance mul1–mul12, runs the co-synthesis with the
probability-neglecting and the probability-aware fitness
(``REPRO_BENCH_RUNS`` repetitions each, averaged) and prints the
paper-style row: average power and optimisation CPU time per policy
plus the relative reduction.  The shape check mirrors the paper's
claim: the probability-aware synthesis reduces average power on
average across the suite (individual instances may tie — the paper's
own range is 4.2–62.2 %).
"""

import statistics
from typing import Dict

import pytest

from repro.analysis.experiments import ComparisonResult, compare_policies
from repro.analysis.paper_data import TABLE1
from repro.analysis.reporting import (
    format_comparison_table,
    format_paper_comparison,
)
from repro.benchgen.suite import SUITE_SPECS, suite_problem
from repro.synthesis.config import DvsMethod

from benchmarks.conftest import BENCH_RUNS, archive, bench_config

_RESULTS: Dict[str, ComparisonResult] = {}


@pytest.mark.parametrize("name", [spec.name for spec in SUITE_SPECS])
def test_table1_instance(benchmark, name):
    problem = suite_problem(name)
    config = bench_config().with_updates(dvs=DvsMethod.NONE)

    def run() -> ComparisonResult:
        return compare_policies(
            problem, config, runs=BENCH_RUNS, base_seed=400
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = result
    assert result.without.mean_power > 0
    assert result.with_probabilities.mean_power > 0


def test_table1_report(benchmark):
    ordered = [
        _RESULTS[spec.name]
        for spec in SUITE_SPECS
        if spec.name in _RESULTS
    ]
    assert ordered, "instance benchmarks must run first"

    def render() -> str:
        table = format_comparison_table(
            ordered,
            title=(
                f"Table 1: Considering Execution Probabilities "
                f"(w/o DVS, {BENCH_RUNS} runs averaged)"
            ),
        )
        paper = format_paper_comparison(
            ordered,
            {row.example: row for row in TABLE1},
            title="Table 1 vs paper (reduction %)",
        )
        return table + "\n\n" + paper

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    archive("table1_no_dvs", text)

    reductions = [r.reduction_pct for r in ordered]
    # Shape: the probability-aware synthesis wins on average, and at
    # least half the instances individually.
    assert statistics.mean(reductions) > 0.0
    wins = sum(1 for r in reductions if r > -1.0)
    assert wins >= len(reductions) // 2
