"""Closed-loop adaptation regret against a clairvoyant oracle.

The oracle knows the mode of every visit in advance and runs each
visit on the library design with the lowest power *for that mode* —
an unattainable lower bound (it switches for free and never estimates
anything).  The benchmark drives the adaptation controller through a
three-regime trace and reports the regret of

* the static design-time deployment (no adaptation), and
* the closed loop (estimate → drift → swap),

relative to the oracle.  The closed loop must recover a substantial
part of the static deployment's regret — that gap is the entire value
proposition of the subsystem.
"""

from typing import Dict

import pytest

from repro.adaptive.controller import (
    AdaptationConfig,
    AdaptationController,
    trace_energy,
)
from repro.adaptive.drift import DriftConfig
from repro.adaptive.library import DesignLibrary, DesignRecord
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer

from benchmarks.conftest import archive
from tests.conftest import make_two_mode_problem

#: Three usage regimes: the design-time mix, an O1-heavy shift, and a
#: return towards the design-time mix.  Dwells are deterministic so the
#: benchmark is exactly reproducible.
REGIMES = (
    ("design-mix", [("O2", 0.9), ("O1", 0.1)] * 20),
    ("O1-heavy", [("O1", 2.0), ("O2", 0.2)] * 30),
    ("return", [("O2", 0.9), ("O1", 0.1)] * 20),
)

ADAPTATION = AdaptationConfig(
    half_life=5.0,
    prior_weight=1.0,
    drift=DriftConfig(
        regret_threshold=0.02,
        distance_threshold=0.4,
        min_confidence=0.3,
        cooldown=3.0,
    ),
    synthesis=SynthesisConfig(
        population_size=8, max_generations=6, seed=7
    ),
    max_resyntheses=1,
    seed=11,
)

_RESULTS: Dict[str, float] = {}


def full_trace():
    return [visit for _, visits in REGIMES for visit in visits]


def oracle_energy(library, visits):
    """Per-visit clairvoyant lower bound: free switches, true modes."""
    total = 0.0
    for mode, dwell in visits:
        total += dwell * min(
            record.mode_power(mode) for record in library.records
        )
    return total


def build_library(problem):
    design_time = MultiModeSynthesizer(
        problem,
        SynthesisConfig(population_size=8, max_generations=10, seed=3),
    ).run()
    alt = MultiModeSynthesizer(
        problem.with_probabilities({"O1": 0.9, "O2": 0.1}),
        SynthesisConfig(population_size=8, max_generations=10, seed=5),
    ).run()
    return DesignLibrary(
        [
            DesignRecord.from_result("design-time", design_time),
            DesignRecord.from_result("alt", alt),
        ]
    )


def test_adaptation_recovers_most_of_the_static_regret(benchmark):
    problem = make_two_mode_problem()
    trace = full_trace()

    def run() -> Dict[str, float]:
        library = build_library(problem)
        oracle = oracle_energy(library, trace)
        static = trace_energy(library.get("design-time"), trace)
        controller = AdaptationController(problem, library, ADAPTATION)
        adaptive = controller.run(trace).energy
        return {
            "oracle": oracle,
            "static": static,
            "adaptive": adaptive,
        }

    energy = benchmark.pedantic(run, rounds=1, iterations=1)
    static_regret = energy["static"] / energy["oracle"] - 1.0
    adaptive_regret = energy["adaptive"] / energy["oracle"] - 1.0
    _RESULTS.update(
        energy,
        static_regret=static_regret,
        adaptive_regret=adaptive_regret,
    )
    # The oracle is a true lower bound...
    assert energy["oracle"] <= energy["adaptive"]
    assert energy["oracle"] <= energy["static"]
    # ...the closed loop beats the static deployment and recovers at
    # least half of its regret relative to the oracle.
    assert adaptive_regret < static_regret
    assert adaptive_regret <= 0.5 * static_regret


def test_adaptation_regret_report(benchmark):
    assert _RESULTS

    def render() -> str:
        lines = [
            "closed-loop adaptation regret vs clairvoyant oracle",
            "(two-mode instance, design-mix -> O1-heavy -> return trace)",
            "",
            f"{'deployment':<22} {'energy [J]':>12} {'regret':>9}",
        ]
        for label, key in (
            ("clairvoyant oracle", "oracle"),
            ("static design-time", "static"),
            ("closed-loop adaptive", "adaptive"),
        ):
            regret = _RESULTS[key] / _RESULTS["oracle"] - 1.0
            lines.append(
                f"{label:<22} {_RESULTS[key]:>12.4f} {regret:>8.1%}"
            )
        recovered = 1.0 - (
            _RESULTS["adaptive_regret"] / _RESULTS["static_regret"]
            if _RESULTS["static_regret"] > 0
            else 0.0
        )
        lines.append("")
        lines.append(f"regret recovered by the closed loop: {recovered:.1%}")
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    archive("adaptation_regret", text)
    assert "regret recovered" in text
