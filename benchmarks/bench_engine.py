"""Evaluation-engine benchmark: legacy vs caches vs kernels vs pools.

Runs the same GA synthesis (same seed, same sizing) under six engine
configurations and verifies they are *bit-identical* before reporting
wall-clock speedups:

``legacy``
    ``decode_cache=False, mode_cache=False, jobs=1`` — the seed
    implementation's recompute-per-candidate decode paths (kept
    verbatim in :mod:`repro.dvs._pv_dvs_reference`), the baseline all
    speedups are measured against.
``engine``
    ``decode_cache=True, mode_cache=False, jobs=1`` — the shared
    :class:`~repro.engine.decode_cache.DecodeContext` fast paths,
    in-process, through the monolithic evaluator.
``incremental``
    ``decode_cache=True, mode_cache=True, jobs=1`` — the staged
    per-mode pipeline (:mod:`repro.eval`) serving clean modes from the
    bounded :class:`~repro.eval.cache.ModeResultCache` (emptied before
    every timed run, so the measured advantage is purely intra-run).
``vector``
    ``incremental`` plus ``vector_dvs=True`` — the struct-of-arrays
    PV-DVS kernels (:mod:`repro.dvs._kernels`) replacing the legacy
    object-graph descent loop inside the same pipeline.  The earlier
    arms pin ``vector_dvs=False`` so their semantics (and timings)
    stay comparable across report generations.
``engine+pool``
    ``decode_cache=True, mode_cache=True, jobs=N, async_pool=False`` —
    the incremental pipeline with each generation's unique uncached
    genomes dispatched to the per-generation *barrier* pool
    (``vector_dvs=False``, like ``incremental``).
``async``
    ``vector`` plus ``jobs=N, async_pool=True`` — the work-stealing
    asynchronous pool (:mod:`repro.engine.async_pool`): workers pull
    single genomes from a shared task queue and publish their
    mode-cache insertions to every other worker, so the parallel hit
    rate tracks the serial one instead of degrading after fork.
    Reported alongside its mean pool utilisation (busy time over the
    dispatch-window capacity) and parallel mode-cache hit rate.
``speculative``
    ``async`` plus ``speculative=True`` — the async pool additionally
    evaluates *predicted* next-generation genomes during the parent's
    breeding window (:mod:`repro.synthesis.speculation`).  The earlier
    pool arms pin ``speculative=False``, so the lift in pool
    utilisation (and wall clock) over ``async`` is speculation's own
    contribution.  On a single-core host the breeding window has no
    idle worker to fill, so the lift gate auto-skips there.

The *headline* cases run the gradient PV-DVS inner loop — the paper's
proposed technique and by far the hottest decode phase; no-DVS cases
are reported as a secondary (smaller) aggregate.  Results are written
to ``BENCH_engine.json`` together with each case's mode-cache hit rate
and the ``incremental``-over-``engine`` speedup; ``--check BASELINE``
compares the headline speedup against a committed baseline and fails
on a >20 % regression (speedup ratios are machine-relative, so the
check is portable).

Usage::

    python benchmarks/bench_engine.py                  # full suite
    python benchmarks/bench_engine.py --quick          # smoke subset
    python benchmarks/bench_engine.py --jobs 8
    python benchmarks/bench_engine.py --quick \
        --check benchmarks/results/bench_engine_quick_baseline.json
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys
import time
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchgen.multimode import (  # noqa: E402
    MultiModeSpec,
    generate_problem,
)
from repro.benchgen.smartphone import smartphone_problem  # noqa: E402
from repro.benchgen.suite import suite_problem  # noqa: E402
from repro.problem import Problem  # noqa: E402
from repro.synthesis.config import DvsMethod, SynthesisConfig  # noqa: E402
from repro.synthesis.cosynthesis import (  # noqa: E402
    MultiModeSynthesizer,
    SynthesisResult,
)


#: Denser-than-suite instances for the pool arms: more queue depth and
#: cache-publication volume per generation than mul1–mul8, yet small
#: enough to GA-synthesise end to end (the registry's full ``stress1``
#: / ``stress2`` tier is sized for per-call kernel benches, not whole
#: synthesis runs — see ``benchmarks/bench_dvs.py``).
MINI_STRESS_SPECS = {
    "stress-mini": MultiModeSpec(
        name="stress-mini",
        seed=777,
        mode_tasks=(26, 30, 24, 28),
        pe_count=4,
        cl_count=2,
    ),
}


def _load_problem(name: str) -> Problem:
    if name == "smartphone":
        return smartphone_problem()
    if name in MINI_STRESS_SPECS:
        return generate_problem(MINI_STRESS_SPECS[name])
    return suite_problem(name)


def _base_config(dvs: DvsMethod, seed: int, quick: bool) -> SynthesisConfig:
    if quick:
        return SynthesisConfig(
            dvs=dvs,
            seed=seed,
            population_size=16,
            max_generations=15,
            convergence_generations=6,
            local_search_budget_factor=0.5,
        )
    return SynthesisConfig(
        dvs=dvs,
        seed=seed,
        population_size=32,
        max_generations=60,
        convergence_generations=15,
        local_search_budget_factor=1.0,
    )


def _run_once(problem: Problem, config: SynthesisConfig) -> SynthesisResult:
    # All configurations share one Problem (and thus its memoised
    # per-mode result cache); start every timed run cold so the
    # incremental arm's advantage is intra-run, not leftovers from the
    # previous arm or repeat.
    cache = getattr(problem, "_mode_result_cache", None)
    if cache is not None:
        cache.clear()
    return MultiModeSynthesizer(problem, config).run()


def _timed_interleaved(
    problem: Problem, configs: Dict[str, SynthesisConfig], repeats: int
):
    """Best-of-N wall clock per config, measured round-robin.

    min-of-N suppresses scheduler/load noise (every measurement above
    the minimum is the same work plus interference), and interleaving
    the configurations within each repeat keeps slow load drift from
    skewing one configuration's timings relative to the others'.
    Results are deterministic across repeats.
    """
    times = {key: math.inf for key in configs}
    results = {}
    for _ in range(max(1, repeats)):
        for key, config in configs.items():
            started = time.perf_counter()
            results[key] = _run_once(problem, config)
            elapsed = time.perf_counter() - started
            if elapsed < times[key]:
                times[key] = elapsed
    return times, results


def run_case(
    name: str,
    dvs: DvsMethod,
    jobs: int,
    seed: int,
    quick: bool,
    headline: bool,
    repeats: int,
) -> Dict[str, object]:
    problem = _load_problem(name)
    base = _base_config(dvs, seed, quick)

    times, results = _timed_interleaved(
        problem,
        {
            "legacy": base.with_updates(
                decode_cache=False, mode_cache=False, jobs=1,
                vector_dvs=False,
            ),
            "serial": base.with_updates(
                decode_cache=True, mode_cache=False, jobs=1,
                vector_dvs=False,
            ),
            "incremental": base.with_updates(
                decode_cache=True, mode_cache=True, jobs=1,
                vector_dvs=False,
            ),
            "vector": base.with_updates(
                decode_cache=True, mode_cache=True, jobs=1,
                vector_dvs=True,
            ),
            "pool": base.with_updates(
                decode_cache=True, mode_cache=True, jobs=jobs,
                vector_dvs=False, async_pool=False, speculative=False,
            ),
            "async": base.with_updates(
                decode_cache=True, mode_cache=True, jobs=jobs,
                vector_dvs=True, async_pool=True, speculative=False,
            ),
            "speculative": base.with_updates(
                decode_cache=True, mode_cache=True, jobs=jobs,
                vector_dvs=True, async_pool=True, speculative=True,
            ),
        },
        repeats,
    )
    legacy_s, serial_s, incremental_s, vector_s, pool_s, async_s = (
        times["legacy"],
        times["serial"],
        times["incremental"],
        times["vector"],
        times["pool"],
        times["async"],
    )
    spec_s = times["speculative"]
    legacy, serial, incremental, vectored, pooled, asynced = (
        results["legacy"],
        results["serial"],
        results["incremental"],
        results["vector"],
        results["pool"],
        results["async"],
    )
    speculated = results["speculative"]

    identical = (
        legacy.best.metrics.fitness
        == serial.best.metrics.fitness
        == incremental.best.metrics.fitness
        == vectored.best.metrics.fitness
        == pooled.best.metrics.fitness
        == asynced.best.metrics.fitness
        == speculated.best.metrics.fitness
        and legacy.history
        == serial.history
        == incremental.history
        == vectored.history
        == pooled.history
        == asynced.history
        == speculated.history
        and legacy.evaluations
        == serial.evaluations
        == incremental.evaluations
        == vectored.evaluations
        == pooled.evaluations
        == asynced.evaluations
        == speculated.evaluations
    )
    perf = pooled.perf
    async_perf = asynced.perf
    spec_perf = speculated.perf
    inc_perf = incremental.perf
    case: Dict[str, object] = {
        "name": name,
        "dvs": dvs.value,
        "headline": headline,
        "identical": identical,
        "best_fitness": legacy.best.metrics.fitness,
        "evaluations": legacy.evaluations,
        "legacy_seconds": round(legacy_s, 4),
        "engine_serial_seconds": round(serial_s, 4),
        "engine_incremental_seconds": round(incremental_s, 4),
        "engine_vector_seconds": round(vector_s, 4),
        "engine_parallel_seconds": round(pool_s, 4),
        "speedup_serial": round(legacy_s / serial_s, 4),
        # Incremental pipeline vs the monolithic cached path, both at
        # jobs=1 — the mode-result cache's own contribution.
        "speedup_incremental": round(serial_s / incremental_s, 4),
        "speedup_incremental_vs_legacy": round(legacy_s / incremental_s, 4),
        # Array PV-DVS kernels vs the object-graph loop, both through
        # the incremental pipeline at jobs=1 — the kernels' engine-level
        # contribution (diluted by the non-dvs phases; see bench_dvs.py
        # for the kernels in isolation).
        "speedup_vector": round(incremental_s / vector_s, 4),
        "speedup_vector_vs_legacy": round(legacy_s / vector_s, 4),
        "speedup_parallel": round(legacy_s / pool_s, 4),
        "engine_async_seconds": round(async_s, 4),
        # Work-stealing async pool vs the jobs=1 vector arm — the
        # engine-level contribution of this PR's pool refactor.
        "speedup_async": round(vector_s / async_s, 4),
        "speedup_async_vs_legacy": round(legacy_s / async_s, 4),
        "async_pool_utilisation": (
            round(async_perf.pool_utilisation, 4)
            if async_perf is not None
            else None
        ),
        "async_pool_steals": (
            async_perf.pool_steals if async_perf is not None else None
        ),
        "async_mode_cache_hit_rate": (
            round(async_perf.mode_cache_hit_rate, 4)
            if async_perf is not None
            else None
        ),
        "engine_speculative_seconds": round(spec_s, 4),
        # Speculation's own contribution: the async pool with the
        # breeding window filled by predicted evaluations vs the same
        # pool idling through it.
        "speedup_speculative": round(async_s / spec_s, 4),
        "speedup_speculative_vs_legacy": round(legacy_s / spec_s, 4),
        "speculative_pool_utilisation": (
            round(spec_perf.pool_utilisation, 4)
            if spec_perf is not None
            else None
        ),
        "speculation_issued": (
            spec_perf.speculation_issued if spec_perf is not None else None
        ),
        "speculation_hits": (
            spec_perf.speculation_hits if spec_perf is not None else None
        ),
        "speculation_discards": (
            spec_perf.speculation_discards if spec_perf is not None else None
        ),
        "speculation_hit_rate": (
            round(spec_perf.speculation_hit_rate, 4)
            if spec_perf is not None
            else None
        ),
        "mode_cache_hit_rate": (
            round(inc_perf.mode_cache_hit_rate, 4)
            if inc_perf is not None
            else None
        ),
        "mode_cache_hits": (
            inc_perf.mode_cache_hits if inc_perf is not None else None
        ),
        "mode_cache_misses": (
            inc_perf.mode_cache_misses if inc_perf is not None else None
        ),
        "perf_parallel": perf.to_dict() if perf is not None else None,
        "perf_async": (
            async_perf.to_dict() if async_perf is not None else None
        ),
        "perf_speculative": (
            spec_perf.to_dict() if spec_perf is not None else None
        ),
    }
    return case


def _geomean(values: List[float]) -> Optional[float]:
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def build_report(args: argparse.Namespace) -> Dict[str, object]:
    repeats = args.repeats
    if repeats is None:
        repeats = 1 if args.quick else 3
    if args.quick:
        cases_spec = [
            ("mul1", DvsMethod.GRADIENT, True),
            ("mul1", DvsMethod.NONE, False),
        ]
    else:
        cases_spec = [
            ("mul1", DvsMethod.GRADIENT, True),
            ("mul2", DvsMethod.GRADIENT, True),
            ("mul3", DvsMethod.GRADIENT, True),
            ("mul4", DvsMethod.GRADIENT, True),
            ("mul5", DvsMethod.GRADIENT, True),
            ("mul6", DvsMethod.GRADIENT, True),
            ("mul7", DvsMethod.GRADIENT, True),
            ("mul8", DvsMethod.GRADIENT, True),
            ("mul3", DvsMethod.NONE, False),
            ("smartphone", DvsMethod.GRADIENT, False),
            ("stress-mini", DvsMethod.GRADIENT, True),
        ]

    cases = []
    for name, dvs, headline in cases_spec:
        label = f"{name}/{dvs.value}"
        print(f"[bench_engine] running {label} ...", flush=True)
        case = run_case(
            name, dvs, args.jobs, args.seed, args.quick, headline, repeats
        )
        cases.append(case)
        print(
            f"[bench_engine]   legacy {case['legacy_seconds']:.2f}s, "
            f"engine {case['engine_serial_seconds']:.2f}s "
            f"({case['speedup_serial']:.2f}x), "
            f"incremental {case['engine_incremental_seconds']:.2f}s "
            f"({case['speedup_incremental']:.2f}x vs engine, "
            f"hit rate {case['mode_cache_hit_rate']}), "
            f"vector {case['engine_vector_seconds']:.2f}s "
            f"({case['speedup_vector']:.2f}x vs incremental), "
            f"engine+pool {case['engine_parallel_seconds']:.2f}s "
            f"({case['speedup_parallel']:.2f}x), "
            f"async {case['engine_async_seconds']:.2f}s "
            f"({case['speedup_async']:.2f}x vs vector, "
            f"utilisation {case['async_pool_utilisation']}, "
            f"{case['async_pool_steals']} steals), "
            f"speculative {case['engine_speculative_seconds']:.2f}s "
            f"({case['speedup_speculative']:.2f}x vs async, "
            f"utilisation {case['speculative_pool_utilisation']}, "
            f"{case['speculation_hits']}/{case['speculation_issued']} "
            f"hits), "
            f"identical={case['identical']}",
            flush=True,
        )

    headline_parallel = [
        c["speedup_parallel"] for c in cases if c["headline"]
    ]
    headline_serial = [c["speedup_serial"] for c in cases if c["headline"]]
    headline_incremental = [
        c["speedup_incremental"] for c in cases if c["headline"]
    ]
    headline_vector = [c["speedup_vector"] for c in cases if c["headline"]]
    headline_async = [c["speedup_async"] for c in cases if c["headline"]]
    headline_speculative = [
        c["speedup_speculative"] for c in cases if c["headline"]
    ]
    utilisations = [
        c["async_pool_utilisation"]
        for c in cases
        if c["async_pool_utilisation"] is not None
    ]
    spec_utilisations = [
        c["speculative_pool_utilisation"]
        for c in cases
        if c["speculative_pool_utilisation"] is not None
    ]
    spec_issued = sum(c["speculation_issued"] or 0 for c in cases)
    spec_hits = sum(c["speculation_hits"] or 0 for c in cases)
    hit_rate_deltas = [
        abs(c["async_mode_cache_hit_rate"] - c["mode_cache_hit_rate"])
        for c in cases
        if c["async_mode_cache_hit_rate"] is not None
        and c["mode_cache_hit_rate"] is not None
    ]
    aggregate = {
        "headline_geomean_speedup_parallel": _geomean(headline_parallel),
        "headline_geomean_speedup_serial": _geomean(headline_serial),
        "headline_geomean_speedup_incremental": _geomean(
            headline_incremental
        ),
        "headline_geomean_speedup_vector": _geomean(headline_vector),
        "headline_geomean_speedup_async": _geomean(headline_async),
        "all_geomean_speedup_parallel": _geomean(
            [c["speedup_parallel"] for c in cases]
        ),
        "all_geomean_speedup_async": _geomean(
            [c["speedup_async"] for c in cases]
        ),
        "mean_async_pool_utilisation": (
            sum(utilisations) / len(utilisations) if utilisations else None
        ),
        "headline_geomean_speedup_speculative": _geomean(
            headline_speculative
        ),
        "mean_speculative_pool_utilisation": (
            sum(spec_utilisations) / len(spec_utilisations)
            if spec_utilisations
            else None
        ),
        "speculation_issued": spec_issued,
        "speculation_hits": spec_hits,
        "speculation_hit_rate": (
            spec_hits / spec_issued if spec_issued else None
        ),
        # Worst-case |async − serial| mode-cache hit-rate gap: the
        # cross-worker publication protocol should keep the parallel
        # hit rate tracking the serial one (≤ 0.05 in acceptance).
        "max_async_mode_cache_hit_rate_delta": (
            max(hit_rate_deltas) if hit_rate_deltas else None
        ),
        "headline_mean_mode_cache_hit_rate": (
            sum(
                c["mode_cache_hit_rate"]
                for c in cases
                if c["headline"] and c["mode_cache_hit_rate"] is not None
            )
            / max(
                1,
                sum(
                    1
                    for c in cases
                    if c["headline"]
                    and c["mode_cache_hit_rate"] is not None
                ),
            )
        ),
        "all_identical": all(c["identical"] for c in cases),
    }
    return {
        "benchmark": "engine",
        "quick": args.quick,
        "jobs": args.jobs,
        "seed": args.seed,
        "repeats": repeats,
        "cases": cases,
        "aggregate": aggregate,
    }


def resolve_utilisation_floor(value: str, jobs: int) -> Optional[float]:
    """Turn ``--min-async-utilisation`` into a numeric floor.

    ``"auto"`` derives the floor from how much hardware parallelism the
    host can actually give ``jobs`` workers: with at least one core per
    worker the historical 0.85 floor applies unchanged; on smaller
    hosts (CI containers are often single-core) the workers time-share
    cores, the dispatch-window capacity ``window × jobs`` overstates
    what the host can deliver by ``jobs / cpus``, and the floor scales
    down accordingly — clamped to 0.25 so a pathological pool still
    fails.  A numeric string is used as-is; ``"off"`` disables the
    gate.
    """
    if value == "off":
        return None
    if value == "auto":
        cpus = os.cpu_count() or 1
        if cpus >= jobs:
            return 0.85
        return max(0.25, round(0.85 * cpus / jobs, 2))
    return float(value)


def check_regression(
    report: Dict[str, object], baseline_path: pathlib.Path
) -> int:
    """Compare headline speedup against a committed baseline (>20 % fails)."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    key = "headline_geomean_speedup_parallel"
    current = report["aggregate"][key]
    reference = baseline["aggregate"][key]
    floor = reference * 0.8
    print(
        f"[bench_engine] regression check: current {current:.3f}x vs "
        f"baseline {reference:.3f}x (floor {floor:.3f}x)"
    )
    if not report["aggregate"]["all_identical"]:
        print("[bench_engine] FAIL: engine results diverged from legacy")
        return 1
    if current < floor:
        print(
            f"[bench_engine] FAIL: headline speedup regressed by more "
            f"than 20% ({current:.3f}x < {floor:.3f}x)"
        )
        return 1
    print("[bench_engine] regression check passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small smoke subset (used by 'make bench-smoke')",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="pool size for the engine+pool and async configurations",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help=(
            "wall-clock measurements per configuration, best-of-N "
            "interleaved (default: 3 full, 1 quick)"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help=(
            "output JSON path (default: BENCH_engine.json at the repo "
            "root, or bench_engine_quick.json under benchmarks/results "
            "with --quick)"
        ),
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="baseline JSON to compare against; exits 1 on >20%% regression",
    )
    parser.add_argument(
        "--min-async-utilisation",
        default=None,
        metavar="FRACTION",
        help=(
            "fail (exit 1) when the mean async pool utilisation falls "
            "below this fraction; 'auto' derives the floor from "
            "os.cpu_count() vs --jobs (used by 'make bench-smoke'), "
            "'off' disables the gate"
        ),
    )
    args = parser.parse_args(argv)

    report = build_report(args)

    if args.out is None:
        if args.quick:
            out_path = (
                REPO_ROOT / "benchmarks" / "results" / "bench_engine_quick.json"
            )
        else:
            out_path = REPO_ROOT / "BENCH_engine.json"
    else:
        out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    agg = report["aggregate"]
    print(
        f"[bench_engine] headline geomean: "
        f"{agg['headline_geomean_speedup_parallel']:.2f}x (pool), "
        f"{agg['headline_geomean_speedup_serial']:.2f}x (serial engine), "
        f"{agg['headline_geomean_speedup_incremental']:.2f}x "
        f"(incremental vs engine, mean hit rate "
        f"{agg['headline_mean_mode_cache_hit_rate']:.2f}), "
        f"{agg['headline_geomean_speedup_vector']:.2f}x "
        f"(vector kernels vs incremental), "
        f"{agg['headline_geomean_speedup_async']:.2f}x "
        f"(async pool vs vector, mean utilisation "
        f"{agg['mean_async_pool_utilisation']}), "
        f"{agg['headline_geomean_speedup_speculative']:.2f}x "
        f"(speculative vs async, mean utilisation "
        f"{agg['mean_speculative_pool_utilisation']}, hit rate "
        f"{agg['speculation_hit_rate']}); "
        f"report written to {out_path}"
    )

    if not agg["all_identical"]:
        print("[bench_engine] FAIL: engine results diverged from legacy")
        return 1
    if args.min_async_utilisation is not None:
        floor = resolve_utilisation_floor(
            args.min_async_utilisation, args.jobs
        )
        if floor is not None:
            utilisation = agg["mean_async_pool_utilisation"]
            if utilisation is None or utilisation < floor:
                print(
                    f"[bench_engine] FAIL: mean async pool utilisation "
                    f"{utilisation} below floor {floor}"
                )
                return 1
            print(
                f"[bench_engine] async utilisation gate passed "
                f"({utilisation:.3f} >= {floor})"
            )
            # Speculation fills the breeding window with predicted
            # evaluations, so its pool utilisation must not fall below
            # the non-speculative async arm's (small tolerance for
            # timing noise).  Meaningless without a second core to do
            # the filling — time-shared workers only displace the
            # parent — so single-core hosts skip the gate.
            if (os.cpu_count() or 1) > 1:
                spec_util = agg["mean_speculative_pool_utilisation"]
                async_util = agg["mean_async_pool_utilisation"]
                if spec_util is None or spec_util < async_util - 0.02:
                    print(
                        f"[bench_engine] FAIL: speculative pool "
                        f"utilisation {spec_util} below async "
                        f"{async_util} - 0.02"
                    )
                    return 1
                print(
                    f"[bench_engine] speculation lift gate passed "
                    f"({spec_util:.3f} vs async {async_util:.3f})"
                )
            else:
                print(
                    "[bench_engine] speculation lift gate skipped "
                    "(single-core host)"
                )
    if args.check is not None:
        return check_regression(report, pathlib.Path(args.check))
    return 0


if __name__ == "__main__":
    sys.exit(main())
