"""Decode-cache correctness: cached fast paths are bit-identical.

The contract of :class:`~repro.engine.decode_cache.DecodeContext` is
strict: evaluating any candidate with the context enabled must produce
the *same floats* as the legacy recompute-per-candidate paths (which
route through the reference DVS module).  These tests compare complete
implementations — fitness, power, violations and every scheduled
start/end/energy — across random genomes and all DVS methods.
"""

import random

import pytest

from repro.benchgen.suite import suite_problem
from repro.engine.decode_cache import DecodeContext, context_for
from repro.mapping.encoding import MappingString
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.evaluator import evaluate_mapping

from tests.conftest import make_two_mode_problem


@pytest.fixture(scope="module")
def tgff_problem():
    return suite_problem("mul1")


def _schedules_identical(left, right) -> bool:
    if set(left) != set(right):
        return False
    for mode_name in left:
        a, b = left[mode_name], right[mode_name]
        a_tasks = {t.name: t for t in a.tasks}
        b_tasks = {t.name: t for t in b.tasks}
        if set(a_tasks) != set(b_tasks):
            return False
        for name, task in a_tasks.items():
            other = b_tasks[name]
            if (
                task.start != other.start
                or task.end != other.end
                or task.energy != other.energy
                or task.pe != other.pe
            ):
                return False
        a_comms = {(c.src, c.dst): c for c in a.comms}
        b_comms = {(c.src, c.dst): c for c in b.comms}
        if set(a_comms) != set(b_comms):
            return False
        for key, comm in a_comms.items():
            other = b_comms[key]
            if comm.start != other.start or comm.end != other.end:
                return False
    return True


class TestBitIdentical:
    @pytest.mark.parametrize(
        "dvs", [DvsMethod.NONE, DvsMethod.GRADIENT, DvsMethod.UNIFORM]
    )
    def test_fast_path_matches_reference(self, tgff_problem, dvs):
        rng = random.Random(11)
        compared = 0
        for _ in range(8):
            genome = MappingString.random(tgff_problem, rng)
            fast = evaluate_mapping(
                tgff_problem,
                genome,
                SynthesisConfig(dvs=dvs, decode_cache=True),
            )
            slow = evaluate_mapping(
                tgff_problem,
                genome,
                SynthesisConfig(dvs=dvs, decode_cache=False),
            )
            assert (fast is None) == (slow is None)
            if fast is None:
                continue
            compared += 1
            assert fast.metrics.fitness == slow.metrics.fitness
            assert (
                fast.metrics.average_power == slow.metrics.average_power
            )
            assert (
                fast.metrics.timing_violation
                == slow.metrics.timing_violation
            )
            assert (
                fast.metrics.area_violation == slow.metrics.area_violation
            )
            assert _schedules_identical(fast.schedules, slow.schedules)
        assert compared > 0

    def test_shared_rail_ablation_matches(self, tgff_problem):
        rng = random.Random(5)
        genome = MappingString.random(tgff_problem, rng)
        for shared in (True, False):
            config = dict(dvs=DvsMethod.GRADIENT, dvs_shared_rail=shared)
            fast = evaluate_mapping(
                tgff_problem,
                genome,
                SynthesisConfig(decode_cache=True, **config),
            )
            slow = evaluate_mapping(
                tgff_problem,
                genome,
                SynthesisConfig(decode_cache=False, **config),
            )
            assert (fast is None) == (slow is None)
            if fast is not None:
                assert fast.metrics.fitness == slow.metrics.fitness


class TestDecodeContext:
    def test_context_for_memoises_per_problem(self):
        problem = make_two_mode_problem()
        assert context_for(problem) is context_for(problem)
        other = make_two_mode_problem()
        assert context_for(problem) is not context_for(other)

    def test_probability_retarget_reuses_context(self):
        # Regression: a ``with_probabilities`` re-target must inherit
        # the parent's memoised decode context (its tables are all
        # Ψ-independent), not rebuild a duplicate per re-target — the
        # adaptive controller re-targets on every drift event.
        problem = make_two_mode_problem()
        context = context_for(problem)
        names = problem.omsm.mode_names
        weights = {
            name: (0.7 if i == 0 else 0.3 / max(1, len(names) - 1))
            for i, name in enumerate(names)
        }
        retargeted = problem.with_probabilities(weights)
        assert context_for(retargeted) is context
        # ...and results under the retarget stay correct: the context
        # is consulted for mobilities/deadlines, both Ψ-independent.
        chained = retargeted.with_probabilities(
            {name: 1.0 / len(names) for name in names}
        )
        assert context_for(chained) is context

    def test_retarget_before_first_decode_builds_once(self):
        # Re-targeting a problem whose context was never built must not
        # leave the descendant with a stale ``None``: the first decode
        # on either instance builds its own (single) context.
        problem = make_two_mode_problem()
        names = problem.omsm.mode_names
        retargeted = problem.with_probabilities(
            {name: 1.0 / len(names) for name in names}
        )
        context = context_for(retargeted)
        assert context_for(retargeted) is context
        # The parent was untouched; it builds its own on demand.
        assert context_for(problem) is not context

    def test_mode_tables_cover_every_task(self):
        problem = make_two_mode_problem()
        context = DecodeContext.build(problem)
        for mode in problem.omsm.modes:
            data = context.modes[mode.name]
            graph = mode.task_graph
            assert data.task_names == graph.task_names
            assert set(data.topo_order) == set(graph.task_names)
            for name in data.task_names:
                assert data.deadlines[name] == mode.effective_deadline(
                    name
                )
                assert data.predecessors[name] == graph.predecessors(name)
                assert data.successors[name] == graph.successors(name)

    def test_exec_times_match_technology(self):
        problem = make_two_mode_problem()
        context = DecodeContext.build(problem)
        technology = problem.technology
        for mode in problem.omsm.modes:
            data = context.modes[mode.name]
            for task_name, candidates in problem.gene_space(mode.name):
                for pe_name in candidates:
                    entry = technology.implementation(
                        data.task_types[task_name], pe_name
                    )
                    assert (
                        data.exec_times[task_name][pe_name]
                        == entry.exec_time
                    )
                    assert (
                        data.powers[task_name][pe_name] == entry.power
                    )

    def test_links_between_matches_architecture(self):
        problem = make_two_mode_problem()
        context = DecodeContext.build(problem)
        names = [pe.name for pe in problem.architecture.pes]
        for first in names:
            for second in names:
                if first == second:
                    continue
                assert context.links_between[(first, second)] == (
                    problem.architecture.links_between(first, second)
                )

    def test_dvs_tables_memoised(self):
        problem = make_two_mode_problem()
        context = DecodeContext.build(problem)
        pe = next(iter(context.hw_dvs_pes), None)
        if pe is None:
            pe = problem.architecture.pes[0].name
        first = context.duration_energy_tables(pe, 1.0, 2.0)
        second = context.duration_energy_tables(pe, 1.0, 2.0)
        assert first is second

    def test_mobilities_match_legacy(self, tgff_problem):
        context = DecodeContext.build(tgff_problem)
        rng = random.Random(3)
        genome = MappingString.random(tgff_problem, rng)
        technology = tgff_problem.technology
        for mode in tgff_problem.omsm.modes:
            mapping = genome.mode_mapping(mode.name)
            fast = context.compute_mobilities(mode.name, mapping)

            from repro.scheduling.mobility import compute_mobilities

            slow = compute_mobilities(
                mode,
                lambda task, _mode=mode: technology.implementation(
                    _mode.task_graph.task(task).task_type,
                    genome.pe_of(_mode.name, task),
                ).exec_time,
            )
            assert set(fast) == set(slow)
            for name in fast:
                assert fast[name].asap == slow[name].asap
                assert fast[name].alap == slow[name].alap
