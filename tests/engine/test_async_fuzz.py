"""Differential fuzz: async work-stealing pool vs barrier pool vs serial.

Acceptance coverage for the async evaluator: randomised GA chains on
suite, smartphone and stress instances must produce *exactly* equal
results under the work-stealing pool, the barrier pool and serial
evaluation — fitness, history, best genome, evaluation counts, the
Pareto sweep, and the per-mode phase-bucket invariant (buckets sum to
the aggregates) — and a checkpointed run must resume bit-identically
with ``async_pool=True``.

The configs are drawn once per instance from a seeded RNG and shared
verbatim across the three evaluation arms (only ``jobs`` /
``async_pool`` differ), so any divergence is the pool's fault, never
the sampler's.
"""

import json
import random

import pytest

from repro.benchgen.multimode import MultiModeSpec, generate_problem
from repro.benchgen.smartphone import smartphone_problem
from repro.benchgen.suite import suite_problem
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer
from repro.synthesis.pareto import area_power_tradeoff
from repro.synthesis.state import GAState


def _stress_mini():
    """A denser-than-suite instance for the stress tier of the fuzz.

    Scaled down from the registry's ``stress1`` (whose 200+-task modes
    are sized for per-call kernel benches, not whole GA runs) to fit
    the differential budget while still out-sizing mul1–mul8.
    """
    return generate_problem(
        MultiModeSpec(
            name="stress-mini",
            seed=777,
            mode_tasks=(18, 22, 16),
            pe_count=4,
            cl_count=2,
        )
    )


#: (instance loader, DVS method) fuzz corpus.  GRADIENT exercises the
#: full inner loop on the small suite instances; the larger graphs run
#: NONE to keep the differential affordable.
CORPUS = [
    ("mul1", lambda: suite_problem("mul1"), DvsMethod.GRADIENT),
    ("mul3", lambda: suite_problem("mul3"), DvsMethod.GRADIENT),
    ("smartphone", smartphone_problem, DvsMethod.NONE),
    ("stress-mini", _stress_mini, DvsMethod.NONE),
]


def _draw_config(name: str, dvs: DvsMethod) -> SynthesisConfig:
    rng = random.Random(f"async-fuzz:{name}")
    return SynthesisConfig(
        dvs=dvs,
        seed=rng.randrange(10_000),
        population_size=rng.choice([10, 12, 14]),
        max_generations=rng.choice([3, 4]),
        convergence_generations=10,
        local_search_budget_factor=rng.choice([0.0, 0.5]),
        group_mutation_rate=rng.choice([0.1, 0.3]),
        shutdown_mutation_rate=rng.choice([0.0, 0.02]),
    )


def _assert_bucket_invariant(perf) -> None:
    assert perf is not None
    assert set(perf.mode_phase_seconds) == set(perf.phase_seconds)
    for phase, total in perf.phase_seconds.items():
        assert sum(
            perf.mode_phase_seconds[phase].values()
        ) == pytest.approx(total)
        assert sum(
            perf.mode_phase_calls[phase].values()
        ) == perf.phase_calls[phase]


@pytest.mark.parametrize(
    "name,loader,dvs", CORPUS, ids=[entry[0] for entry in CORPUS]
)
def test_async_barrier_serial_chains_identical(name, loader, dvs):
    base = _draw_config(name, dvs)
    arms = {
        "serial": base.with_updates(jobs=1),
        "async": base.with_updates(jobs=2, async_pool=True),
        "barrier": base.with_updates(jobs=2, async_pool=False),
    }
    results = {}
    for arm, config in arms.items():
        # A fresh problem per arm: no shared decode context or warm
        # mode cache can paper over a divergence between strategies.
        results[arm] = MultiModeSynthesizer(loader(), config).run()
    serial = results["serial"]
    for arm in ("async", "barrier"):
        result = results[arm]
        assert result.history == serial.history, arm
        assert (
            result.best.metrics.fitness == serial.best.metrics.fitness
        ), arm
        assert (
            result.best.mapping.genes == serial.best.mapping.genes
        ), arm
        assert result.evaluations == serial.evaluations, arm
        assert result.generations == serial.generations, arm
        assert result.average_power == serial.average_power, arm
    for arm, result in results.items():
        _assert_bucket_invariant(result.perf)


def test_async_and_barrier_pareto_sets_identical():
    config = SynthesisConfig(
        population_size=10,
        max_generations=3,
        convergence_generations=10,
        local_search_budget_factor=0.0,
        seed=13,
        jobs=2,
    )
    points = {}
    for flag in (True, False):
        points[flag] = area_power_tradeoff(
            suite_problem("mul1"),
            scales=(0.75, 1.25),
            config=config.with_updates(async_pool=flag),
            runs=1,
            base_seed=3,
        )
    assert points[True] == points[False]


def test_kill_resume_bit_identical_with_async_pool():
    problem = suite_problem("mul1")
    config = SynthesisConfig(
        population_size=10,
        max_generations=6,
        convergence_generations=8,
        local_search_budget_factor=0.0,
        seed=31,
        jobs=2,
        async_pool=True,
    )
    snapshots = []
    reference = MultiModeSynthesizer(problem, config).run(
        on_generation=snapshots.append
    )
    assert snapshots, "run emitted no generation snapshots"
    # Serialise through JSON exactly like the checkpoint store: this is
    # the state a killed campaign job restarts from.
    state = GAState.from_dict(
        json.loads(json.dumps(snapshots[len(snapshots) // 2].to_dict()))
    )
    resumed = MultiModeSynthesizer(problem, config).run(resume=state)
    assert resumed.history == reference.history
    assert resumed.best.mapping.genes == reference.best.mapping.genes
    assert resumed.average_power == reference.average_power
    assert resumed.generations == reference.generations
