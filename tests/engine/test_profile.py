"""Unit tests for the phase profiler and the PerfStats summary."""

import time

import pytest

from repro.engine.profile import (
    SHARED_MODE,
    PerfStats,
    PhaseProfiler,
    split_phase_key,
)


class TestPhaseProfiler:
    def test_phase_accumulates_seconds_and_calls(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("dvs"):
                time.sleep(0.001)
        totals = profiler.snapshot()
        seconds, calls = totals["dvs"]
        assert calls == 3
        assert seconds >= 0.003

    def test_add_records_external_measurements(self):
        profiler = PhaseProfiler()
        profiler.add("schedule", 1.5, calls=4)
        profiler.add("schedule", 0.5)
        assert profiler.snapshot()["schedule"] == (2.0, 5)

    def test_phase_records_even_on_exception(self):
        profiler = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with profiler.phase("cores"):
                raise RuntimeError("boom")
        assert profiler.snapshot()["cores"][1] == 1

    def test_reset_clears_everything(self):
        profiler = PhaseProfiler()
        profiler.add("power", 1.0)
        profiler.reset()
        assert profiler.snapshot() == {}

    def test_delta_since_only_reports_new_work(self):
        profiler = PhaseProfiler()
        profiler.add("mobility", 1.0, calls=2)
        base = profiler.snapshot()
        profiler.add("mobility", 0.25)
        profiler.add("power", 0.5)
        delta = profiler.delta_since(base)
        assert delta["mobility"] == (pytest.approx(0.25), 1)
        assert delta["power"] == (0.5, 1)
        assert "schedule" not in delta

    def test_delta_since_empty_when_idle(self):
        profiler = PhaseProfiler()
        profiler.add("dvs", 1.0)
        assert profiler.delta_since(profiler.snapshot()) == {}

    def test_mode_attribution_uses_tuple_keys(self):
        profiler = PhaseProfiler()
        with profiler.phase("schedule", mode="gsm"):
            pass
        profiler.add("schedule", 0.5, mode="mp3")
        profiler.add("cores", 0.25)
        totals = profiler.snapshot()
        assert ("schedule", "gsm") in totals
        assert totals[("schedule", "mp3")] == (0.5, 1)
        assert totals["cores"] == (0.25, 1)
        assert split_phase_key(("schedule", "gsm")) == ("schedule", "gsm")
        assert split_phase_key("cores") == ("cores", None)

    def test_delta_and_merge_preserve_mode_keys(self):
        profiler = PhaseProfiler()
        profiler.add("dvs", 1.0, mode="gsm")
        base = profiler.snapshot()
        profiler.add("dvs", 0.5, mode="gsm")
        profiler.add("dvs", 0.25, mode="mp3")
        delta = profiler.delta_since(base)
        assert delta == {
            ("dvs", "gsm"): (pytest.approx(0.5), 1),
            ("dvs", "mp3"): (0.25, 1),
        }
        other = PhaseProfiler()
        other.merge(delta)
        assert other.snapshot()[("dvs", "gsm")] == (pytest.approx(0.5), 1)

    def test_merge_folds_totals(self):
        left = PhaseProfiler()
        left.add("dvs", 1.0, calls=2)
        right = PhaseProfiler()
        right.add("dvs", 2.0, calls=3)
        right.add("power", 1.0)
        left.merge(right.snapshot())
        assert left.snapshot()["dvs"] == (3.0, 5)
        assert left.snapshot()["power"] == (1.0, 1)


class TestPerfStats:
    def test_evaluations_per_second(self):
        stats = PerfStats(evaluations=100, wall_time=4.0)
        assert stats.evaluations_per_second == pytest.approx(25.0)
        assert PerfStats().evaluations_per_second == 0.0

    def test_cache_hit_rate(self):
        stats = PerfStats(evaluations=60, cache_hits=30, dedup_hits=10)
        assert stats.cache_hit_rate == pytest.approx(0.4)
        assert PerfStats().cache_hit_rate == 0.0

    def test_pool_utilisation(self):
        # busy / (service × workers): 4 workers in service for 2 s
        # with 4 s of aggregate busy time were 50% utilised.
        stats = PerfStats(
            wall_time=2.0,
            jobs=4,
            pool_busy_seconds=4.0,
            pool_workers=4,
            pool_service_seconds=2.0,
        )
        assert stats.pool_utilisation == pytest.approx(0.5)
        # No pool in service (serial run) → zero by definition.
        assert PerfStats(wall_time=2.0, jobs=1).pool_utilisation == 0.0

    def test_pool_utilisation_jobs_field_is_irrelevant(self):
        # Regression: utilisation used to hard-return 0.0 whenever
        # ``jobs <= 1`` and divide by the *configured* job count, even
        # when the pool that actually serviced the run was smaller
        # (post-fallback) or its service window shorter than wall time.
        stats = PerfStats(
            wall_time=10.0,
            jobs=1,  # e.g. stats merged after a config override
            pool_busy_seconds=3.0,
            pool_workers=2,
            pool_service_seconds=1.5,
        )
        assert stats.pool_utilisation == pytest.approx(1.0)

    def test_pool_utilisation_after_fallback(self):
        # A pool that died and fell back to serial stops its service
        # clock; the short service window still yields a finite,
        # meaningful ratio instead of dividing wall time by jobs.
        stats = PerfStats(
            wall_time=100.0,
            jobs=4,
            pool_busy_seconds=2.0,
            pool_workers=4,
            pool_service_seconds=1.0,
            pool_fallbacks=1,
        )
        assert stats.pool_utilisation == pytest.approx(0.5)
        assert stats.to_dict()["pool_fallbacks"] == 1

    def test_merge_phase_totals(self):
        stats = PerfStats()
        stats.merge_phase_totals({"dvs": (1.0, 2)})
        stats.merge_phase_totals({"dvs": (0.5, 1), "power": (0.25, 1)})
        assert stats.phase_seconds["dvs"] == pytest.approx(1.5)
        assert stats.phase_calls["dvs"] == 3
        assert stats.phase_calls["power"] == 1

    def test_mode_buckets_sum_to_aggregate(self):
        stats = PerfStats()
        stats.merge_phase_totals(
            {
                ("schedule", "gsm"): (0.5, 2),
                ("schedule", "mp3"): (0.25, 1),
                "cores": (0.125, 3),
            }
        )
        stats.merge_phase_totals({("schedule", "gsm"): (0.5, 1)})
        assert stats.phase_seconds["schedule"] == pytest.approx(1.25)
        assert stats.phase_calls["schedule"] == 4
        assert stats.mode_phase_seconds["schedule"] == {
            "gsm": pytest.approx(1.0),
            "mp3": pytest.approx(0.25),
        }
        assert stats.mode_phase_calls["schedule"] == {"gsm": 3, "mp3": 1}
        # Unattributed phases land in the shared bucket.
        assert stats.mode_phase_seconds["cores"] == {
            SHARED_MODE: pytest.approx(0.125)
        }
        for phase, total in stats.phase_seconds.items():
            assert sum(
                stats.mode_phase_seconds[phase].values()
            ) == pytest.approx(total)

    def test_to_dict_is_json_shaped(self):
        stats = PerfStats(
            evaluations=10,
            cache_hits=5,
            wall_time=1.0,
            jobs=2,
            batches=3,
            parallel_evaluations=8,
            pool_busy_seconds=1.2,
        )
        stats.merge_phase_totals({"schedule": (0.5, 10)})
        payload = stats.to_dict()
        assert payload["evaluations"] == 10
        assert payload["jobs"] == 2
        assert payload["phase_seconds"] == {"schedule": 0.5}
        assert payload["phase_calls"] == {"schedule": 10}
        assert 0.0 <= payload["cache_hit_rate"] <= 1.0
