"""Acceptance: per-mode phase timings sum exactly to the aggregates.

The ISSUE criterion verified here: for a real synthesis run the
per-mode breakdown of every phase (``perf.mode_phase_seconds``) sums,
within float tolerance, to that phase's aggregate ``phase_seconds`` —
with serial evaluation and with a worker pool, whose per-mode buckets
travel back to the parent as profiler deltas.  With the incremental
pipeline a warm mode-result cache may skip per-mode stages entirely
(they then record *nothing*, keeping the invariant trivially) and
serves hits in a dedicated per-mode ``cache_hit`` phase.
"""

import pytest

from repro.engine.profile import SHARED_MODE
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer

from tests.conftest import make_two_mode_problem

#: Phases always timed per mode (whichever of them actually run).
#: ``dvs_vector`` nests inside ``dvs`` when the array kernels run.
PER_MODE_PHASES = {"mobility", "schedule", "dvs", "dvs_vector", "cache_hit"}
#: Phases timed once per candidate (or per prediction pass, for
#: ``speculate`` — which wraps whole evaluations on the worker side and
#: the replay on the parent side), landing in the shared bucket.
SHARED_PHASES = {"cores", "power", "speculate"}


@pytest.fixture(scope="module")
def problem():
    return make_two_mode_problem()


def _run(problem, jobs, **overrides):
    config = SynthesisConfig(
        population_size=10,
        max_generations=4,
        convergence_generations=10,
        dvs=DvsMethod.GRADIENT,
        jobs=jobs,
        seed=5,
        **overrides,
    )
    return MultiModeSynthesizer(problem, config).run()


@pytest.mark.parametrize("jobs", [1, 4])
def test_mode_buckets_sum_to_phase_aggregates(problem, jobs):
    perf = _run(problem, jobs).perf
    assert perf is not None
    assert perf.phase_seconds, "no phases were profiled"
    assert set(perf.mode_phase_seconds) == set(perf.phase_seconds)
    for phase, total in perf.phase_seconds.items():
        buckets = perf.mode_phase_seconds[phase]
        assert sum(buckets.values()) == pytest.approx(total)
        assert sum(
            perf.mode_phase_calls[phase].values()
        ) == perf.phase_calls[phase]


@pytest.mark.parametrize("jobs", [1, 4])
def test_mode_attribution_matches_phase_kind(problem, jobs):
    perf = _run(problem, jobs).perf
    mode_names = {mode.name for mode in problem.omsm.modes}
    assert set(perf.mode_phase_seconds) <= PER_MODE_PHASES | SHARED_PHASES
    # Per-mode phases are attributed to real modes (a warm cache may
    # have skipped a stage for some — or all — modes)...
    for phase in PER_MODE_PHASES & set(perf.mode_phase_seconds):
        buckets = set(perf.mode_phase_seconds[phase])
        assert buckets and buckets <= mode_names
    # ...while whole-mapping phases land in the shared bucket.
    for phase in SHARED_PHASES & set(perf.mode_phase_seconds):
        assert set(perf.mode_phase_seconds[phase]) == {SHARED_MODE}


@pytest.mark.parametrize("jobs", [1, 4])
def test_cache_hits_profiled_per_mode(jobs):
    # A fresh problem, evaluated twice with the same seed: the second
    # run replays identical genomes against the warm per-mode cache, so
    # hits must show up — in the dedicated per-mode cache_hit phase, in
    # the PerfStats counters, and still summing to the aggregates.
    problem = make_two_mode_problem()
    cold = _run(problem, jobs).perf
    assert cold.mode_cache_misses > 0
    warm = _run(problem, jobs).perf
    assert warm.mode_cache_hits > 0
    assert 0.0 < warm.mode_cache_hit_rate <= 1.0
    mode_names = {mode.name for mode in problem.omsm.modes}
    buckets = warm.mode_phase_seconds["cache_hit"]
    assert set(buckets) <= mode_names
    assert sum(buckets.values()) == pytest.approx(
        warm.phase_seconds["cache_hit"]
    )


@pytest.mark.parametrize("jobs", [1, 4])
def test_dvs_vector_phase_per_mode(jobs):
    # The array kernels time themselves in a dedicated ``dvs_vector``
    # phase nested inside ``dvs``: per-mode buckets must sum exactly to
    # the aggregate and never exceed the enclosing dvs time.
    problem = make_two_mode_problem()
    perf = _run(problem, jobs).perf
    assert "dvs_vector" in perf.phase_seconds
    mode_names = {mode.name for mode in problem.omsm.modes}
    buckets = perf.mode_phase_seconds["dvs_vector"]
    assert buckets and set(buckets) <= mode_names
    assert sum(buckets.values()) == pytest.approx(
        perf.phase_seconds["dvs_vector"]
    )
    assert perf.phase_seconds["dvs_vector"] <= perf.phase_seconds["dvs"]


def test_legacy_dvs_records_no_vector_phase():
    problem = make_two_mode_problem()
    perf = _run(problem, 1, vector_dvs=False).perf
    assert "dvs" in perf.phase_seconds
    assert "dvs_vector" not in perf.phase_seconds


def test_mode_cache_disabled_records_no_cache_activity():
    problem = make_two_mode_problem()
    perf = _run(problem, 1, mode_cache=False).perf
    assert perf.mode_cache_hits == 0
    assert perf.mode_cache_misses == 0
    assert perf.mode_cache_hit_rate == 0.0
    assert "cache_hit" not in perf.phase_seconds
