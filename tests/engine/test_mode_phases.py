"""Acceptance: per-mode phase timings sum exactly to the aggregates.

The ISSUE criterion verified here: for a real synthesis run the
per-mode breakdown of every phase (``perf.mode_phase_seconds``) sums,
within float tolerance, to that phase's aggregate ``phase_seconds`` —
with serial evaluation and with a worker pool, whose per-mode buckets
travel back to the parent as profiler deltas.
"""

import pytest

from repro.engine.profile import SHARED_MODE
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer

from tests.conftest import make_two_mode_problem


@pytest.fixture(scope="module")
def problem():
    return make_two_mode_problem()


def _run(problem, jobs):
    config = SynthesisConfig(
        population_size=10,
        max_generations=4,
        convergence_generations=10,
        dvs=DvsMethod.GRADIENT,
        jobs=jobs,
        seed=5,
    )
    return MultiModeSynthesizer(problem, config).run()


@pytest.mark.parametrize("jobs", [1, 4])
def test_mode_buckets_sum_to_phase_aggregates(problem, jobs):
    perf = _run(problem, jobs).perf
    assert perf is not None
    assert perf.phase_seconds, "no phases were profiled"
    assert set(perf.mode_phase_seconds) == set(perf.phase_seconds)
    for phase, total in perf.phase_seconds.items():
        buckets = perf.mode_phase_seconds[phase]
        assert sum(buckets.values()) == pytest.approx(total)
        assert sum(
            perf.mode_phase_calls[phase].values()
        ) == perf.phase_calls[phase]


@pytest.mark.parametrize("jobs", [1, 4])
def test_mode_attribution_matches_phase_kind(problem, jobs):
    perf = _run(problem, jobs).perf
    mode_names = {mode.name for mode in problem.omsm.modes}
    # Per-mode phases are attributed to real modes...
    for phase in ("mobility", "schedule", "dvs"):
        assert set(perf.mode_phase_seconds[phase]) == mode_names
    # ...while whole-mapping phases land in the shared bucket.
    for phase in ("cores", "power"):
        assert set(perf.mode_phase_seconds[phase]) == {SHARED_MODE}
