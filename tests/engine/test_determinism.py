"""End-to-end engine guarantees: parallel determinism and dedup.

The headline contract of the evaluation engine is that *nothing about
how* candidates are evaluated — in-process, cached, deduplicated or
dispatched to a pool — may change *what* the GA computes.  A synthesis
run is a pure function of (problem, config-minus-jobs, seed).
"""

import random


from repro.benchgen.suite import suite_problem
from repro.mapping.encoding import MappingString
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer, synthesize

from tests.conftest import make_two_mode_problem


def _small_config(**overrides):
    base = dict(
        dvs=DvsMethod.GRADIENT,
        seed=9,
        population_size=14,
        max_generations=10,
        convergence_generations=5,
        local_search_budget_factor=0.5,
    )
    base.update(overrides)
    return SynthesisConfig(**base)


class TestParallelDeterminism:
    def test_serial_and_pooled_runs_identical(self):
        problem = suite_problem("mul1")
        serial = synthesize(problem, _small_config(jobs=1))
        pooled = synthesize(problem, _small_config(jobs=2))
        assert serial.history == pooled.history
        assert (
            serial.best.metrics.fitness == pooled.best.metrics.fitness
        )
        assert serial.best.mapping.genes == pooled.best.mapping.genes
        assert serial.evaluations == pooled.evaluations
        assert serial.generations == pooled.generations

    def test_decode_cache_off_still_identical(self):
        problem = make_two_mode_problem()
        fast = synthesize(problem, _small_config(jobs=1))
        legacy = synthesize(
            problem, _small_config(jobs=1, decode_cache=False)
        )
        assert fast.history == legacy.history
        assert fast.best.metrics.fitness == legacy.best.metrics.fitness

    def test_perf_stats_populated(self):
        problem = make_two_mode_problem()
        result = synthesize(problem, _small_config(jobs=1))
        perf = result.perf
        assert perf is not None
        assert perf.evaluations == result.evaluations
        assert perf.wall_time > 0.0
        assert perf.jobs == 1
        assert perf.evaluations_per_second > 0.0
        # Every evaluator phase must have been timed.
        for phase in ("mobility", "cores", "schedule", "dvs", "power"):
            assert perf.phase_seconds.get(phase, 0.0) > 0.0
            assert perf.phase_calls.get(phase, 0) > 0

    def test_pooled_perf_reports_pool_activity(self):
        problem = make_two_mode_problem()
        result = synthesize(problem, _small_config(jobs=2))
        perf = result.perf
        assert perf is not None
        assert perf.jobs == 2
        if perf.parallel_evaluations:
            assert perf.batches > 0
            assert perf.pool_busy_seconds > 0.0
            assert perf.pool_utilisation > 0.0


class TestDeduplication:
    def test_duplicate_slots_collapse_to_one_evaluation(self):
        problem = make_two_mode_problem()
        synthesizer = MultiModeSynthesizer(
            problem, SynthesisConfig(jobs=1)
        )
        rng = random.Random(2)
        unique = [MappingString.random(problem, rng) for _ in range(4)]
        population = unique + [unique[0], unique[2], unique[2]]

        records = synthesizer._evaluate_population(population, None)

        assert len(records) == len(population)
        assert synthesizer._evaluations == len(unique)
        assert synthesizer._dedup_hits == len(population) - len(unique)
        # Duplicate slots received the same cached record.
        assert records[4] == records[0]
        assert records[5] == records[2] == records[6]

    def test_cache_hits_across_generations(self):
        problem = make_two_mode_problem()
        synthesizer = MultiModeSynthesizer(
            problem, SynthesisConfig(jobs=1)
        )
        rng = random.Random(3)
        population = [
            MappingString.random(problem, rng) for _ in range(5)
        ]
        synthesizer._evaluate_population(population, None)
        evaluations_after_first = synthesizer._evaluations

        synthesizer._evaluate_population(population, None)
        assert synthesizer._evaluations == evaluations_after_first
        assert synthesizer._cache_hits >= len(population)
