"""Differential fuzz: speculative vs non-speculative vs serial.

Acceptance coverage for speculative next-generation evaluation:
randomised GA chains on suite, smartphone and stress instances must
produce *exactly* equal results with speculation on (at depth 1 and a
deeper probe level), with speculation off, and serially — fitness,
history, best genome, evaluation counts — and a checkpointed run must
resume bit-identically with ``speculative=True``.

The configs are drawn once per instance from a seeded RNG and shared
verbatim across the arms (only ``jobs`` / ``speculative`` /
``speculation_depth`` differ), so any divergence is speculation's
fault, never the sampler's.  The fuzz corpus keeps
``convergence_generations`` above ``max_generations``, so every run
reaches the generation limit and the depth-1 predictor — an exact
replay of the breeding stages on a cloned RNG — must confirm every
speculation it issues (hits == issued, zero discards).
"""

import json
import random

import pytest

from repro.benchgen.multimode import MultiModeSpec, generate_problem
from repro.benchgen.smartphone import smartphone_problem
from repro.benchgen.suite import suite_problem
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer
from repro.synthesis.state import GAState


def _stress_mini():
    """Denser-than-suite instance, scaled to fit the fuzz budget."""
    return generate_problem(
        MultiModeSpec(
            name="stress-mini",
            seed=777,
            mode_tasks=(18, 22, 16),
            pe_count=4,
            cl_count=2,
        )
    )


#: (instance loader, DVS method) fuzz corpus — mirrors the async fuzz:
#: GRADIENT exercises the full inner loop on the small suite instances,
#: the larger graphs run NONE to keep the differential affordable.
CORPUS = [
    ("mul1", lambda: suite_problem("mul1"), DvsMethod.GRADIENT),
    ("mul3", lambda: suite_problem("mul3"), DvsMethod.GRADIENT),
    ("smartphone", smartphone_problem, DvsMethod.NONE),
    ("stress-mini", _stress_mini, DvsMethod.NONE),
]


def _draw_config(name: str, dvs: DvsMethod) -> SynthesisConfig:
    rng = random.Random(f"speculative-fuzz:{name}")
    return SynthesisConfig(
        dvs=dvs,
        seed=rng.randrange(10_000),
        population_size=rng.choice([10, 12, 14]),
        max_generations=rng.choice([3, 4]),
        convergence_generations=10,
        local_search_budget_factor=rng.choice([0.0, 0.5]),
        group_mutation_rate=rng.choice([0.1, 0.3]),
        shutdown_mutation_rate=rng.choice([0.0, 0.02]),
    )


@pytest.mark.parametrize(
    "name,loader,dvs", CORPUS, ids=[entry[0] for entry in CORPUS]
)
def test_speculative_chains_identical(name, loader, dvs):
    base = _draw_config(name, dvs)
    arms = {
        "serial": base.with_updates(jobs=1),
        "nospec": base.with_updates(jobs=2, speculative=False),
        "speculative": base.with_updates(jobs=2, speculative=True),
        "deep": base.with_updates(
            jobs=2, speculative=True, speculation_depth=2
        ),
    }
    results = {}
    for arm, config in arms.items():
        # A fresh problem per arm: no shared decode context or warm
        # mode cache can paper over a divergence between strategies.
        results[arm] = MultiModeSynthesizer(loader(), config).run()
    serial = results["serial"]
    for arm in ("nospec", "speculative", "deep"):
        result = results[arm]
        assert result.history == serial.history, arm
        assert (
            result.best.metrics.fitness == serial.best.metrics.fitness
        ), arm
        assert (
            result.best.mapping.genes == serial.best.mapping.genes
        ), arm
        assert result.evaluations == serial.evaluations, arm
        assert result.generations == serial.generations, arm
        assert result.average_power == serial.average_power, arm

    # The ablation arms never speculate...
    assert serial.perf.speculation_issued == 0
    assert results["nospec"].perf.speculation_issued == 0
    # ...the depth-1 arm speculates and — because the corpus never
    # converges before max_generations, so every predicted generation
    # really runs — confirms every prediction it issued.
    spec_perf = results["speculative"].perf
    assert spec_perf.speculation_issued > 0
    assert spec_perf.speculation_hits == spec_perf.speculation_issued
    assert spec_perf.speculation_discards == 0
    assert spec_perf.speculation_hit_rate == 1.0
    # The deeper arm adds heuristic probes: the exact predictions still
    # all confirm, the probes may or may not, and every speculation is
    # accounted for either way.
    deep_perf = results["deep"].perf
    assert deep_perf.speculation_issued >= spec_perf.speculation_issued
    assert (
        deep_perf.speculation_hits + deep_perf.speculation_discards
        == deep_perf.speculation_issued
    )
    assert deep_perf.speculation_hits >= spec_perf.speculation_hits


def test_speculation_inert_without_async_pool():
    # The flag defaults on but has nothing to speculate *on* without
    # the async evaluator: the barrier pool and the serial path must
    # run exactly as before and report zero speculation activity.
    config = SynthesisConfig(
        population_size=10,
        max_generations=3,
        convergence_generations=10,
        local_search_budget_factor=0.0,
        seed=7,
        jobs=2,
        async_pool=False,
        speculative=True,
    )
    result = MultiModeSynthesizer(suite_problem("mul1"), config).run()
    assert result.perf.speculation_issued == 0
    assert result.perf.speculation_hits == 0
    assert result.perf.speculation_discards == 0
    assert result.perf.speculation_hit_rate == 0.0


def test_kill_resume_bit_identical_with_speculation():
    problem = suite_problem("mul1")
    config = SynthesisConfig(
        population_size=10,
        max_generations=6,
        convergence_generations=8,
        local_search_budget_factor=0.0,
        seed=31,
        jobs=2,
        async_pool=True,
        speculative=True,
    )
    snapshots = []
    reference = MultiModeSynthesizer(problem, config).run(
        on_generation=snapshots.append
    )
    assert snapshots, "run emitted no generation snapshots"
    # Serialise through JSON exactly like the checkpoint store: this is
    # the state a killed campaign job restarts from.  Speculation state
    # is deliberately not part of the snapshot — a resumed run simply
    # starts predicting again from the restored RNG state.
    state = GAState.from_dict(
        json.loads(json.dumps(snapshots[len(snapshots) // 2].to_dict()))
    )
    resumed = MultiModeSynthesizer(problem, config).run(resume=state)
    assert resumed.history == reference.history
    assert resumed.best.mapping.genes == reference.best.mapping.genes
    assert resumed.average_power == reference.average_power
    assert resumed.generations == reference.generations
    # The resumed half re-predicts and confirms like the original.
    assert resumed.perf.speculation_issued > 0
    assert (
        resumed.perf.speculation_hits == resumed.perf.speculation_issued
    )
