"""ParallelEvaluator behaviour: serial fallback, pooling, resilience."""

import random

import pytest

from repro.engine.parallel import ParallelEvaluator
from repro.engine.records import EvalRecord, evaluate_genes
from repro.mapping.encoding import MappingString
from repro.synthesis.config import SynthesisConfig

from tests.conftest import make_two_mode_problem


@pytest.fixture
def problem():
    return make_two_mode_problem()


def _genomes(problem, count, seed=0):
    rng = random.Random(seed)
    return [MappingString.random(problem, rng) for _ in range(count)]


def _serial_records(problem, config, genomes):
    return [
        evaluate_genes(problem, genome.genes, config) for genome in genomes
    ]


class TestSerialPath:
    def test_jobs_one_creates_no_pool(self, problem):
        config = SynthesisConfig(jobs=1)
        with ParallelEvaluator(problem, config) as evaluator:
            assert not evaluator.uses_pool
            genomes = _genomes(problem, 6)
            records = evaluator.evaluate_batch(genomes)
        assert records == _serial_records(problem, config, genomes)
        assert all(isinstance(r, EvalRecord) for r in records)

    def test_empty_batch(self, problem):
        with ParallelEvaluator(problem, SynthesisConfig(jobs=1)) as ev:
            assert ev.evaluate_batch([]) == []

    def test_jobs_default_from_config(self, problem):
        evaluator = ParallelEvaluator(problem, SynthesisConfig(jobs=3))
        try:
            assert evaluator.jobs == 3
        finally:
            evaluator.close()


class TestPooledPath:
    def test_barrier_pool_matches_serial_records(self, problem):
        config = SynthesisConfig(jobs=2, async_pool=False)
        genomes = _genomes(problem, 10)
        with ParallelEvaluator(problem, config) as evaluator:
            if not evaluator.uses_pool:  # pragma: no cover - platform
                pytest.skip("process pool unavailable on this platform")
            records = evaluator.evaluate_batch(genomes)
            assert evaluator.batches == 1
            # The dispatching process evaluates the final chunk itself,
            # so worker-side counts cover all but that chunk.
            assert 0 < evaluator.parallel_evaluations < len(genomes)
            assert evaluator.pool_busy_seconds > 0.0
            assert evaluator.pool_dispatch_seconds > 0.0
            # Static chunking never steals.
            assert evaluator.pool_steals == 0
            assert evaluator.worker_phase_totals
        assert records == _serial_records(problem, config, genomes)

    def test_order_preserved_across_chunks(self, problem):
        config = SynthesisConfig(jobs=2, async_pool=False)
        genomes = _genomes(problem, 9, seed=4)
        with ParallelEvaluator(problem, config) as evaluator:
            if not evaluator.uses_pool:  # pragma: no cover - platform
                pytest.skip("process pool unavailable on this platform")
            records = evaluator.evaluate_batch(genomes)
        expected = _serial_records(problem, config, genomes)
        assert [r.fitness for r in records] == [
            r.fitness for r in expected
        ]

    def test_dead_pool_falls_back_to_serial(self, problem):
        config = SynthesisConfig(jobs=2, async_pool=False)
        genomes = _genomes(problem, 4)
        evaluator = ParallelEvaluator(problem, config)
        try:
            if not evaluator.uses_pool:  # pragma: no cover - platform
                pytest.skip("process pool unavailable on this platform")
            # Simulate a worker crash by tearing the pool down behind
            # the evaluator's back; the batch must still be answered,
            # and the degradation must be *surfaced* (warning + counter),
            # never silent.
            evaluator._pool.terminate()
            evaluator._pool.join()
            with pytest.warns(RuntimeWarning, match="in-process"):
                records = evaluator.evaluate_batch(genomes)
            assert not evaluator.uses_pool
            assert evaluator.pool_failures == 1
            assert evaluator.last_pool_error is not None
            assert records == _serial_records(problem, config, genomes)
            # Later batches stay on the serial path without error.
            again = evaluator.evaluate_batch(genomes)
            assert again == records
        finally:
            evaluator.close()

    def test_dead_pool_raises_in_raise_mode(self, problem):
        from repro.errors import WorkerPoolError

        config = SynthesisConfig(
            jobs=2, async_pool=False, pool_failure_mode="raise"
        )
        genomes = _genomes(problem, 4)
        evaluator = ParallelEvaluator(problem, config)
        try:
            if not evaluator.uses_pool:  # pragma: no cover - platform
                pytest.skip("process pool unavailable on this platform")
            assert evaluator.failure_mode == "raise"
            evaluator._pool.terminate()
            evaluator._pool.join()
            with pytest.raises(WorkerPoolError):
                evaluator.evaluate_batch(genomes)
            assert evaluator.pool_failures == 1
        finally:
            evaluator.close()

    def test_close_is_idempotent(self, problem):
        evaluator = ParallelEvaluator(problem, SynthesisConfig(jobs=2))
        evaluator.close()
        evaluator.close()
        assert not evaluator.uses_pool


class TestAsyncPool:
    """The work-stealing strategy behind ``async_pool=True`` (default)."""

    def test_async_is_the_default_strategy(self, problem):
        with ParallelEvaluator(problem, SynthesisConfig(jobs=2)) as ev:
            if not ev.uses_pool:  # pragma: no cover - platform
                pytest.skip("process pool unavailable on this platform")
            assert ev._async is not None
            assert ev._pool is None

    def test_async_matches_serial_records(self, problem):
        config = SynthesisConfig(jobs=2)
        genomes = _genomes(problem, 10, seed=7)
        with ParallelEvaluator(problem, config) as evaluator:
            if not evaluator.uses_pool:  # pragma: no cover - platform
                pytest.skip("process pool unavailable on this platform")
            records = evaluator.evaluate_batch(genomes)
            assert evaluator.batches == 1
            # Work stealing sends *every* genome through the queue;
            # there is no parent-local chunk.
            assert evaluator.parallel_evaluations == len(genomes)
            assert evaluator.pool_busy_seconds > 0.0
            assert evaluator.pool_dispatch_seconds > 0.0
            assert evaluator.worker_phase_totals
        serial_config = SynthesisConfig(jobs=1)
        assert records == _serial_records(problem, serial_config, genomes)

    def test_async_and_barrier_records_identical(self, problem):
        genomes = _genomes(problem, 11, seed=8)
        results = {}
        for flag in (True, False):
            config = SynthesisConfig(jobs=2, async_pool=flag)
            with ParallelEvaluator(problem, config) as evaluator:
                if not evaluator.uses_pool:  # pragma: no cover
                    pytest.skip("process pool unavailable")
                results[flag] = evaluator.evaluate_batch(genomes)
        assert results[True] == results[False]

    def test_async_publishes_cache_entries_to_parent(self, problem):
        from repro.eval.cache import mode_cache_for

        config = SynthesisConfig(jobs=2)
        cache = mode_cache_for(problem, config)
        assert len(cache) == 0
        genomes = _genomes(problem, 8, seed=9)
        with ParallelEvaluator(problem, config) as evaluator:
            if not evaluator.uses_pool:  # pragma: no cover - platform
                pytest.skip("process pool unavailable on this platform")
            evaluator.evaluate_batch(genomes)
        # Worker-computed entries were applied to the master cache
        # without being metered as local lookups.
        assert len(cache) > 0
        assert cache.hits == 0 and cache.misses == 0

    def test_dead_async_pool_falls_back_to_serial(self, problem):
        config = SynthesisConfig(jobs=2)
        genomes = _genomes(problem, 4)
        evaluator = ParallelEvaluator(problem, config)
        try:
            if not evaluator.uses_pool:  # pragma: no cover - platform
                pytest.skip("process pool unavailable on this platform")
            evaluator._async._pool.terminate()
            evaluator._async._pool.join()
            with pytest.warns(RuntimeWarning, match="in-process"):
                records = evaluator.evaluate_batch(genomes)
            assert not evaluator.uses_pool
            assert evaluator.pool_failures == 1
            serial_config = SynthesisConfig(jobs=1)
            assert records == _serial_records(
                problem, serial_config, genomes
            )
        finally:
            evaluator.close()


class TestInProcessAccounting:
    """In-process evals must never leak into the pool busy window."""

    def test_tiny_batch_books_inprocess_not_pool_busy(self, problem):
        # A batch smaller than the worker count takes the in-process
        # shortcut; its wall-clock belongs to the inprocess_* counters,
        # not to pool_busy_seconds (which would inflate utilisation for
        # cache-hot late generations).
        config = SynthesisConfig(jobs=4)
        genomes = _genomes(problem, 2, seed=5)
        with ParallelEvaluator(problem, config) as evaluator:
            records = evaluator.evaluate_batch(genomes)
            assert len(records) == 2
            assert evaluator.inprocess_evaluations == 2
            assert evaluator.inprocess_eval_seconds > 0.0
            assert evaluator.pool_busy_seconds == 0.0
            assert evaluator.pool_dispatch_seconds == 0.0
            assert evaluator.batches == 0

    def test_serial_evaluator_books_inprocess(self, problem):
        config = SynthesisConfig(jobs=1)
        genomes = _genomes(problem, 3, seed=6)
        with ParallelEvaluator(problem, config) as evaluator:
            evaluator.evaluate_batch(genomes)
            assert evaluator.inprocess_evaluations == 3
            assert evaluator.inprocess_eval_seconds > 0.0
            assert evaluator.pool_busy_seconds == 0.0
