"""Tests for the energy-gradient voltage selection (PV-DVS)."""

import random

import pytest

from repro.dvs.pv_dvs import scale_schedule, uniform_scale_schedule
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.scheduling.list_scheduler import schedule_mode

from tests.conftest import make_parallel_hw_problem, make_two_mode_problem


def nominal_schedule(problem, mode_name, genome):
    cores = allocate_cores(problem, genome)
    mode = problem.omsm.mode(mode_name)
    return mode, schedule_mode(
        problem, mode, genome.mode_mapping(mode_name), cores
    )


def sw_genome(problem):
    return MappingString(problem, ["PE0"] * problem.genome_length())


class TestSoftwareDvs:
    def test_energy_reduced_with_slack(self):
        problem = make_two_mode_problem(period=0.5)
        mode, schedule = nominal_schedule(problem, "O1", sw_genome(problem))
        scaled = scale_schedule(problem, mode, schedule)
        assert scaled.total_dynamic_energy() < schedule.total_dynamic_energy()
        scaled.validate(mode, problem.architecture)
        assert scaled.is_timing_feasible(mode)

    def test_deadlines_still_met(self):
        problem = make_two_mode_problem(period=0.12)
        mode, schedule = nominal_schedule(problem, "O1", sw_genome(problem))
        assert schedule.is_timing_feasible(mode)
        scaled = scale_schedule(problem, mode, schedule)
        assert scaled.is_timing_feasible(mode)

    def test_no_slack_no_change(self):
        # Period equal to the serial makespan: no slack to distribute.
        problem = make_two_mode_problem(period=0.2)
        mode, schedule = nominal_schedule(problem, "O1", sw_genome(problem))
        tight = make_two_mode_problem(period=schedule.makespan)
        mode_t, schedule_t = nominal_schedule(
            tight, "O1", sw_genome(tight)
        )
        scaled = scale_schedule(tight, mode_t, schedule_t)
        assert scaled.total_dynamic_energy() == pytest.approx(
            schedule_t.total_dynamic_energy()
        )
        assert scaled.makespan == pytest.approx(schedule_t.makespan)

    def test_voltage_pieces_recorded(self):
        problem = make_two_mode_problem(period=0.5)
        mode, schedule = nominal_schedule(problem, "O1", sw_genome(problem))
        scaled = scale_schedule(problem, mode, schedule)
        lowered = [
            t
            for t in scaled.tasks
            if t.pieces and t.pieces[0][1] < 3.3
        ]
        assert lowered  # plenty of slack: someone must scale down

    def test_non_dvs_pe_untouched(self):
        problem = make_two_mode_problem(dvs_sw=False, period=0.5)
        mode, schedule = nominal_schedule(problem, "O1", sw_genome(problem))
        scaled = scale_schedule(problem, mode, schedule)
        assert scaled.total_dynamic_energy() == pytest.approx(
            schedule.total_dynamic_energy()
        )
        for entry in scaled.tasks:
            assert entry.pieces == ()

    def test_infeasible_schedule_left_at_nominal(self):
        # Period far below the critical path: nothing can be scaled.
        problem = make_two_mode_problem(period=0.01)
        mode, schedule = nominal_schedule(problem, "O1", sw_genome(problem))
        assert not schedule.is_timing_feasible(mode)
        scaled = scale_schedule(problem, mode, schedule)
        assert scaled.total_dynamic_energy() == pytest.approx(
            schedule.total_dynamic_energy()
        )


class TestHardwareSharedRail:
    def hw_genome(self, problem):
        return MappingString.from_mapping(
            problem,
            {
                "M": {
                    "src": "CPU",
                    "p0": "HW",
                    "p1": "HW",
                    "p2": "HW",
                    "p3": "HW",
                    "join": "CPU",
                }
            },
        )

    def test_hw_component_scales(self):
        problem = make_parallel_hw_problem(dvs_hw=True, period=0.2)
        genome = self.hw_genome(problem)
        mode, schedule = nominal_schedule(problem, "M", genome)
        scaled = scale_schedule(problem, mode, schedule)
        scaled.validate(mode, problem.architecture)
        assert scaled.total_dynamic_energy() < schedule.total_dynamic_energy()
        assert scaled.is_timing_feasible(mode)

    def test_overlapping_tasks_share_voltage(self):
        # Tasks overlapping in time on the shared rail must agree on
        # the voltage of the shared portion: their pieces partition the
        # component timeline consistently.
        problem = make_parallel_hw_problem(dvs_hw=True, period=0.05)
        genome = self.hw_genome(problem)
        mode, schedule = nominal_schedule(problem, "M", genome)
        scaled = scale_schedule(problem, mode, schedule)
        hw_tasks = [t for t in scaled.tasks if t.pe == "HW"]
        assert hw_tasks
        for entry in hw_tasks:
            assert entry.pieces
            total = sum(duration for duration, _ in entry.pieces)
            assert total == pytest.approx(entry.duration)

    def test_non_dvs_hw_untouched(self):
        problem = make_parallel_hw_problem(dvs_hw=False, period=0.2)
        genome = self.hw_genome(problem)
        mode, schedule = nominal_schedule(problem, "M", genome)
        scaled = scale_schedule(problem, mode, schedule)
        hw_energy_before = sum(
            t.energy for t in schedule.tasks if t.pe == "HW"
        )
        hw_energy_after = sum(
            t.energy for t in scaled.tasks if t.pe == "HW"
        )
        assert hw_energy_after == pytest.approx(hw_energy_before)


class TestUniformBaseline:
    def test_never_worse_than_nominal(self):
        problem = make_two_mode_problem(period=0.5)
        mode, schedule = nominal_schedule(problem, "O1", sw_genome(problem))
        uniform = uniform_scale_schedule(problem, mode, schedule)
        assert (
            uniform.total_dynamic_energy()
            <= schedule.total_dynamic_energy() + 1e-15
        )
        uniform.validate(mode, problem.architecture)
        assert uniform.is_timing_feasible(mode)

    def test_gradient_at_least_as_good_generally(self):
        # Across a set of random mappings the gradient approach should
        # never lose by more than numerical noise, and usually win.
        problem = make_two_mode_problem(period=0.3, dvs_hw=True)
        wins = 0
        for seed in range(10):
            genome = MappingString.random(problem, random.Random(seed))
            for mode in problem.omsm.modes:
                cores = allocate_cores(problem, genome)
                schedule = schedule_mode(
                    problem, mode, genome.mode_mapping(mode.name), cores
                )
                gradient = scale_schedule(problem, mode, schedule)
                uniform = uniform_scale_schedule(problem, mode, schedule)
                if (
                    gradient.total_dynamic_energy()
                    < uniform.total_dynamic_energy() - 1e-12
                ):
                    wins += 1
        assert wins >= 1

    def test_infeasible_left_at_nominal(self):
        problem = make_two_mode_problem(period=0.01)
        mode, schedule = nominal_schedule(problem, "O1", sw_genome(problem))
        uniform = uniform_scale_schedule(problem, mode, schedule)
        assert uniform.total_dynamic_energy() == pytest.approx(
            schedule.total_dynamic_energy()
        )


class TestRandomisedInvariants:
    def test_many_random_mappings(self):
        problem = make_two_mode_problem(period=0.3, dvs_hw=True)
        for seed in range(25):
            genome = MappingString.random(problem, random.Random(seed))
            cores = allocate_cores(problem, genome)
            for mode in problem.omsm.modes:
                schedule = schedule_mode(
                    problem, mode, genome.mode_mapping(mode.name), cores
                )
                scaled = scale_schedule(problem, mode, schedule)
                scaled.validate(mode, problem.architecture)
                assert (
                    scaled.total_dynamic_energy()
                    <= schedule.total_dynamic_energy() + 1e-12
                )
                if schedule.is_timing_feasible(mode):
                    assert scaled.is_timing_feasible(mode)
