"""Unit tests for the Fig. 5 parallel-to-sequential transformation."""

import pytest

from repro.dvs.transform import segments_of_task, transform_parallel_tasks
from repro.scheduling.schedule import ScheduledTask


def hw_task(name, start, end, core=0, power=1.0, task_type="T"):
    return ScheduledTask(
        name=name,
        task_type=task_type,
        pe="HW",
        start=start,
        end=end,
        energy=power * (end - start),
        power=power,
        core_index=core,
    )


class TestFig5Example:
    """The paper's Fig. 5: 5 tasks on 2 cores → 3 sequential tasks.

    Core 0 runs τ0 then τ1; core 1 runs τ2, τ3, τ4.  The figure's
    structure arises when the activity set changes twice: a prefix
    where both cores work, a middle stretch, and a tail.
    """

    def test_two_core_overlap(self):
        tasks = [
            hw_task("t0", 0.0, 2.0, core=0, power=1.0),
            hw_task("t1", 2.0, 5.0, core=0, power=2.0),
            hw_task("t2", 0.0, 2.0, core=1, power=3.0, task_type="U"),
            hw_task("t3", 2.0, 3.0, core=1, power=1.0, task_type="U"),
            hw_task("t4", 3.0, 5.0, core=1, power=4.0, task_type="U"),
        ]
        segments = transform_parallel_tasks(tasks)
        assert [s.active for s in segments] == [
            ("t0", "t2"),
            ("t1", "t3"),
            ("t1", "t4"),
        ]
        assert [s.power for s in segments] == [4.0, 3.0, 6.0]
        assert [(s.start, s.end) for s in segments] == [
            (0.0, 2.0),
            (2.0, 3.0),
            (3.0, 5.0),
        ]

    def test_energy_equivalence(self):
        tasks = [
            hw_task("a", 0.0, 3.0, core=0, power=0.5),
            hw_task("b", 1.0, 4.0, core=1, power=0.25, task_type="U"),
        ]
        segments = transform_parallel_tasks(tasks)
        assert sum(s.energy for s in segments) == pytest.approx(
            sum(t.energy for t in tasks)
        )

    def test_makespan_equivalence(self):
        tasks = [
            hw_task("a", 0.0, 3.0),
            hw_task("b", 5.0, 8.0, core=1),
        ]
        segments = transform_parallel_tasks(tasks)
        assert segments[-1].end == 8.0


class TestSegmentation:
    def test_empty_input(self):
        assert transform_parallel_tasks([]) == ()

    def test_single_task_single_segment(self):
        segments = transform_parallel_tasks([hw_task("a", 1.0, 4.0)])
        assert len(segments) == 1
        assert segments[0].active == ("a",)
        assert segments[0].duration == pytest.approx(3.0)

    def test_idle_gap_produces_no_segment(self):
        tasks = [
            hw_task("a", 0.0, 1.0),
            hw_task("b", 3.0, 4.0),
        ]
        segments = transform_parallel_tasks(tasks)
        assert len(segments) == 2
        assert segments[0].end == 1.0
        assert segments[1].start == 3.0

    def test_indices_sequential(self):
        tasks = [
            hw_task("a", 0.0, 2.0),
            hw_task("b", 1.0, 3.0, core=1),
            hw_task("c", 2.5, 4.0, core=2),
        ]
        segments = transform_parallel_tasks(tasks)
        assert [s.index for s in segments] == list(range(len(segments)))

    def test_power_sums_active_cores(self):
        tasks = [
            hw_task("a", 0.0, 2.0, core=0, power=1.5),
            hw_task("b", 0.0, 2.0, core=1, power=2.5),
        ]
        segments = transform_parallel_tasks(tasks)
        assert len(segments) == 1
        assert segments[0].power == pytest.approx(4.0)

    def test_segments_of_task(self):
        tasks = [
            hw_task("long", 0.0, 6.0, core=0),
            hw_task("mid", 2.0, 4.0, core=1),
        ]
        segments = transform_parallel_tasks(tasks)
        own = segments_of_task(segments, "long")
        assert len(own) == 3
        assert sum(s.duration for s in own) == pytest.approx(6.0)
        mid = segments_of_task(segments, "mid")
        assert len(mid) == 1
        assert mid[0].duration == pytest.approx(2.0)

    def test_zero_duration_task_ignored(self):
        tasks = [
            hw_task("instant", 1.0, 1.0),
            hw_task("real", 0.0, 2.0, core=1),
        ]
        segments = transform_parallel_tasks(tasks)
        assert sum(s.energy for s in segments) == pytest.approx(
            2.0
        )  # only the real task carries energy
