"""Tests for the per-core-rail DVS variant (shared_rail=False)."""



from repro.dvs.pv_dvs import scale_schedule
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.scheduling.list_scheduler import schedule_mode
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.evaluator import evaluate_mapping

from tests.conftest import make_parallel_hw_problem


def hw_case(period):
    problem = make_parallel_hw_problem(dvs_hw=True, period=period)
    genome = MappingString.from_mapping(
        problem,
        {
            "M": {
                "src": "CPU",
                "p0": "HW",
                "p1": "HW",
                "p2": "HW",
                "p3": "HW",
                "join": "CPU",
            }
        },
    )
    cores = allocate_cores(problem, genome)
    mode = problem.omsm.mode("M")
    schedule = schedule_mode(
        problem, mode, genome.mode_mapping("M"), cores
    )
    return problem, mode, schedule, genome


class TestPerCoreRail:
    def test_at_least_as_good_as_shared(self):
        problem, mode, schedule, _ = hw_case(period=0.03)
        shared = scale_schedule(
            problem, mode, schedule, shared_rail=True
        )
        per_core = scale_schedule(
            problem, mode, schedule, shared_rail=False
        )
        assert (
            per_core.total_dynamic_energy()
            <= shared.total_dynamic_energy() + 1e-12
        )

    def test_strictly_better_with_overlap(self):
        # Multi-core overlap with a tight-ish deadline: the shared rail
        # cannot slow one core independently; per-core rails can.
        problem, mode, schedule, _ = hw_case(period=0.017)
        hw_tasks = [t for t in schedule.tasks if t.pe == "HW"]
        cores_used = {t.core_index for t in hw_tasks}
        assert len(cores_used) > 1  # the scenario really overlaps
        shared = scale_schedule(
            problem, mode, schedule, shared_rail=True
        )
        per_core = scale_schedule(
            problem, mode, schedule, shared_rail=False
        )
        assert (
            per_core.total_dynamic_energy()
            <= shared.total_dynamic_energy() + 1e-12
        )

    def test_feasibility_and_validity(self):
        problem, mode, schedule, _ = hw_case(period=0.03)
        per_core = scale_schedule(
            problem, mode, schedule, shared_rail=False
        )
        per_core.validate(mode, problem.architecture)
        assert per_core.is_timing_feasible(mode)

    def test_single_piece_per_task(self):
        # Per-core rails: every HW task runs at one voltage, so it has
        # exactly one (duration, voltage) piece.
        problem, mode, schedule, _ = hw_case(period=0.03)
        per_core = scale_schedule(
            problem, mode, schedule, shared_rail=False
        )
        for task in per_core.tasks:
            if task.pe == "HW" and task.pieces:
                assert len(task.pieces) == 1

    def test_config_plumbs_through_evaluator(self):
        problem, _, _, genome = hw_case(period=0.03)
        shared = evaluate_mapping(
            problem,
            genome,
            SynthesisConfig(
                dvs=DvsMethod.GRADIENT, dvs_shared_rail=True
            ),
        )
        per_core = evaluate_mapping(
            problem,
            genome,
            SynthesisConfig(
                dvs=DvsMethod.GRADIENT, dvs_shared_rail=False
            ),
        )
        assert (
            per_core.metrics.average_power
            <= shared.metrics.average_power + 1e-12
        )
