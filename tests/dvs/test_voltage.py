"""Unit tests for the voltage/delay/energy model."""

import pytest

from repro.dvs.voltage import (
    duration_energy_tables,
    minimum_feasible_level,
    scaled_duration,
    scaled_energy,
    speed_factor,
)
from repro.errors import VoltageScalingError

LEVELS = (1.2, 1.8, 2.4, 3.3)
VT = 0.4


class TestSpeedFactor:
    def test_monotonically_increasing(self):
        speeds = [speed_factor(v, VT) for v in LEVELS]
        assert speeds == sorted(speeds)
        assert speeds[0] < speeds[-1]

    def test_below_threshold_rejected(self):
        with pytest.raises(VoltageScalingError):
            speed_factor(0.4, VT)
        with pytest.raises(VoltageScalingError):
            speed_factor(0.1, VT)


class TestScaledDuration:
    def test_identity_at_nominal(self):
        assert scaled_duration(0.01, 3.3, 3.3, VT) == pytest.approx(0.01)

    def test_longer_at_lower_voltage(self):
        durations = [
            scaled_duration(0.01, v, 3.3, VT) for v in LEVELS
        ]
        assert durations == sorted(durations, reverse=True)
        assert durations[0] > 0.01

    def test_zero_duration_stays_zero(self):
        assert scaled_duration(0.0, 1.2, 3.3, VT) == 0.0

    def test_above_nominal_rejected(self):
        with pytest.raises(VoltageScalingError):
            scaled_duration(0.01, 3.5, 3.3, VT)

    def test_negative_duration_rejected(self):
        with pytest.raises(VoltageScalingError):
            scaled_duration(-0.01, 1.2, 3.3, VT)


class TestScaledEnergy:
    def test_identity_at_nominal(self):
        assert scaled_energy(1.0, 3.3, 3.3) == pytest.approx(1.0)

    def test_quadratic_law(self):
        # E(V) = E_nom * (V / Vmax)^2 -- the paper's Section 3 formula.
        assert scaled_energy(1.0, 1.65, 3.3) == pytest.approx(0.25)
        assert scaled_energy(2.0, 1.2, 3.3) == pytest.approx(
            2.0 * (1.2 / 3.3) ** 2
        )

    def test_above_nominal_rejected(self):
        with pytest.raises(VoltageScalingError):
            scaled_energy(1.0, 3.4, 3.3)

    def test_negative_energy_rejected(self):
        with pytest.raises(VoltageScalingError):
            scaled_energy(-1.0, 1.2, 3.3)


class TestTables:
    def test_shapes_and_order(self):
        durations, energies = duration_energy_tables(
            0.01, 0.5, LEVELS, VT
        )
        assert len(durations) == len(LEVELS)
        assert len(energies) == len(LEVELS)
        # Ascending voltage: durations fall, energies rise.
        assert list(durations) == sorted(durations, reverse=True)
        assert list(energies) == sorted(energies)
        assert durations[-1] == pytest.approx(0.01)
        assert energies[-1] == pytest.approx(0.5)

    def test_empty_levels_rejected(self):
        with pytest.raises(VoltageScalingError):
            duration_energy_tables(0.01, 0.5, (), VT)


class TestMinimumFeasibleLevel:
    def test_nominal_needed(self):
        index = minimum_feasible_level(0.01, 0.01, LEVELS, VT)
        assert index == len(LEVELS) - 1

    def test_lowest_possible(self):
        index = minimum_feasible_level(0.01, 10.0, LEVELS, VT)
        assert index == 0

    def test_intermediate(self):
        budget = scaled_duration(0.01, 1.8, 3.3, VT)
        assert minimum_feasible_level(0.01, budget, LEVELS, VT) == 1

    def test_infeasible_budget_raises(self):
        with pytest.raises(VoltageScalingError):
            minimum_feasible_level(0.01, 0.001, LEVELS, VT)
