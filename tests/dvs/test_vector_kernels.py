"""Differential fuzz oracle for the vectorised PV-DVS kernels.

The array kernels (:mod:`repro.dvs._kernels`) must be *bit-identical*
to both the frozen seed implementation
(:mod:`repro.dvs._pv_dvs_reference`) and the legacy object-graph loop
(``scale_schedule(vector=False)``) — every float of every task and
comm, not approximately.  The corpus covers:

* random-mapping schedules over mul1 / mul3 / smartphone (software
  DVS, shared-rail hardware segment chains, and both rail modes);
* replayed GA-style mutation chains — successive single/few-gene
  perturbations of one genome, the schedule distribution the engine
  actually feeds the kernels;
* the synthetic micro problems of the dvs test fixtures.

The analytical warm start is *not* identity-preserving by design; its
contract — final energy never worse than the cold descent — is
asserted over the same corpus.
"""

import random

import pytest

from repro.benchgen import registry
from repro.dvs._pv_dvs_reference import reference_scale_schedule
from repro.dvs.pv_dvs import scale_schedule
from repro.engine.decode_cache import context_for
from repro.errors import VoltageScalingError
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.scheduling.list_scheduler import schedule_mode

from tests.conftest import make_parallel_hw_problem, make_two_mode_problem

INSTANCES = ("mul1", "mul3", "smartphone")


def _schedules_for(problem, genome):
    """All schedulable (mode, schedule) pairs of one genome."""
    try:
        cores = allocate_cores(problem, genome)
    except Exception:
        return
    for mode in problem.omsm.modes:
        try:
            yield mode, schedule_mode(
                problem, mode, genome.mode_mapping(mode.name), cores
            )
        except Exception:
            continue


def _assert_identical(a, b, label):
    assert len(a.tasks) == len(b.tasks), label
    assert len(a.comms) == len(b.comms), label
    for left, right in zip(a.tasks, b.tasks):
        assert left == right, (label, left, right)
    for left, right in zip(a.comms, b.comms):
        assert left == right, (label, left, right)


def _check_all_oracles(problem, mode, schedule, context, shared_rail):
    reference = reference_scale_schedule(
        problem, mode, schedule, shared_rail=shared_rail
    )
    legacy = scale_schedule(
        problem,
        mode,
        schedule,
        shared_rail=shared_rail,
        context=context,
        vector=False,
    )
    vector = scale_schedule(
        problem,
        mode,
        schedule,
        shared_rail=shared_rail,
        context=context,
        vector=True,
    )
    _assert_identical(reference, legacy, f"{mode.name}/legacy-vs-reference")
    _assert_identical(reference, vector, f"{mode.name}/vector-vs-reference")


@pytest.mark.parametrize("name", INSTANCES)
@pytest.mark.parametrize("shared_rail", [True, False])
def test_random_mapping_corpus_bit_identical(name, shared_rail):
    problem = registry.get(name)
    context = context_for(problem)
    rng = random.Random(1234)
    checked = 0
    for _ in range(8):
        genome = MappingString.random(problem, rng)
        for mode, schedule in _schedules_for(problem, genome):
            _check_all_oracles(
                problem, mode, schedule, context, shared_rail
            )
            checked += 1
    assert checked > 0


@pytest.mark.parametrize("name", INSTANCES)
def test_mutation_chain_corpus_bit_identical(name):
    # GA-style trajectory: a random genome perturbed gene by gene; the
    # schedule deltas mirror what the synthesis loop actually produces.
    problem = registry.get(name)
    context = context_for(problem)
    rng = random.Random(99)
    genome = MappingString.random(problem, rng)
    checked = 0
    for _ in range(12):
        genome = genome.mutate(rng, per_gene_rate=0.08)
        for mode, schedule in _schedules_for(problem, genome):
            _check_all_oracles(problem, mode, schedule, context, True)
            checked += 1
    assert checked > 0


def test_micro_problems_bit_identical():
    for problem in (
        make_two_mode_problem(period=0.5),
        make_parallel_hw_problem(),
    ):
        context = context_for(problem)
        rng = random.Random(7)
        for _ in range(6):
            genome = MappingString.random(problem, rng)
            for mode, schedule in _schedules_for(problem, genome):
                for shared_rail in (True, False):
                    _check_all_oracles(
                        problem, mode, schedule, context, shared_rail
                    )


@pytest.mark.parametrize("name", INSTANCES)
def test_warm_start_never_worse_than_cold(name):
    problem = registry.get(name)
    context = context_for(problem)
    rng = random.Random(4321)
    checked = 0
    for _ in range(8):
        genome = MappingString.random(problem, rng)
        for mode, schedule in _schedules_for(problem, genome):
            cold = scale_schedule(
                problem, mode, schedule, context=context, vector=True
            )
            warm = scale_schedule(
                problem,
                mode,
                schedule,
                context=context,
                vector=True,
                warm_start=True,
            )
            cold_energy = sum(task.energy for task in cold.tasks)
            warm_energy = sum(task.energy for task in warm.tasks)
            assert warm_energy <= cold_energy * (1.0 + 1e-12), mode.name
            # Whenever the cold path is deadline-feasible (an already
            # infeasible input passes through unscaled), the warm path
            # must be feasible too.
            if cold.is_timing_feasible(mode):
                assert warm.is_timing_feasible(mode)
            checked += 1
    assert checked > 0


def test_warm_start_counters_and_snap_histogram():
    # Every warm-started call is accounted exactly once: either
    # applied, or skipped with a reason label; each applied seed also
    # records one snap-distance observation per lowered node.
    from repro.obs.metrics import REGISTRY

    problem = registry.get("mul1")
    context = context_for(problem)
    mode_names = [mode.name for mode in problem.omsm.modes]
    reasons = ("no_scalable", "no_slack", "infeasible")

    def totals():
        applied = sum(
            REGISTRY.counter_value("dvs_warm_start_applied_total", mode=m)
            for m in mode_names
        )
        skipped = sum(
            REGISTRY.counter_value(
                "dvs_warm_start_skipped_total", mode=m, reason=r
            )
            for m in mode_names
            for r in reasons
        )
        snaps = sum(
            REGISTRY.histogram_data(
                "dvs_warm_start_snap_levels", mode=m
            ).count
            for m in mode_names
        )
        return applied, skipped, snaps

    before = totals()
    rng = random.Random(2026)
    calls = 0
    for _ in range(6):
        genome = MappingString.random(problem, rng)
        for mode, schedule in _schedules_for(problem, genome):
            scale_schedule(
                problem,
                mode,
                schedule,
                context=context,
                vector=True,
                warm_start=True,
            )
            calls += 1
    applied, skipped, snaps = (
        now - prior for now, prior in zip(totals(), before)
    )
    assert calls > 0
    assert applied + skipped == calls
    assert applied > 0
    # One histogram observation per snapped node; applied runs snap at
    # least one node each, and every drop is at least one level.
    assert snaps >= applied
    histogram = REGISTRY.histogram_data(
        "dvs_warm_start_snap_levels", mode=mode_names[0]
    )
    if histogram.count:
        assert histogram.minimum >= 1.0


def test_warm_start_requires_vector_kernels():
    problem = make_two_mode_problem(period=0.5)
    genome = MappingString(problem, ["PE0"] * problem.genome_length())
    cores = allocate_cores(problem, genome)
    mode = problem.omsm.mode("O1")
    schedule = schedule_mode(
        problem, mode, genome.mode_mapping("O1"), cores
    )
    with pytest.raises(VoltageScalingError):
        scale_schedule(
            problem, mode, schedule, vector=False, warm_start=True
        )
