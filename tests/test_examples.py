"""Smoke tests: the example scripts run and print sensible output.

The heavyweight smart phone case study is exercised with its module
constants monkey-patched down to a minimal budget.
"""

import runpy

import pytest

EXAMPLES = "examples"


class TestQuickstart:
    def test_runs_and_reports_savings(self, capsys, monkeypatch):
        module = runpy.run_path(
            f"{EXAMPLES}/quickstart.py", run_name="not_main"
        )
        module["main"]()
        out = capsys.readouterr().out
        assert "probability-neglecting synthesis" in out
        assert "probability-aware synthesis" in out
        assert "saves" in out


class TestMotivational:
    def test_reproduces_paper_numbers(self, capsys):
        module = runpy.run_path(
            f"{EXAMPLES}/motivational_example.py", run_name="not_main"
        )
        module["example_1"]()
        module["example_2"]()
        out = capsys.readouterr().out
        assert "26.7158" in out
        assert "15.7423" in out
        assert "41" in out
        assert "('PE1', 'CL0')" in out


class TestDvsHardwareCores:
    def test_shows_transform_and_scaling(self, capsys):
        module = runpy.run_path(
            f"{EXAMPLES}/dvs_hardware_cores.py", run_name="not_main"
        )
        module["main"]()
        out = capsys.readouterr().out
        assert "Fig. 5 transformation" in out
        assert "segment 0" in out
        assert "gradient" in out
        assert "core allocation" in out


class TestPersistSimulateBattery:
    @pytest.mark.slow
    def test_full_flow(self, capsys):
        module = runpy.run_path(
            f"{EXAMPLES}/persist_simulate_battery.py",
            run_name="not_main",
        )
        module["main"]()
        out = capsys.readouterr().out
        assert "saved and reloaded" in out
        assert "simulated power" in out
        assert "battery" in out


class TestSimulationValidation:
    @pytest.mark.slow
    def test_convergence_table(self, capsys):
        module = runpy.run_path(
            f"{EXAMPLES}/simulation_validation.py", run_name="not_main"
        )
        module["main"]()
        out = capsys.readouterr().out
        assert "convergence of simulated power" in out
        assert "Eq. (1)" in out


class TestCampaignResume:
    @pytest.mark.slow
    def test_kill_and_resume_bit_identical(self, capsys):
        module = runpy.run_path(
            f"{EXAMPLES}/campaign_resume.py", run_name="not_main"
        )
        module["main"]()
        out = capsys.readouterr().out
        assert "campaign killed mid-job (simulated crash)" in out
        assert "bit-identical to the uninterrupted campaign: True" in out
        assert "Recovered from events.jsonl" in out


class TestOnlineAdaptation:
    @pytest.mark.slow
    def test_closed_loop_beats_static_deployment(self, capsys):
        module = runpy.run_path(
            f"{EXAMPLES}/online_adaptation.py", run_name="not_main"
        )
        outcome = module["main"]()
        out = capsys.readouterr().out
        assert "design-time synthesis" in out
        assert "usage shifts to MP3-heavy" in out
        assert "resynthesis" in out
        # The acceptance property: the closed loop spends measurably
        # less energy than leaving the design-time design deployed.
        assert outcome["adaptive_energy"] < outcome["static_energy"]
        report = outcome["report"]
        assert report.swaps >= 1
        assert report.resyntheses >= 1
        assert report.deployed != "design-time"

    @pytest.mark.slow
    def test_decisions_are_bit_reproducible(self):
        module = runpy.run_path(
            f"{EXAMPLES}/online_adaptation.py", run_name="not_main"
        )
        first = module["main"]()["report"]
        second = module["main"]()["report"]
        assert first.energy == second.energy
        assert first.deployed == second.deployed
        assert [
            (d.time, d.kind, d.design) for d in first.decisions
        ] == [(d.time, d.kind, d.design) for d in second.decisions]
        assert first.psi_estimate == second.psi_estimate


class TestSmartphoneCaseStudy:
    @pytest.mark.slow
    def test_runs_with_tiny_budget(self, capsys):
        module = runpy.run_path(
            f"{EXAMPLES}/smartphone_case_study.py", run_name="not_main"
        )
        # Shrink the experiment drastically: one run, small GA.
        module["CONFIG"] = module["CONFIG"].with_updates(
            population_size=10,
            max_generations=8,
            convergence_generations=4,
        )
        main = module["main"]
        main.__globals__["RUNS"] = 1
        main.__globals__["CONFIG"] = module["CONFIG"]
        main()
        out = capsys.readouterr().out
        assert "smart phone OMSM" in out
        assert "overall" in out
