"""The `repro.api` facade: the supported import surface."""

import pytest

import repro
from repro import (
    CampaignSpec,
    SynthesisConfig,
    load_problem,
    problem_names,
    resume_campaign,
    run_campaign,
    synthesize,
)
from repro.benchgen import registry
from repro.problem import Problem
from repro.runtime.checkpoint import spec_path

from tests.conftest import make_two_mode_problem


class TestFacadeSurface:
    def test_everything_reachable_from_top_level(self):
        for name in (
            "load_problem",
            "problem_names",
            "synthesize",
            "run_campaign",
            "resume_campaign",
            "CampaignSpec",
            "CampaignRunner",
            "CampaignResult",
            "JobSpec",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__

    def test_load_problem_uses_registry(self):
        problem = load_problem("mul2")
        assert isinstance(problem, Problem)
        assert problem.name == "mul2"

    def test_load_problem_unknown_name(self):
        with pytest.raises(KeyError, match="valid names"):
            load_problem("nonesuch")

    def test_problem_names(self):
        names = problem_names()
        assert names == registry.names()
        assert "mul1" in names and "smartphone" in names


class TestSynthesizeFacade:
    def test_synthesize_runs_a_problem(self):
        problem = make_two_mode_problem()
        result = synthesize(
            problem,
            SynthesisConfig(
                population_size=8, max_generations=6, seed=1
            ),
        )
        assert result.best is not None
        assert result.average_power > 0


class TestRunCampaignFacade:
    def _problem_loader(self):
        problem = make_two_mode_problem()
        return lambda name: problem

    def _spec_dict(self):
        return {
            "name": "api-smoke",
            "instances": ["two_mode"],
            "runs": 1,
            "base_seed": 2,
            "config": {
                "population_size": 8,
                "max_generations": 6,
                "convergence_generations": 4,
            },
            "checkpoint_every": 3,
        }

    def test_accepts_plain_dict_and_temp_dir(self):
        outcome = run_campaign(
            self._spec_dict(), problem_loader=self._problem_loader()
        )
        assert outcome.completed == 2
        assert outcome.failed == 0

    def test_accepts_spec_path(self, tmp_path):
        spec = CampaignSpec.from_dict(self._spec_dict())
        path = tmp_path / "spec.json"
        spec.save(path)
        outcome = run_campaign(
            path,
            tmp_path / "run",
            problem_loader=self._problem_loader(),
        )
        assert outcome.completed == 2
        assert spec_path(tmp_path / "run").exists()

    def test_resume_campaign_reexported(self, tmp_path):
        loader = self._problem_loader()
        run_campaign(self._spec_dict(), tmp_path / "run", problem_loader=loader)
        again = resume_campaign(tmp_path / "run", problem_loader=loader)
        assert again.completed == 2
