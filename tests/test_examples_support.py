"""Tests for the Fig. 2/Fig. 3 support module itself."""

import pytest

from repro.examples_support import (
    FIG2_PE1_AREA,
    FIG2_TABLE,
    fig2_mapping_with_probabilities,
    fig2_mapping_without_probabilities,
    fig2_problem,
    fig3_problem,
    weighted_task_energy,
)


class TestFig2Table:
    def test_six_types(self):
        assert set(FIG2_TABLE) == set("ABCDEF")

    def test_paper_values_transcribed(self):
        # Spot-check the printed table: type C is 32 ms / 16 mW·s in
        # software and 1.6 ms / 0.023 mW·s / 275 cells in hardware.
        sw_ms, sw_mws, hw_ms, hw_mws, cells = FIG2_TABLE["C"]
        assert (sw_ms, sw_mws) == (32.0, 16.0)
        assert (hw_ms, hw_mws, cells) == (1.6, 0.023, 275.0)

    def test_hardware_always_faster_and_cheaper(self):
        for row in FIG2_TABLE.values():
            sw_ms, sw_mws, hw_ms, hw_mws, _ = row
            assert hw_ms < sw_ms
            assert hw_mws < sw_mws

    def test_two_cores_fit_three_do_not(self):
        # The paper: "at most 2 cores can be allocated at the same
        # time" on the 600-cell component.
        areas = sorted(row[4] for row in FIG2_TABLE.values())
        assert areas[0] + areas[1] <= FIG2_PE1_AREA
        assert areas[0] + areas[1] + areas[2] > FIG2_PE1_AREA


class TestProblemBuilders:
    def test_fig2_problem_structure(self):
        problem = fig2_problem()
        assert problem.omsm.mode("O1").probability == 0.1
        assert problem.omsm.mode("O2").probability == 0.9
        assert problem.architecture.pe("PE1").area == 600.0

    def test_fig2_energy_helper_ignores_static(self):
        with_static = fig2_problem(static_pe1=5e-3)
        mapping = fig2_mapping_without_probabilities(with_static)
        assert weighted_task_energy(
            with_static, mapping
        ) == pytest.approx(26.7158e-3, abs=1e-9)

    def test_fig2_mappings_cover_all_tasks(self):
        problem = fig2_problem()
        for builder in (
            fig2_mapping_without_probabilities,
            fig2_mapping_with_probabilities,
        ):
            mapping = builder(problem)
            assert len(mapping) == 6

    def test_fig3_shares_type_a(self):
        problem = fig3_problem()
        assert "A" in problem.omsm.shared_task_types()

    def test_fig3_probabilities_even(self):
        problem = fig3_problem()
        for mode in problem.omsm.modes:
            assert mode.probability == 0.5
