"""Shared fixtures: small hand-built co-synthesis problems."""

from __future__ import annotations

import random

import pytest

from repro.architecture import (
    Architecture,
    CommunicationLink,
    PEKind,
    ProcessingElement,
    TaskImplementation,
    TechnologyLibrary,
)
from repro.problem import Problem
from repro.specification import (
    CommEdge,
    Mode,
    ModeTransition,
    OMSM,
    Task,
    TaskGraph,
)


def make_two_mode_problem(
    dvs_sw: bool = True,
    dvs_hw: bool = False,
    asic_area: float = 600.0,
    period: float = 0.2,
    hw_kind: PEKind = PEKind.ASIC,
    reconfig_time_per_cell: float = 0.0,
    transition_limit: float = 0.05,
) -> Problem:
    """A 2-mode, 2-PE problem exercising every model feature.

    Mode O1 (Ψ=0.1): diamond graph t1→{t2,t3}→t4 with a repeated type A.
    Mode O2 (Ψ=0.9): fork u1→{u2,u3}.
    Types A..F all run on the GPP and on the hardware component.
    """
    graph1 = TaskGraph(
        "g1",
        [
            Task("t1", "A"),
            Task("t2", "B"),
            Task("t3", "C"),
            Task("t4", "A"),
        ],
        [
            CommEdge("t1", "t2", 1000.0),
            CommEdge("t1", "t3", 500.0),
            CommEdge("t2", "t4", 100.0),
            CommEdge("t3", "t4", 100.0),
        ],
    )
    graph2 = TaskGraph(
        "g2",
        [Task("u1", "D"), Task("u2", "E"), Task("u3", "F")],
        [CommEdge("u1", "u2", 100.0), CommEdge("u1", "u3", 100.0)],
    )
    omsm = OMSM(
        "two_mode",
        [
            Mode("O1", graph1, probability=0.1, period=period),
            Mode("O2", graph2, probability=0.9, period=period),
        ],
        [
            ModeTransition("O1", "O2", max_time=transition_limit),
            ModeTransition("O2", "O1", max_time=transition_limit),
        ],
    )
    levels = (1.2, 1.8, 2.4, 3.3)
    pe0 = ProcessingElement(
        "PE0",
        PEKind.GPP,
        static_power=5e-3,
        voltage_levels=levels if dvs_sw else None,
    )
    pe1 = ProcessingElement(
        "PE1",
        hw_kind,
        area=asic_area,
        static_power=2e-3,
        voltage_levels=levels if dvs_hw else None,
        reconfig_time_per_cell=reconfig_time_per_cell,
    )
    bus = CommunicationLink(
        "CL0",
        ["PE0", "PE1"],
        bandwidth_bps=1e6,
        comm_power=1e-3,
        static_power=5e-4,
    )
    architecture = Architecture("arch", [pe0, pe1], [bus])
    entries = []
    for index, task_type in enumerate("ABCDEF"):
        entries.append(
            TaskImplementation(
                task_type,
                "PE0",
                exec_time=0.02 + 0.002 * index,
                power=0.5,
            )
        )
        entries.append(
            TaskImplementation(
                task_type,
                "PE1",
                exec_time=0.002,
                power=0.005,
                area=250.0,
            )
        )
    return Problem(omsm, architecture, TechnologyLibrary(entries))


def make_parallel_hw_problem(
    dvs_hw: bool = True, period: float = 0.1
) -> Problem:
    """One mode with four parallel same-type tasks feeding a join.

    Exercises multi-core allocation and the Fig. 5 DVS transformation
    (parallel hardware tasks on a shared voltage rail).
    """
    graph = TaskGraph(
        "par",
        [
            Task("src", "S"),
            Task("p0", "P"),
            Task("p1", "P"),
            Task("p2", "P"),
            Task("p3", "P"),
            Task("join", "J"),
        ],
        [
            CommEdge("src", "p0", 100.0),
            CommEdge("src", "p1", 100.0),
            CommEdge("src", "p2", 100.0),
            CommEdge("src", "p3", 100.0),
            CommEdge("p0", "join", 100.0),
            CommEdge("p1", "join", 100.0),
            CommEdge("p2", "join", 100.0),
            CommEdge("p3", "join", 100.0),
        ],
    )
    omsm = OMSM(
        "parallel",
        [Mode("M", graph, probability=1.0, period=period)],
    )
    levels = (1.2, 1.8, 2.4, 3.3)
    gpp = ProcessingElement(
        "CPU", PEKind.GPP, static_power=1e-3, voltage_levels=levels
    )
    hw = ProcessingElement(
        "HW",
        PEKind.ASIC,
        area=2000.0,
        static_power=1e-3,
        voltage_levels=levels if dvs_hw else None,
    )
    bus = CommunicationLink(
        "BUS", ["CPU", "HW"], bandwidth_bps=1e7, comm_power=1e-3
    )
    architecture = Architecture("arch", [gpp, hw], [bus])
    entries = [
        TaskImplementation("S", "CPU", exec_time=0.004, power=0.2),
        TaskImplementation("J", "CPU", exec_time=0.004, power=0.2),
        TaskImplementation("P", "CPU", exec_time=0.02, power=0.3),
        TaskImplementation(
            "P", "HW", exec_time=0.004, power=0.05, area=400.0
        ),
        TaskImplementation(
            "S", "HW", exec_time=0.001, power=0.02, area=300.0
        ),
        TaskImplementation(
            "J", "HW", exec_time=0.001, power=0.02, area=300.0
        ),
    ]
    return Problem(omsm, architecture, TechnologyLibrary(entries))


@pytest.fixture
def two_mode_problem() -> Problem:
    return make_two_mode_problem()


@pytest.fixture
def parallel_hw_problem() -> Problem:
    return make_parallel_hw_problem()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)
