"""Unit tests for operational modes."""

import pytest

from repro.errors import SpecificationError
from repro.specification import CommEdge, Mode, Task, TaskGraph


def simple_graph(deadline=None) -> TaskGraph:
    return TaskGraph(
        "g",
        [Task("a", "X", deadline=deadline), Task("b", "Y")],
        [CommEdge("a", "b")],
    )


class TestModeConstruction:
    def test_attributes(self):
        mode = Mode("standby", simple_graph(), 0.7, 0.025)
        assert mode.name == "standby"
        assert mode.probability == 0.7
        assert mode.period == 0.025
        assert len(mode.task_graph) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError):
            Mode("", simple_graph(), 0.5, 1.0)

    @pytest.mark.parametrize("probability", [-0.1, 1.1, 2.0])
    def test_bad_probability_rejected(self, probability):
        with pytest.raises(SpecificationError):
            Mode("m", simple_graph(), probability, 1.0)

    @pytest.mark.parametrize("probability", [0.0, 0.5, 1.0])
    def test_boundary_probability_accepted(self, probability):
        assert Mode("m", simple_graph(), probability, 1.0)

    @pytest.mark.parametrize("period", [0.0, -1.0])
    def test_bad_period_rejected(self, period):
        with pytest.raises(SpecificationError):
            Mode("m", simple_graph(), 0.5, period)

    def test_task_deadline_beyond_period_rejected(self):
        with pytest.raises(SpecificationError, match="deadline"):
            Mode("m", simple_graph(deadline=2.0), 0.5, 1.0)


class TestEffectiveDeadline:
    def test_without_task_deadline_period_binds(self):
        mode = Mode("m", simple_graph(), 0.5, 0.1)
        assert mode.effective_deadline("a") == 0.1
        assert mode.effective_deadline("b") == 0.1

    def test_task_deadline_tightens(self):
        mode = Mode("m", simple_graph(deadline=0.05), 0.5, 0.1)
        assert mode.effective_deadline("a") == 0.05
        assert mode.effective_deadline("b") == 0.1

    def test_unknown_task_raises(self):
        mode = Mode("m", simple_graph(), 0.5, 0.1)
        with pytest.raises(SpecificationError):
            mode.effective_deadline("ghost")
