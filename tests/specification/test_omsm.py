"""Unit tests for the operational mode state machine."""

import math

import pytest

from repro.errors import SpecificationError
from repro.specification import Mode, ModeTransition, OMSM, Task, TaskGraph


def graph(name: str, types) -> TaskGraph:
    return TaskGraph(
        name,
        [Task(f"{name}_t{i}", t) for i, t in enumerate(types)],
    )


def make_modes():
    return [
        Mode("a", graph("ga", ["X", "Y"]), 0.6, 0.1),
        Mode("b", graph("gb", ["Y", "Z"]), 0.3, 0.1),
        Mode("c", graph("gc", ["W"]), 0.1, 0.1),
    ]


class TestModeTransition:
    def test_defaults_to_unconstrained(self):
        transition = ModeTransition("a", "b")
        assert transition.max_time == math.inf
        assert transition.key == ("a", "b")

    def test_self_loop_rejected(self):
        with pytest.raises(SpecificationError):
            ModeTransition("a", "a")

    @pytest.mark.parametrize("limit", [0.0, -0.5])
    def test_non_positive_limit_rejected(self, limit):
        with pytest.raises(SpecificationError):
            ModeTransition("a", "b", max_time=limit)


class TestOMSMConstruction:
    def test_basic(self):
        omsm = OMSM("app", make_modes(), [ModeTransition("a", "b")])
        assert len(omsm) == 3
        assert omsm.mode_names == ("a", "b", "c")
        assert len(omsm.transitions) == 1

    def test_needs_at_least_one_mode(self):
        with pytest.raises(SpecificationError):
            OMSM("app", [])

    def test_duplicate_mode_names_rejected(self):
        modes = make_modes()
        modes[1] = Mode("a", graph("gx", ["Q"]), 0.3, 0.1)
        with pytest.raises(SpecificationError):
            OMSM("app", modes)

    def test_probabilities_must_sum_to_one(self):
        modes = [
            Mode("a", graph("ga", ["X"]), 0.5, 0.1),
            Mode("b", graph("gb", ["Y"]), 0.1, 0.1),
        ]
        with pytest.raises(SpecificationError, match="sum"):
            OMSM("app", modes)

    def test_normalize_rescales(self):
        modes = [
            Mode("a", graph("ga", ["X"]), 0.5, 0.1),
            Mode("b", graph("gb", ["Y"]), 0.1, 0.1),
        ]
        omsm = OMSM("app", modes, normalize=True)
        assert sum(m.probability for m in omsm.modes) == pytest.approx(1.0)
        assert omsm.mode("a").probability == pytest.approx(0.5 / 0.6)

    def test_normalize_zero_total_rejected(self):
        modes = [Mode("a", graph("ga", ["X"]), 0.0, 0.1)]
        with pytest.raises(SpecificationError):
            OMSM("app", modes, normalize=True)

    def test_transition_unknown_mode_rejected(self):
        with pytest.raises(SpecificationError):
            OMSM("app", make_modes(), [ModeTransition("a", "ghost")])

    def test_duplicate_transition_rejected(self):
        with pytest.raises(SpecificationError):
            OMSM(
                "app",
                make_modes(),
                [ModeTransition("a", "b"), ModeTransition("a", "b")],
            )

    def test_tolerance_accepts_rounding(self):
        modes = [
            Mode("a", graph("ga", ["X"]), 0.3333333, 0.1),
            Mode("b", graph("gb", ["Y"]), 0.3333333, 0.1),
            Mode("c", graph("gc", ["Z"]), 0.3333334, 0.1),
        ]
        assert OMSM("app", modes)


class TestOMSMAccessors:
    def test_mode_lookup(self):
        omsm = OMSM("app", make_modes())
        assert omsm.mode("b").probability == 0.3
        with pytest.raises(SpecificationError):
            omsm.mode("ghost")

    def test_transition_lookup(self):
        omsm = OMSM(
            "app",
            make_modes(),
            [ModeTransition("a", "b", 0.01), ModeTransition("b", "a", 0.02)],
        )
        assert omsm.transition("a", "b").max_time == 0.01
        assert omsm.has_transition("b", "a")
        assert not omsm.has_transition("a", "c")
        with pytest.raises(SpecificationError):
            omsm.transition("a", "c")

    def test_outgoing_incoming(self):
        omsm = OMSM(
            "app",
            make_modes(),
            [
                ModeTransition("a", "b"),
                ModeTransition("a", "c"),
                ModeTransition("b", "a"),
            ],
        )
        assert {t.dst for t in omsm.outgoing("a")} == {"b", "c"}
        assert {t.src for t in omsm.incoming("a")} == {"b"}

    def test_iteration(self):
        omsm = OMSM("app", make_modes())
        assert [m.name for m in omsm] == ["a", "b", "c"]


class TestDerivedProperties:
    def test_all_task_types(self):
        omsm = OMSM("app", make_modes())
        assert omsm.all_task_types() == {"X", "Y", "Z", "W"}

    def test_shared_task_types(self):
        omsm = OMSM("app", make_modes())
        assert omsm.shared_task_types() == {"Y"}

    def test_shared_types_counts_modes_not_tasks(self):
        # Two tasks of type Q inside ONE mode do not make Q "shared".
        modes = [
            Mode("a", graph("ga", ["Q", "Q"]), 0.5, 0.1),
            Mode("b", graph("gb", ["R"]), 0.5, 0.1),
        ]
        omsm = OMSM("app", modes)
        assert omsm.shared_task_types() == set()

    def test_probability_vector(self):
        omsm = OMSM("app", make_modes())
        assert omsm.probability_vector() == {"a": 0.6, "b": 0.3, "c": 0.1}

    def test_uniform_probability_vector(self):
        omsm = OMSM("app", make_modes())
        vector = omsm.uniform_probability_vector()
        assert vector == {
            "a": pytest.approx(1 / 3),
            "b": pytest.approx(1 / 3),
            "c": pytest.approx(1 / 3),
        }
