"""Unit tests for tasks, communication edges and task graphs."""

import pytest

from repro.errors import SpecificationError
from repro.specification import CommEdge, Task, TaskGraph


def diamond() -> TaskGraph:
    return TaskGraph(
        "diamond",
        [
            Task("a", "X"),
            Task("b", "Y"),
            Task("c", "Y"),
            Task("d", "Z"),
        ],
        [
            CommEdge("a", "b", 10.0),
            CommEdge("a", "c", 20.0),
            CommEdge("b", "d", 30.0),
            CommEdge("c", "d", 40.0),
        ],
    )


class TestTask:
    def test_basic_construction(self):
        task = Task("fft0", "FFT", deadline=0.05)
        assert task.name == "fft0"
        assert task.task_type == "FFT"
        assert task.deadline == 0.05

    def test_deadline_defaults_to_none(self):
        assert Task("t", "T").deadline is None

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError):
            Task("", "T")

    def test_empty_type_rejected(self):
        with pytest.raises(SpecificationError):
            Task("t", "")

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(SpecificationError):
            Task("t", "T", deadline=0.0)
        with pytest.raises(SpecificationError):
            Task("t", "T", deadline=-1.0)

    def test_tasks_are_immutable(self):
        task = Task("t", "T")
        with pytest.raises(AttributeError):
            task.name = "other"


class TestCommEdge:
    def test_key(self):
        edge = CommEdge("a", "b", 128.0)
        assert edge.key == ("a", "b")
        assert edge.data_bits == 128.0

    def test_self_loop_rejected(self):
        with pytest.raises(SpecificationError):
            CommEdge("a", "a")

    def test_negative_payload_rejected(self):
        with pytest.raises(SpecificationError):
            CommEdge("a", "b", -1.0)

    def test_zero_payload_allowed(self):
        assert CommEdge("a", "b", 0.0).data_bits == 0.0


class TestTaskGraphConstruction:
    def test_tasks_and_edges_preserved(self):
        graph = diamond()
        assert len(graph) == 4
        assert len(graph.edges) == 4
        assert graph.task_names == ("a", "b", "c", "d")

    def test_duplicate_task_rejected(self):
        with pytest.raises(SpecificationError):
            TaskGraph("g", [Task("a", "X"), Task("a", "Y")])

    def test_dangling_edge_rejected(self):
        with pytest.raises(SpecificationError):
            TaskGraph("g", [Task("a", "X")], [CommEdge("a", "ghost")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(SpecificationError):
            TaskGraph(
                "g",
                [Task("a", "X"), Task("b", "Y")],
                [CommEdge("a", "b"), CommEdge("a", "b")],
            )

    def test_cycle_rejected(self):
        with pytest.raises(SpecificationError, match="cycle"):
            TaskGraph(
                "g",
                [Task("a", "X"), Task("b", "Y")],
                [CommEdge("a", "b"), CommEdge("b", "a")],
            )

    def test_self_cycle_through_three_tasks_rejected(self):
        with pytest.raises(SpecificationError, match="cycle"):
            TaskGraph(
                "g",
                [Task("a", "X"), Task("b", "Y"), Task("c", "Z")],
                [
                    CommEdge("a", "b"),
                    CommEdge("b", "c"),
                    CommEdge("c", "a"),
                ],
            )

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError):
            TaskGraph("", [Task("a", "X")])

    def test_empty_graph_allowed(self):
        graph = TaskGraph("empty", [])
        assert len(graph) == 0
        assert graph.topological_order() == ()


class TestTaskGraphAccessors:
    def test_task_lookup(self):
        graph = diamond()
        assert graph.task("a").task_type == "X"
        with pytest.raises(SpecificationError):
            graph.task("ghost")

    def test_edge_lookup(self):
        graph = diamond()
        assert graph.edge("a", "b").data_bits == 10.0
        assert graph.has_edge("a", "c")
        assert not graph.has_edge("b", "c")
        with pytest.raises(SpecificationError):
            graph.edge("b", "c")

    def test_successors_predecessors(self):
        graph = diamond()
        assert set(graph.successors("a")) == {"b", "c"}
        assert set(graph.predecessors("d")) == {"b", "c"}
        assert graph.predecessors("a") == ()
        assert graph.successors("d") == ()

    def test_in_out_edges(self):
        graph = diamond()
        assert {e.key for e in graph.in_edges("d")} == {
            ("b", "d"),
            ("c", "d"),
        }
        assert {e.key for e in graph.out_edges("a")} == {
            ("a", "b"),
            ("a", "c"),
        }

    def test_sources_and_sinks(self):
        graph = diamond()
        assert graph.sources() == ("a",)
        assert graph.sinks() == ("d",)

    def test_contains_and_iter(self):
        graph = diamond()
        assert "a" in graph
        assert "ghost" not in graph
        assert [t.name for t in graph] == ["a", "b", "c", "d"]

    def test_task_types(self):
        assert diamond().task_types() == {"X", "Y", "Z"}

    def test_tasks_of_type(self):
        graph = diamond()
        assert {t.name for t in graph.tasks_of_type("Y")} == {"b", "c"}
        assert graph.tasks_of_type("missing") == ()


class TestTaskGraphStructure:
    def test_topological_order_respects_edges(self):
        graph = diamond()
        order = graph.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for edge in graph.edges:
            assert position[edge.src] < position[edge.dst]

    def test_depth(self):
        assert diamond().depth() == 3
        chain = TaskGraph(
            "chain",
            [Task(f"t{i}", "T") for i in range(5)],
            [CommEdge(f"t{i}", f"t{i + 1}") for i in range(4)],
        )
        assert chain.depth() == 5

    def test_depth_no_edges(self):
        graph = TaskGraph("flat", [Task("a", "X"), Task("b", "Y")])
        assert graph.depth() == 1

    def test_ancestors_descendants(self):
        graph = diamond()
        assert graph.ancestors("d") == {"a", "b", "c"}
        assert graph.descendants("a") == {"b", "c", "d"}
        assert graph.ancestors("a") == set()
        assert graph.descendants("d") == set()

    def test_independent(self):
        graph = diamond()
        assert graph.independent("b", "c")
        assert graph.independent("c", "b")
        assert not graph.independent("a", "d")
        assert not graph.independent("a", "b")
        assert not graph.independent("b", "b")
