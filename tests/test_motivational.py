"""The paper's motivational examples, checked to the printed digit."""

import pytest

from repro.examples_support import (
    FIG2_ENERGY_WITH,
    FIG2_ENERGY_WITHOUT,
    fig2_mapping_with_probabilities,
    fig2_mapping_without_probabilities,
    fig2_problem,
    fig3_mapping_multiple_implementations,
    fig3_mapping_shared_core,
    fig3_problem,
    weighted_task_energy,
)
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.evaluator import evaluate_mapping


class TestFig2Energies:
    """Section 2.3, Example 1: the published 26.7158 / 15.7423 mW·s."""

    def test_without_probabilities_energy(self):
        problem = fig2_problem()
        mapping = fig2_mapping_without_probabilities(problem)
        energy = weighted_task_energy(problem, mapping)
        assert energy == pytest.approx(FIG2_ENERGY_WITHOUT, abs=1e-9)
        assert energy == pytest.approx(26.7158e-3, abs=1e-9)

    def test_with_probabilities_energy(self):
        problem = fig2_problem()
        mapping = fig2_mapping_with_probabilities(problem)
        energy = weighted_task_energy(problem, mapping)
        assert energy == pytest.approx(FIG2_ENERGY_WITH, abs=1e-9)
        assert energy == pytest.approx(15.7423e-3, abs=1e-9)

    def test_41_percent_reduction(self):
        problem = fig2_problem()
        without = weighted_task_energy(
            problem, fig2_mapping_without_probabilities(problem)
        )
        with_p = weighted_task_energy(
            problem, fig2_mapping_with_probabilities(problem)
        )
        reduction = 100.0 * (without - with_p) / without
        assert reduction == pytest.approx(41.0, abs=0.2)

    def test_mode_energies_as_printed(self):
        # 0.1 * (10 + 14 + 0.023) = 2.4023 mW·s for mode O1 (Fig. 2b).
        problem = fig2_problem()
        mapping = fig2_mapping_without_probabilities(problem)
        mode = problem.omsm.mode("O1")
        energy = sum(
            problem.technology.implementation(
                task.task_type, mapping.pe_of("O1", task.name)
            ).energy
            for task in mode.task_graph
        )
        assert 0.1 * energy == pytest.approx(2.4023e-3, abs=1e-9)


class TestFig2Pipeline:
    """The full library pipeline must reproduce the same numbers.

    With a 1-second period and no static power, Equation (1) power in
    watts equals Ψ-weighted energy in joules.
    """

    def test_pipeline_matches_paper(self):
        problem = fig2_problem(period=1.0)
        config = SynthesisConfig()
        for mapping, expected in (
            (fig2_mapping_without_probabilities(problem), 26.7158e-3),
            (fig2_mapping_with_probabilities(problem), 15.7423e-3),
        ):
            impl = evaluate_mapping(problem, mapping, config)
            assert impl is not None
            assert impl.metrics.is_feasible
            assert impl.metrics.average_power == pytest.approx(
                expected, abs=1e-9
            )

    def test_probability_aware_mapping_enables_shutdown(self):
        problem = fig2_problem()
        impl = evaluate_mapping(
            problem,
            fig2_mapping_with_probabilities(problem),
            SynthesisConfig(),
        )
        assert impl.shut_down_components("O1") == ("PE1", "CL0")

    def test_area_constraint_honoured(self):
        # Both mappings use at most 600 cells (two cores).
        problem = fig2_problem()
        for mapping in (
            fig2_mapping_without_probabilities(problem),
            fig2_mapping_with_probabilities(problem),
        ):
            impl = evaluate_mapping(problem, mapping, SynthesisConfig())
            assert impl.metrics.is_area_feasible
            assert impl.cores.area_used["PE1"] <= 600.0

    def test_ga_finds_the_probability_aware_optimum(self):
        # The synthesis itself, run on the Fig. 2 system, should find a
        # mapping at least as good as the paper's hand-derived one.
        from repro.synthesis import synthesize

        problem = fig2_problem(period=1.0)
        result = synthesize(
            problem,
            SynthesisConfig(
                seed=1,
                population_size=20,
                max_generations=40,
                convergence_generations=10,
            ),
        )
        assert result.average_power <= 15.7423e-3 + 1e-9


class TestFig3MultipleImplementations:
    """Section 2.3, Example 2: multiple implementations enable shut-down."""

    def test_shared_core_keeps_pe1_on(self):
        problem = fig3_problem()
        impl = evaluate_mapping(
            problem, fig3_mapping_shared_core(problem), SynthesisConfig()
        )
        assert impl.shut_down_components("O2") == ()

    def test_multiple_implementations_allow_shutdown(self):
        problem = fig3_problem()
        impl = evaluate_mapping(
            problem,
            fig3_mapping_multiple_implementations(problem),
            SynthesisConfig(),
        )
        assert impl.shut_down_components("O2") == ("PE1", "CL0")

    def test_shutdown_pays_off_beyond_breakeven(self):
        problem = fig3_problem(static_pe1=12e-3)
        shared = evaluate_mapping(
            problem, fig3_mapping_shared_core(problem), SynthesisConfig()
        )
        multiple = evaluate_mapping(
            problem,
            fig3_mapping_multiple_implementations(problem),
            SynthesisConfig(),
        )
        assert (
            multiple.metrics.average_power
            < shared.metrics.average_power
        )

    def test_sharing_wins_when_static_power_is_low(self):
        problem = fig3_problem(static_pe1=1e-3)
        shared = evaluate_mapping(
            problem, fig3_mapping_shared_core(problem), SynthesisConfig()
        )
        multiple = evaluate_mapping(
            problem,
            fig3_mapping_multiple_implementations(problem),
            SynthesisConfig(),
        )
        assert (
            shared.metrics.average_power
            < multiple.metrics.average_power
        )

    def test_shared_core_single_allocation(self):
        # Type A gets exactly one core even though two modes use it.
        problem = fig3_problem()
        from repro.mapping.cores import allocate_cores

        cores = allocate_cores(
            problem, fig3_mapping_shared_core(problem)
        )
        assert cores.available_cores("PE1", "O1", "A") == 1
        assert cores.available_cores("PE1", "O2", "A") == 1
        area_a = problem.technology.implementation("A", "PE1").area
        assert cores.area_used["PE1"] == pytest.approx(area_a)
