"""MetricsRegistry: recording, snapshot/delta/merge, JSON export."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    format_key,
    metric_key,
)


class TestRecording:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        assert reg.inc("evals") == 1.0
        assert reg.inc("evals", 4.0) == 5.0
        assert reg.counter_value("evals") == 5.0
        assert reg.counter_value("absent") == 0.0

    def test_labels_address_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("failures", stage="map")
        reg.inc("failures", stage="imap")
        reg.inc("failures", stage="map")
        assert reg.counter_value("failures", stage="map") == 2.0
        assert reg.counter_value("failures") == 0.0

    def test_label_order_is_irrelevant(self):
        assert metric_key("m", {"a": 1, "b": 2}) == metric_key(
            "m", {"b": 2, "a": 1}
        )
        reg = MetricsRegistry()
        reg.inc("m", a=1, b=2)
        assert reg.counter_value("m", b=2, a=1) == 1.0

    def test_gauges_are_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("workers", 4)
        reg.set_gauge("workers", 2)
        assert reg.gauge_value("workers") == 2.0

    def test_histogram_observations(self):
        reg = MetricsRegistry(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):
            reg.observe("seconds", value)
        data = reg.histogram_data("seconds")
        assert data.count == 3
        assert data.total == pytest.approx(105.5)
        assert data.minimum == 0.5
        assert data.maximum == 100.0
        assert data.mean == pytest.approx(105.5 / 3)
        assert data.buckets == [1, 1, 1]  # one per bucket + overflow

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("b", 1)
        reg.observe("c", 1.0)
        reg.reset()
        assert reg.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestDeltaMerge:
    """The PhaseProfiler pattern: worker deltas fold into the parent."""

    def test_counter_delta_only_reports_new_work(self):
        reg = MetricsRegistry()
        reg.inc("evals", 3)
        base = reg.snapshot()
        reg.inc("evals", 2)
        reg.inc("hits")
        delta = reg.delta_since(base)
        assert delta["counters"] == {
            metric_key("evals", {}): 2.0,
            metric_key("hits", {}): 1.0,
        }

    def test_idle_delta_is_empty(self):
        reg = MetricsRegistry()
        reg.inc("evals")
        reg.set_gauge("workers", 2)
        reg.observe("seconds", 1.0)
        delta = reg.delta_since(reg.snapshot())
        assert delta == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_gauge_delta_carries_changed_values(self):
        reg = MetricsRegistry()
        reg.set_gauge("workers", 4)
        base = reg.snapshot()
        reg.set_gauge("workers", 4)  # unchanged -> absent
        reg.set_gauge("depth", 7)
        delta = reg.delta_since(base)
        assert delta["gauges"] == {metric_key("depth", {}): 7.0}

    def test_histogram_delta_subtracts_counts(self):
        reg = MetricsRegistry(buckets=(1.0,))
        reg.observe("seconds", 0.5)
        base = reg.snapshot()
        reg.observe("seconds", 2.0)
        delta = reg.delta_since(base)
        (data,) = delta["histograms"].values()
        assert data.count == 1
        assert data.total == pytest.approx(2.0)
        assert data.buckets == [0, 1]

    def test_worker_roundtrip_merges_into_parent(self):
        # Simulates the pool protocol: the forked worker starts from a
        # (copied) registry, does work, ships delta_since(base); the
        # parent merges and ends with the union of both accounts.
        parent = MetricsRegistry(buckets=(1.0, 10.0))
        parent.inc("evals", 10)
        parent.observe("seconds", 0.5)
        worker = MetricsRegistry(buckets=(1.0, 10.0))
        worker.merge(parent.snapshot())  # COW copy at fork time
        base = worker.snapshot()
        worker.inc("evals", 5)
        worker.inc("evals", 2, outcome="feasible")
        worker.observe("seconds", 5.0)
        parent.merge(worker.delta_since(base))
        assert parent.counter_value("evals") == 15.0
        assert parent.counter_value("evals", outcome="feasible") == 2.0
        data = parent.histogram_data("seconds")
        assert data.count == 2
        assert data.total == pytest.approx(5.5)
        assert data.minimum == 0.5 and data.maximum == 5.0
        assert data.buckets == [1, 1, 0]

    def test_merge_of_full_snapshot_equals_copy(self):
        source = MetricsRegistry()
        source.inc("a", 2)
        source.set_gauge("g", 3)
        source.observe("h", 0.01)
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.to_dict() == source.to_dict()


class TestExport:
    def test_format_key(self):
        assert format_key(metric_key("evals", {})) == "evals"
        assert (
            format_key(metric_key("evals", {"b": "x", "a": 1}))
            == "evals{a=1,b=x}"
        )

    def test_to_dict_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.inc("evals", 3, outcome="feasible")
        reg.set_gauge("workers", 2)
        reg.observe("seconds", 0.3)
        payload = json.loads(json.dumps(reg.to_dict()))
        assert payload["counters"] == {"evals{outcome=feasible}": 3.0}
        assert payload["gauges"] == {"workers": 2.0}
        histogram = payload["histograms"]["seconds"]
        assert histogram["count"] == 1
        assert histogram["sum"] == pytest.approx(0.3)
        assert len(histogram["buckets"]) == len(DEFAULT_BUCKETS) + 1

    def test_empty_histogram_min_max_export_as_none(self):
        reg = MetricsRegistry()
        data = reg.histogram_data("absent").to_dict()
        assert data["min"] is None and data["max"] is None
        assert data["count"] == 0 and data["mean"] == 0.0
