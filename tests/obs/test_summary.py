"""run_summary.json: building, atomic writing, loading."""

import json

import pytest

from repro.errors import CampaignError
from repro.obs.summary import (
    build_run_summary,
    load_run_summary,
    run_summary_path,
    write_run_summary,
)


def job_record(power=0.5, attempts=1, perf=None):
    return {
        "power": power,
        "cpu_time": 2.0,
        "feasible": True,
        "generations": 10,
        "evaluations": 100,
        "attempts": attempts,
        "history": [1.0, 0.5],  # not copied into summary rows
        "perf": perf or {},
    }


def make_perf(mobility=1.0, o1=0.25, o2=0.75):
    return {
        "evaluations": 50,
        "cache_hits": 10,
        "wall_time": 2.0,
        "pool_busy_seconds": 1.0,
        "phase_seconds": {"mobility": mobility},
        "phase_calls": {"mobility": 50},
        "mode_phase_seconds": {"mobility": {"O1": o1, "O2": o2}},
    }


class TestBuild:
    def test_totals_and_rows(self):
        summary = build_run_summary(
            campaign="t1",
            total_jobs=4,
            job_results={"a": job_record(), "b": job_record(power=0.4)},
            failures={"c": "no mapping"},
            events=[
                {"ts": 100.0, "event": "campaign_started"},
                {"ts": 130.0, "event": "campaign_finished"},
                {"event": "no-ts"},
            ],
            clock=lambda: 1000.0,
        )
        assert summary["version"] == 1
        assert summary["campaign"] == "t1"
        assert summary["generated_at"] == 1000.0
        assert summary["interrupted"] is False
        assert summary["jobs"] == {
            "total": 4,
            "completed": 2,
            "failed": 1,
            "pending": 1,
        }
        assert summary["wall_seconds"] == pytest.approx(30.0)
        assert summary["failures"] == {"c": "no mapping"}
        assert summary["job_results"]["b"]["power"] == 0.4
        # Rows carry the scalar outcome, not the bulky payloads.
        assert "history" not in summary["job_results"]["a"]

    def test_retries_counted_from_events(self):
        summary = build_run_summary(
            campaign="t",
            total_jobs=1,
            job_results={},
            failures={},
            events=[
                {"ts": 1.0, "event": "job_retried"},
                {"ts": 2.0, "event": "job_retried"},
            ],
        )
        assert summary["retries"] == 2
        assert summary["wall_seconds"] == pytest.approx(1.0)

    def test_perf_aggregates_across_jobs(self):
        summary = build_run_summary(
            campaign="t",
            total_jobs=2,
            job_results={
                "a": job_record(perf=make_perf(mobility=1.0)),
                "b": job_record(perf=make_perf(mobility=0.5,
                                               o1=0.1, o2=0.4)),
            },
            failures={},
            events=[],
        )
        perf = summary["perf"]
        assert perf["evaluations"] == 100
        assert perf["cache_hits"] == 20
        assert perf["phase_seconds"]["mobility"] == pytest.approx(1.5)
        assert perf["phase_calls"]["mobility"] == 100
        assert perf["mode_phase_seconds"]["mobility"] == {
            "O1": pytest.approx(0.35),
            "O2": pytest.approx(1.15),
        }
        # Per-mode buckets still sum to the aggregate after folding.
        assert sum(
            perf["mode_phase_seconds"]["mobility"].values()
        ) == pytest.approx(perf["phase_seconds"]["mobility"])

    def test_wall_seconds_none_without_two_timestamps(self):
        summary = build_run_summary(
            campaign="t", total_jobs=0, job_results={}, failures={},
            events=[{"ts": 5.0, "event": "campaign_started"}],
        )
        assert summary["wall_seconds"] is None


class TestWriteLoad:
    def test_roundtrip_through_json_load(self, tmp_path):
        summary = build_run_summary(
            campaign="t", total_jobs=1,
            job_results={"a": job_record(perf=make_perf())},
            failures={}, events=[], metrics={"counters": {"x": 1.0}},
        )
        path = write_run_summary(tmp_path, summary)
        assert path == run_summary_path(tmp_path)
        with open(path) as handle:
            raw = json.load(handle)
        assert raw == json.loads(json.dumps(summary))
        assert load_run_summary(tmp_path) == raw
        assert raw["metrics"] == {"counters": {"x": 1.0}}

    def test_write_replaces_atomically(self, tmp_path):
        write_run_summary(tmp_path, {"version": 1, "campaign": "old"})
        write_run_summary(tmp_path, {"version": 1, "campaign": "new"})
        assert load_run_summary(tmp_path)["campaign"] == "new"
        assert not run_summary_path(tmp_path).with_suffix(
            ".json.tmp"
        ).exists()

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no run summary"):
            load_run_summary(tmp_path)

    def test_load_corrupt_raises(self, tmp_path):
        run_summary_path(tmp_path).write_text("{not json")
        with pytest.raises(CampaignError, match="corrupt run summary"):
            load_run_summary(tmp_path)
