"""Status aggregation and live tailing over synthetic event streams."""

import json
import pathlib

import pytest

from repro.errors import CampaignError
from repro.obs.status import (
    campaign_status,
    format_event,
    format_pool_stats,
    format_status,
    tail_events,
)

FIXTURES = pathlib.Path(__file__).resolve().parent.parent / "fixtures"


def write_events(path, events):
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")


def event(kind, seq, ts, **fields):
    record = {"seq": seq, "ts": ts, "event": kind}
    record.update(fields)
    return record


def mid_campaign_events():
    """Job a finished (10 s), job b mid-flight, job c failed."""
    return [
        event(
            "campaign_started", 0, 100.0, campaign="t1",
            total_jobs=4, pending_jobs=4,
        ),
        event("job_started", 1, 100.0, job_id="a", attempt=1),
        event("generation", 2, 105.0, job_id="a", generation=5,
              best_fitness=1.5, evaluations=50),
        event("job_finished", 3, 110.0, job_id="a", power=0.5,
              cpu_time=9.9, generations=10, evaluations=100),
        event("job_started", 4, 110.0, job_id="c", attempt=1),
        event("job_failed", 5, 111.0, job_id="c", error="no mapping"),
        event("job_started", 6, 111.0, job_id="b", attempt=1),
        event("generation", 7, 115.0, job_id="b", generation=3,
              best_fitness=2.0, evaluations=30),
    ]


class TestTail:
    def test_missing_stream_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no event stream"):
            list(tail_events(tmp_path / "events.jsonl"))

    def test_reads_all_complete_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events(path, mid_campaign_events())
        events = list(tail_events(path))
        assert len(events) == 8
        assert events[0]["event"] == "campaign_started"

    def test_torn_tail_dropped_when_not_following(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events(path, mid_campaign_events()[:2])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "event": "gen')
        assert len(list(tail_events(path, follow=False))) == 2

    def test_follow_buffers_torn_line_until_completed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = event("campaign_started", 0, 1.0, campaign="t",
                      total_jobs=1, pending_jobs=1)
        done = event("campaign_finished", 1, 2.0, campaign="t",
                     completed_jobs=1, failed_jobs=0)
        line = json.dumps(done) + "\n"
        write_events(path, [first])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line[:10])  # torn write in progress
            handle.flush()

            def complete_the_line(_interval):
                handle.write(line[10:])
                handle.flush()

            events = list(
                tail_events(path, follow=True, sleep=complete_the_line)
            )
        assert [e["event"] for e in events] == [
            "campaign_started",
            "campaign_finished",
        ]

    def test_follow_stops_after_terminal_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events(
            path,
            [
                event("campaign_started", 0, 1.0, campaign="t",
                      total_jobs=0, pending_jobs=0),
                event("campaign_interrupted", 1, 2.0, campaign="t",
                      completed_jobs=0),
            ],
        )
        # sleep() raising proves the iterator never reached polling.
        events = list(
            tail_events(path, follow=True, sleep=pytest.fail)
        )
        assert events[-1]["event"] == "campaign_interrupted"

    def test_corrupt_complete_line_is_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(json.dumps(event("job_started", 1, 1.0)) + "\n")
        assert len(list(tail_events(path))) == 1


class TestCampaignStatus:
    def test_mid_campaign(self, tmp_path):
        write_events(tmp_path / "events.jsonl", mid_campaign_events())
        status = campaign_status(tmp_path)
        assert status.campaign == "t1"
        assert status.total_jobs == 4
        assert status.completed == 1
        assert status.failed == 1
        assert status.done == 2 and status.remaining == 2
        assert status.progress == pytest.approx(0.5)
        assert not status.finished and not status.interrupted
        assert status.running == ["b"]
        assert status.last_generation == {"b": 3}
        assert status.failures == {"c": "no mapping"}
        assert status.job_wall_seconds == {"a": pytest.approx(10.0)}
        assert status.elapsed_seconds == pytest.approx(15.0)

    def test_eta_extrapolates_from_finished_jobs(self, tmp_path):
        write_events(tmp_path / "events.jsonl", mid_campaign_events())
        status = campaign_status(tmp_path)
        # Job a took 10 s.  Job b has been running 4 s (111 -> 115), so
        # 6 s remain for it, plus 10 s for the one not-started job.
        assert status.mean_job_seconds == pytest.approx(10.0)
        assert status.eta_seconds == pytest.approx(16.0)

    def test_eta_unknown_without_timing_sample(self, tmp_path):
        write_events(
            tmp_path / "events.jsonl",
            [
                event("campaign_started", 0, 1.0, campaign="t",
                      total_jobs=2, pending_jobs=2),
                event("job_started", 1, 1.0, job_id="a", attempt=1),
            ],
        )
        status = campaign_status(tmp_path)
        assert status.eta_seconds is None
        assert status.mean_job_seconds is None

    def test_finished_campaign(self, tmp_path):
        events = mid_campaign_events() + [
            event("job_finished", 8, 120.0, job_id="b", power=0.4,
                  cpu_time=8.0, generations=9, evaluations=90),
            event("job_finished", 9, 130.0, job_id="d", power=0.3,
                  cpu_time=9.0, generations=9, evaluations=90),
            event("campaign_finished", 10, 130.0, campaign="t1",
                  completed_jobs=3, failed_jobs=1),
        ]
        write_events(tmp_path / "events.jsonl", events)
        status = campaign_status(tmp_path)
        assert status.finished
        assert status.completed == 3
        assert status.running == []
        assert status.eta_seconds is None

    def test_retries_are_counted(self, tmp_path):
        write_events(
            tmp_path / "events.jsonl",
            [
                event("campaign_started", 0, 1.0, campaign="t",
                      total_jobs=1, pending_jobs=1),
                event("job_started", 1, 1.0, job_id="a", attempt=1),
                event("job_retried", 2, 2.0, job_id="a", attempt=1,
                      backoff_seconds=0.5, error="pool died"),
                event("job_started", 3, 3.0, job_id="a", attempt=2),
            ],
        )
        status = campaign_status(tmp_path)
        assert status.retries == 1
        assert status.running == ["a"]  # not double-listed

    def test_resume_segment_resets_progress_counters(self, tmp_path):
        # Segment 1: job a finishes, then the process is interrupted.
        # Segment 2 re-reports a as skipped; without the segment reset
        # a would count twice (done > total).
        events = [
            event("campaign_started", 0, 1.0, campaign="t",
                  total_jobs=2, pending_jobs=2),
            event("job_started", 1, 1.0, job_id="a", attempt=1),
            event("job_finished", 2, 11.0, job_id="a", power=0.5,
                  cpu_time=10.0, generations=5, evaluations=50),
            event("campaign_interrupted", 3, 11.0, campaign="t",
                  completed_jobs=1),
            event("campaign_started", 4, 20.0, campaign="t",
                  total_jobs=2, pending_jobs=1),
            event("job_skipped", 5, 20.0, job_id="a",
                  reason="already complete"),
            event("job_started", 6, 20.0, job_id="b", attempt=1),
        ]
        write_events(tmp_path / "events.jsonl", events)
        status = campaign_status(tmp_path)
        assert not status.interrupted
        assert status.completed == 0 and status.skipped == 1
        assert status.done == 1 and status.remaining == 1
        # The wall-time sample from segment 1 still feeds the ETA.
        assert status.mean_job_seconds == pytest.approx(10.0)
        assert status.eta_seconds is not None


class TestRendering:
    def test_format_event_covers_every_kind(self):
        for raw in mid_campaign_events():
            line = format_event(raw)
            assert isinstance(line, str) and line

    def test_format_event_unknown_kind_falls_back_to_json(self):
        line = format_event({"seq": 0, "ts": 1.0, "event": "mystery",
                             "detail": 7})
        assert "mystery" in line and "7" in line

    def test_format_status_mid_campaign(self, tmp_path):
        write_events(tmp_path / "events.jsonl", mid_campaign_events())
        text = format_status(campaign_status(tmp_path))
        assert "campaign 't1': running" in text
        assert "2/4 jobs (50%)" in text
        assert "1 completed" in text and "1 failed" in text
        assert "eta:" in text
        assert "running: b (generation 3)" in text
        assert "failed: c: no mapping" in text

    def test_format_status_fresh_campaign_reports_eta_na(self, tmp_path):
        # A campaign with zero completed jobs has no timing sample:
        # the ETA line must say "n/a" explicitly, not a guess.
        write_events(
            tmp_path / "events.jsonl",
            [
                event("campaign_started", 0, 1.0, campaign="t",
                      total_jobs=2, pending_jobs=2),
                event("job_started", 1, 1.0, job_id="a", attempt=1),
            ],
        )
        text = format_status(campaign_status(tmp_path))
        assert "eta: n/a (no completed jobs yet)" in text
        assert "unknown" not in text

    def test_format_status_finished_has_no_eta(self, tmp_path):
        write_events(
            tmp_path / "events.jsonl",
            [
                event("campaign_started", 0, 1.0, campaign="t",
                      total_jobs=0, pending_jobs=0),
                event("campaign_finished", 1, 2.0, campaign="t",
                      completed_jobs=0, failed_jobs=0),
            ],
        )
        text = format_status(campaign_status(tmp_path))
        assert "finished" in text
        assert "eta" not in text


class TestPoolStats:
    def test_modern_summary_renders_figures(self):
        summary = {
            "perf": {
                "pool_workers": 4,
                "pool_utilisation": 0.91,
                "pool_busy_seconds": 36.4,
                "parallel_evaluations": 4000,
                "batches": 58,
                "pool_steals": 120,
                "pool_fallbacks": 0,
                "speculation_issued": 900,
                "speculation_hits": 840,
                "speculation_discards": 60,
                "inprocess_evaluations": 12,
                "inprocess_eval_seconds": 0.4,
            }
        }
        text = format_pool_stats(summary)
        assert "workers 4" in text
        assert "utilisation 91%" in text
        assert "120 steals" in text
        assert "900 issued, 840 hits, 60 discarded" in text
        assert "12 evaluations" in text
        assert "n/a" not in text

    def test_pr3_era_summary_renders_na_not_crash(self):
        # Regression: formatting pool_utilisation used to assume the
        # field exists; a summary written before dispatch windows (or
        # by a run that fell back to serial) must render n/a.
        summary = json.loads(
            (FIXTURES / "run_summary_pr3.json").read_text()
        )
        text = format_pool_stats(summary)
        assert "utilisation n/a" in text
        assert "workers n/a" in text
        # Fields the old schema *did* carry still render.
        assert "busy 0.0s" in text
        assert "0 parallel evaluations in 0 batches" in text

    def test_empty_summary_is_all_na(self):
        text = format_pool_stats({})
        assert "utilisation n/a" in text
        assert "workers n/a" in text
        assert "steals" in text
