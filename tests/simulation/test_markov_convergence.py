"""Statistical soundness of the semi-Markov mode process.

Long seeded traces must spend a fraction of time in each mode that
converges to the OMSM's Ψ — exercised for *both* transition-matrix
constructions: Metropolis–Hastings (symmetric transition graphs, the
two-mode fixture) and the LP fallback (general digraphs: the smart
phone OMSM has one-way transitions).
"""

import random

import pytest

from repro.benchgen.smartphone import smartphone_problem
from repro.simulation.markov import ModeProcess
from repro.simulation.trace import generate_trace, time_fractions

from tests.conftest import make_two_mode_problem


def empirical_fractions(process, horizon, seed):
    visits = generate_trace(process, horizon, random.Random(seed))
    return time_fractions(visits)


class TestMetropolisHastingsConstruction:
    """Two-mode fixture: symmetric graph → MH matrix."""

    @pytest.fixture(scope="class")
    def process(self):
        return ModeProcess(make_two_mode_problem().omsm)

    def test_uses_the_symmetric_construction(self, process):
        assert process._symmetric_graph_suffices()

    def test_stationary_time_fractions_match_psi(self, process):
        psi = process.omsm.probability_vector()
        stationary = process.stationary_time_fractions()
        for mode, value in psi.items():
            assert stationary[mode] == pytest.approx(value, abs=1e-9)

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_long_trace_time_fractions_converge(self, process, seed):
        psi = process.omsm.probability_vector()
        fractions = empirical_fractions(process, 20_000.0, seed)
        for mode, value in psi.items():
            assert fractions.get(mode, 0.0) == pytest.approx(
                value, abs=0.05
            )

    def test_longer_traces_converge_closer(self, process):
        psi = process.omsm.probability_vector()

        def error(horizon):
            fractions = empirical_fractions(process, horizon, seed=3)
            return sum(
                abs(fractions.get(mode, 0.0) - value)
                for mode, value in psi.items()
            )

        assert error(50_000.0) < error(500.0)


class TestLinearProgramConstruction:
    """Smart phone OMSM: one-way transitions force the LP fallback."""

    @pytest.fixture(scope="class")
    def process(self):
        return ModeProcess(smartphone_problem().omsm)

    def test_requires_the_lp_construction(self, process):
        assert not process._symmetric_graph_suffices()

    def test_rows_are_stochastic(self, process):
        for row in process.transition_matrix.values():
            assert sum(row.values()) == pytest.approx(1.0)
            assert all(p >= -1e-12 for p in row.values())

    def test_stationary_time_fractions_match_psi(self, process):
        psi = process.omsm.probability_vector()
        stationary = process.stationary_time_fractions()
        for mode, value in psi.items():
            assert stationary[mode] == pytest.approx(value, abs=1e-6)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", (0, 1))
    def test_long_trace_time_fractions_converge(self, process, seed):
        psi = process.omsm.probability_vector()
        fractions = empirical_fractions(process, 30_000.0, seed)
        for mode, value in psi.items():
            assert fractions.get(mode, 0.0) == pytest.approx(
                value, abs=0.05
            )
