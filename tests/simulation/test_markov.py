"""Tests for the semi-Markov mode process."""

import random

import pytest

from repro.errors import SpecificationError
from repro.simulation.markov import ModeProcess

from tests.conftest import make_two_mode_problem


@pytest.fixture
def omsm():
    return make_two_mode_problem().omsm


class TestConstruction:
    def test_default_dwell_times(self, omsm):
        process = ModeProcess(omsm)
        for mode in omsm.modes:
            assert process.mean_dwell[mode.name] == pytest.approx(
                50.0 * mode.period
            )

    def test_missing_dwell_rejected(self, omsm):
        with pytest.raises(SpecificationError, match="missing"):
            ModeProcess(omsm, mean_dwell={"O1": 1.0})

    def test_non_positive_dwell_rejected(self, omsm):
        with pytest.raises(SpecificationError):
            ModeProcess(omsm, mean_dwell={"O1": 1.0, "O2": 0.0})

    def test_unreachable_probable_mode_rejected(self):
        from repro.specification import (
            Mode,
            ModeTransition,
            OMSM,
            Task,
            TaskGraph,
        )

        graph = TaskGraph("g", [Task("a", "X")])
        graph2 = TaskGraph("h", [Task("b", "Y")])
        # Only a one-way transition: O2 can never be left again, so no
        # moving stationary process over the OMSM's edges exists.
        omsm = OMSM(
            "oneway",
            [
                Mode("O1", graph, 0.5, 1.0),
                Mode("O2", graph2, 0.5, 1.0),
            ],
            [ModeTransition("O1", "O2")],
        )
        with pytest.raises(SpecificationError, match="connected"):
            ModeProcess(omsm)


class TestStationarity:
    def test_rows_are_distributions(self, omsm):
        process = ModeProcess(omsm)
        for row in process.transition_matrix.values():
            assert sum(row.values()) == pytest.approx(1.0)
            assert all(p >= -1e-12 for p in row.values())

    def test_time_fractions_match_psi(self, omsm):
        process = ModeProcess(omsm)
        fractions = process.stationary_time_fractions()
        for mode in omsm.modes:
            assert fractions[mode.name] == pytest.approx(
                mode.probability, abs=1e-6
            )

    def test_time_fractions_match_psi_with_uneven_dwells(self, omsm):
        process = ModeProcess(
            omsm, mean_dwell={"O1": 0.3, "O2": 7.0}
        )
        fractions = process.stationary_time_fractions()
        for mode in omsm.modes:
            assert fractions[mode.name] == pytest.approx(
                mode.probability, abs=1e-6
            )

    def test_smartphone_process(self):
        from repro.benchgen.smartphone import smartphone_problem

        omsm = smartphone_problem().omsm
        process = ModeProcess(omsm)
        fractions = process.stationary_time_fractions()
        for mode in omsm.modes:
            assert fractions[mode.name] == pytest.approx(
                mode.probability, abs=1e-4
            )


class TestSampling:
    def test_next_mode_respects_graph(self, omsm):
        process = ModeProcess(omsm)
        rng = random.Random(0)
        for _ in range(50):
            successor = process.next_mode("O1", rng)
            assert successor in ("O1", "O2")

    def test_sample_dwell_positive(self, omsm):
        process = ModeProcess(omsm)
        rng = random.Random(0)
        for mode in omsm.modes:
            for _ in range(20):
                assert process.sample_dwell(mode.name, rng) > 0

    def test_empirical_dwell_mean(self, omsm):
        process = ModeProcess(omsm, mean_dwell={"O1": 2.0, "O2": 5.0})
        rng = random.Random(1)
        samples = [
            process.sample_dwell("O1", rng) for _ in range(4000)
        ]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.1)
