"""Tests for the trace executor and Equation-(1) validation."""


import pytest

from repro.architecture import PEKind
from repro.errors import SpecificationError
from repro.mapping.encoding import MappingString
from repro.simulation.executor import simulate
from repro.simulation.trace import ModeVisit
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.evaluator import evaluate_mapping

from tests.conftest import make_two_mode_problem


def implementation(problem=None, genes=None):
    problem = problem or make_two_mode_problem()
    genome = MappingString(
        problem, genes or ["PE0"] * problem.genome_length()
    )
    impl = evaluate_mapping(problem, genome, SynthesisConfig())
    assert impl is not None
    return impl


class TestExplicitTraces:
    def test_single_mode_visit(self):
        impl = implementation()
        problem = impl.problem
        period = problem.omsm.mode("O1").period
        trace = [ModeVisit("O1", 0.0, 10 * period)]
        report = simulate(impl, trace=trace)
        assert report.iterations["O1"] == 10
        assert report.iterations["O2"] == 0
        assert report.transitions == 0
        expected_static = (
            impl.metrics.static_power["O1"] * 10 * period
        )
        assert report.static_energy == pytest.approx(expected_static)
        expected_dynamic = (
            impl.schedules["O1"].total_dynamic_energy() * 10
        )
        assert report.dynamic_energy == pytest.approx(expected_dynamic)

    def test_partial_iteration_counts_as_started(self):
        impl = implementation()
        period = impl.problem.omsm.mode("O1").period
        trace = [ModeVisit("O1", 0.0, 2.5 * period)]
        report = simulate(impl, trace=trace)
        assert report.iterations["O1"] == 3

    def test_mode_change_counted(self):
        impl = implementation()
        period = impl.problem.omsm.mode("O1").period
        trace = [
            ModeVisit("O1", 0.0, 5 * period),
            ModeVisit("O2", 5 * period, 10 * period),
        ]
        report = simulate(impl, trace=trace)
        assert report.transitions == 1

    def test_unknown_mode_rejected(self):
        impl = implementation()
        with pytest.raises(SpecificationError, match="unknown mode"):
            simulate(impl, trace=[ModeVisit("ghost", 0.0, 1.0)])

    def test_empty_trace_rejected(self):
        impl = implementation()
        with pytest.raises(SpecificationError):
            simulate(impl, trace=[])


class TestEquationOneConvergence:
    def test_simulated_power_matches_analytical(self):
        impl = implementation()
        report = simulate(impl, horizon=2000.0, seed=5)
        # Long horizon: the simulated average power approaches the
        # Equation (1) estimate (within the stochastic mode mix).
        assert report.average_power == pytest.approx(
            report.analytical_power, rel=0.1
        )

    def test_longer_horizon_reduces_error(self):
        impl = implementation()
        short = simulate(impl, horizon=50.0, seed=3)
        long = simulate(impl, horizon=5000.0, seed=3)
        assert abs(long.relative_error) <= abs(short.relative_error) + 0.02

    def test_mixed_mapping_also_converges(self):
        problem = make_two_mode_problem()
        impl = implementation(
            problem,
            ["PE0", "PE1", "PE0", "PE1", "PE0", "PE1", "PE0"],
        )
        report = simulate(impl, horizon=2000.0, seed=9)
        assert report.average_power == pytest.approx(
            report.analytical_power, rel=0.1
        )

    def test_mode_fractions_near_psi(self):
        impl = implementation()
        report = simulate(impl, horizon=3000.0, seed=2)
        psi = impl.problem.omsm.probability_vector()
        for mode, target in psi.items():
            assert report.mode_fraction(mode) == pytest.approx(
                target, abs=0.1
            )


class TestReconfigurationAccounting:
    def make_fpga_impl(self):
        from tests.conftest import make_two_mode_problem

        problem = make_two_mode_problem(
            hw_kind=PEKind.FPGA,
            asic_area=800.0,
            reconfig_time_per_cell=1e-5,
            transition_limit=1.0,
        )
        genes = []
        for mode in problem.omsm.modes:
            for task, candidates in problem.gene_space(mode.name):
                genes.append(
                    "PE1" if "PE1" in candidates else candidates[0]
                )
        genome = MappingString(problem, genes)
        impl = evaluate_mapping(problem, genome, SynthesisConfig())
        assert impl is not None
        return impl

    def test_reconfiguration_time_charged(self):
        impl = self.make_fpga_impl()
        period = impl.problem.omsm.mode("O1").period
        trace = [
            ModeVisit("O1", 0.0, 50 * period),
            ModeVisit("O2", 50 * period, 100 * period),
        ]
        report = simulate(impl, trace=trace)
        assert report.reconfiguration_time > 0

    def test_reconfiguration_energy_optional(self):
        impl = self.make_fpga_impl()
        period = impl.problem.omsm.mode("O1").period
        trace = [
            ModeVisit("O1", 0.0, 50 * period),
            ModeVisit("O2", 50 * period, 100 * period),
        ]
        without = simulate(impl, trace=trace)
        with_energy = simulate(
            impl, trace=trace, reconfig_energy_per_cell=1e-6
        )
        assert without.reconfiguration_energy == 0.0
        assert with_energy.reconfiguration_energy > 0
        assert (
            with_energy.total_energy
            > without.total_energy
        )

    def test_summary_text(self):
        impl = implementation()
        report = simulate(impl, horizon=100.0, seed=1)
        text = report.summary()
        assert "simulated power" in text
        assert "Equation (1)" in text
