"""Tests for mode-trace generation."""

import random

import pytest

from repro.errors import SpecificationError
from repro.simulation.markov import ModeProcess
from repro.simulation.trace import (
    generate_trace,
    time_fractions,
    transition_count,
)

from tests.conftest import make_two_mode_problem


@pytest.fixture
def process():
    return ModeProcess(make_two_mode_problem().omsm)


class TestGeneration:
    def test_trace_covers_horizon(self, process):
        trace = generate_trace(process, 10.0, random.Random(0))
        assert trace[0].start == 0.0
        assert trace[-1].end == pytest.approx(10.0)
        for left, right in zip(trace, trace[1:]):
            assert right.start == pytest.approx(left.end)

    def test_visits_alternate_modes(self, process):
        trace = generate_trace(process, 50.0, random.Random(1))
        for left, right in zip(trace, trace[1:]):
            assert left.mode != right.mode

    def test_durations_positive(self, process):
        trace = generate_trace(process, 20.0, random.Random(2))
        for visit in trace:
            assert visit.duration > 0

    def test_initial_mode_honoured(self, process):
        trace = generate_trace(
            process, 5.0, random.Random(3), initial_mode="O1"
        )
        assert trace[0].mode == "O1"

    def test_unknown_initial_mode_rejected(self, process):
        with pytest.raises(SpecificationError):
            generate_trace(
                process, 5.0, random.Random(3), initial_mode="ghost"
            )

    def test_non_positive_horizon_rejected(self, process):
        with pytest.raises(SpecificationError):
            generate_trace(process, 0.0, random.Random(0))

    def test_deterministic_per_seed(self, process):
        a = generate_trace(process, 30.0, random.Random(7))
        b = generate_trace(process, 30.0, random.Random(7))
        assert [(v.mode, v.start, v.end) for v in a] == [
            (v.mode, v.start, v.end) for v in b
        ]


class TestStatistics:
    def test_long_run_fractions_approach_psi(self, process):
        trace = generate_trace(process, 3000.0, random.Random(11))
        fractions = time_fractions(trace)
        psi = process.omsm.probability_vector()
        for mode, target in psi.items():
            assert fractions.get(mode, 0.0) == pytest.approx(
                target, abs=0.08
            )

    def test_transition_count(self, process):
        trace = generate_trace(process, 100.0, random.Random(4))
        assert transition_count(trace) == len(trace) - 1
