"""Unit tests for hardware core allocation."""

import pytest

from repro.architecture import PEKind
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString

from tests.conftest import make_parallel_hw_problem, make_two_mode_problem


def all_hw_genome(problem):
    """Map every task that supports PE1/HW onto it."""
    mapping = {}
    for mode in problem.omsm.modes:
        mapping[mode.name] = {}
        for task in mode.task_graph:
            candidates = problem.technology.candidate_pes(task.task_type)
            hardware = [
                c
                for c in candidates
                if problem.architecture.pe(c).is_hardware
            ]
            mapping[mode.name][task.name] = (
                hardware[0] if hardware else candidates[0]
            )
    return MappingString.from_mapping(problem, mapping)


class TestBaseAllocation:
    def test_one_core_per_mapped_type(self):
        problem = make_two_mode_problem(asic_area=10_000.0)
        genome = all_hw_genome(problem)
        cores = allocate_cores(problem, genome)
        # Mode O1 has types A (twice), B, C on PE1.
        assert cores.available_cores("PE1", "O1", "B") == 1
        assert cores.available_cores("PE1", "O1", "C") == 1
        assert cores.available_cores("PE1", "O1", "A") >= 1

    def test_unmapped_type_gets_no_core(self):
        problem = make_two_mode_problem()
        genome = MappingString(
            problem, ["PE0"] * problem.genome_length()
        )
        cores = allocate_cores(problem, genome)
        assert cores.available_cores("PE1", "O1", "A") == 0
        assert cores.area_used["PE1"] == 0.0
        assert cores.is_area_feasible()

    def test_software_pe_never_in_counts(self):
        problem = make_two_mode_problem()
        genome = MappingString(
            problem, ["PE0"] * problem.genome_length()
        )
        cores = allocate_cores(problem, genome)
        assert "PE0" not in cores.counts


class TestParallelDuplication:
    def test_extra_cores_for_parallel_urgent_tasks(self):
        # Four independent type-P tasks; the period is tight enough
        # that mobility < exec time, so extra cores are provisioned.
        problem = make_parallel_hw_problem(period=0.012)
        genome = MappingString.from_mapping(
            problem,
            {
                "M": {
                    "src": "CPU",
                    "p0": "HW",
                    "p1": "HW",
                    "p2": "HW",
                    "p3": "HW",
                    "join": "CPU",
                }
            },
        )
        cores = allocate_cores(problem, genome)
        assert cores.available_cores("HW", "M", "P") > 1

    def test_no_duplication_with_ample_slack(self):
        # With a very long period, mobility is huge and one core is
        # enough.
        problem = make_parallel_hw_problem(period=10.0)
        genome = MappingString.from_mapping(
            problem,
            {
                "M": {
                    "src": "CPU",
                    "p0": "HW",
                    "p1": "HW",
                    "p2": "HW",
                    "p3": "HW",
                    "join": "CPU",
                }
            },
        )
        cores = allocate_cores(problem, genome)
        assert cores.available_cores("HW", "M", "P") == 1

    def test_duplication_respects_area(self):
        # Area only fits one 400-cell P core (plus nothing else).
        problem = make_parallel_hw_problem(period=0.012)
        problem.architecture.pe("HW").area = 450.0
        genome = MappingString.from_mapping(
            problem,
            {
                "M": {
                    "src": "CPU",
                    "p0": "HW",
                    "p1": "HW",
                    "p2": "HW",
                    "p3": "HW",
                    "join": "CPU",
                }
            },
        )
        cores = allocate_cores(problem, genome)
        assert cores.available_cores("HW", "M", "P") == 1
        assert cores.is_area_feasible()


class TestAsicAreaAccounting:
    def test_union_over_modes(self):
        # ASIC config is static: types of BOTH modes must coexist.
        problem = make_two_mode_problem(asic_area=10_000.0)
        genome = all_hw_genome(problem)
        cores = allocate_cores(problem, genome)
        # O1 uses A, B, C; O2 uses D, E, F -> six cores of 250 cells.
        assert cores.area_used["PE1"] >= 6 * 250.0

    def test_violation_reported(self):
        problem = make_two_mode_problem(asic_area=600.0)
        genome = all_hw_genome(problem)
        cores = allocate_cores(problem, genome)
        assert not cores.is_area_feasible()
        assert cores.area_violations()["PE1"] > 0
        assert cores.area_violation("PE1") == pytest.approx(
            cores.area_used["PE1"] - 600.0
        )

    def test_counts_identical_across_modes(self):
        problem = make_two_mode_problem(asic_area=10_000.0)
        genome = all_hw_genome(problem)
        cores = allocate_cores(problem, genome)
        assert cores.counts["PE1"]["O1"] == cores.counts["PE1"]["O2"]

    def test_software_pe_has_no_violation(self):
        problem = make_two_mode_problem()
        genome = MappingString(problem, ["PE0"] * 7)
        cores = allocate_cores(problem, genome)
        assert cores.area_violation("PE0") == 0.0


class TestFpgaAreaAccounting:
    def test_per_mode_configuration(self):
        problem = make_two_mode_problem(
            hw_kind=PEKind.FPGA,
            asic_area=800.0,
            reconfig_time_per_cell=1e-6,
        )
        genome = all_hw_genome(problem)
        cores = allocate_cores(problem, genome)
        # Each mode needs only its own 3 types (<=750 cells): fits,
        # although the union (6 types = 1500 cells) would not.
        assert cores.is_area_feasible()
        assert cores.counts["PE1"]["O1"] != cores.counts["PE1"]["O2"]

    def test_transition_time_charges_loaded_cores(self):
        problem = make_two_mode_problem(
            hw_kind=PEKind.FPGA,
            asic_area=800.0,
            reconfig_time_per_cell=1e-6,
        )
        genome = all_hw_genome(problem)
        cores = allocate_cores(problem, genome)
        # O1 -> O2 must load D, E, F (3 cores x 250 cells).
        expected = 3 * 250.0 * 1e-6
        assert cores.transition_time("O1", "O2") == pytest.approx(expected)

    def test_transition_times_for_all_transitions(self):
        problem = make_two_mode_problem(
            hw_kind=PEKind.FPGA,
            asic_area=800.0,
            reconfig_time_per_cell=1e-6,
        )
        genome = all_hw_genome(problem)
        cores = allocate_cores(problem, genome)
        times = cores.transition_times()
        assert set(times) == {("O1", "O2"), ("O2", "O1")}

    def test_transition_violation_detected(self):
        problem = make_two_mode_problem(
            hw_kind=PEKind.FPGA,
            asic_area=800.0,
            reconfig_time_per_cell=1e-3,  # very slow reconfiguration
            transition_limit=0.01,
        )
        genome = all_hw_genome(problem)
        cores = allocate_cores(problem, genome)
        violations = cores.transition_violations()
        assert violations
        for ratio in violations.values():
            assert ratio > 1.0

    def test_asic_never_causes_transition_time(self):
        problem = make_two_mode_problem(asic_area=10_000.0)
        genome = all_hw_genome(problem)
        cores = allocate_cores(problem, genome)
        assert cores.transition_time("O1", "O2") == 0.0
        assert cores.transition_violations() == {}
