"""Unit tests for the multi-mode mapping string (GA genome)."""

import random

import pytest

from repro.errors import MappingError
from repro.mapping.encoding import MappingString


class TestConstruction:
    def test_random_is_valid(self, two_mode_problem, rng):
        genome = MappingString.random(two_mode_problem, rng)
        assert len(genome) == two_mode_problem.genome_length()
        for gene in genome:
            assert gene in ("PE0", "PE1")

    def test_wrong_length_rejected(self, two_mode_problem):
        with pytest.raises(MappingError, match="length"):
            MappingString(two_mode_problem, ["PE0"])

    def test_invalid_candidate_rejected(self, two_mode_problem):
        genes = ["PE0"] * two_mode_problem.genome_length()
        genes[0] = "GHOST"
        with pytest.raises(MappingError):
            MappingString(two_mode_problem, genes)

    def test_from_mapping_roundtrip(self, two_mode_problem, rng):
        genome = MappingString.random(two_mode_problem, rng)
        rebuilt = MappingString.from_mapping(
            two_mode_problem, genome.full_mapping()
        )
        assert rebuilt == genome

    def test_from_mapping_missing_task(self, two_mode_problem):
        with pytest.raises(MappingError, match="misses"):
            MappingString.from_mapping(
                two_mode_problem, {"O1": {}, "O2": {}}
            )


class TestViews:
    def test_mode_mapping(self, two_mode_problem):
        genes = ["PE0", "PE1", "PE0", "PE1", "PE0", "PE1", "PE0"]
        genome = MappingString(two_mode_problem, genes)
        assert genome.mode_mapping("O1") == {
            "t1": "PE0",
            "t2": "PE1",
            "t3": "PE0",
            "t4": "PE1",
        }
        assert genome.mode_mapping("O2") == {
            "u1": "PE0",
            "u2": "PE1",
            "u3": "PE0",
        }

    def test_pe_of(self, two_mode_problem):
        genes = ["PE0", "PE1", "PE0", "PE1", "PE0", "PE1", "PE0"]
        genome = MappingString(two_mode_problem, genes)
        assert genome.pe_of("O1", "t2") == "PE1"
        assert genome.pe_of("O2", "u1") == "PE0"
        with pytest.raises(MappingError):
            genome.pe_of("O1", "ghost")
        with pytest.raises(MappingError):
            genome.pe_of("ghost", "t1")

    def test_gene_index(self, two_mode_problem):
        genes = ["PE0"] * 7
        genome = MappingString(two_mode_problem, genes)
        assert genome.gene_index("O1", "t1") == 0
        assert genome.gene_index("O1", "t4") == 3
        assert genome.gene_index("O2", "u1") == 4

    def test_candidates_at(self, two_mode_problem):
        genome = MappingString(two_mode_problem, ["PE0"] * 7)
        assert set(genome.candidates_at(0)) == {"PE0", "PE1"}
        with pytest.raises(MappingError):
            genome.candidates_at(99)

    def test_equality_and_hash(self, two_mode_problem):
        a = MappingString(two_mode_problem, ["PE0"] * 7)
        b = MappingString(two_mode_problem, ["PE0"] * 7)
        c = MappingString(two_mode_problem, ["PE1"] + ["PE0"] * 6)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2


class TestOperators:
    def test_with_gene(self, two_mode_problem):
        genome = MappingString(two_mode_problem, ["PE0"] * 7)
        changed = genome.with_gene(2, "PE1")
        assert changed.genes[2] == "PE1"
        assert genome.genes[2] == "PE0"  # original untouched

    def test_with_gene_validates(self, two_mode_problem):
        genome = MappingString(two_mode_problem, ["PE0"] * 7)
        with pytest.raises(MappingError):
            genome.with_gene(0, "GHOST")
        with pytest.raises(MappingError):
            genome.with_gene(42, "PE0")

    def test_with_genes(self, two_mode_problem):
        genome = MappingString(two_mode_problem, ["PE0"] * 7)
        changed = genome.with_genes({0: "PE1", 6: "PE1"})
        assert changed.genes[0] == "PE1"
        assert changed.genes[6] == "PE1"

    def test_mutate_rate_zero_returns_self(self, two_mode_problem, rng):
        genome = MappingString.random(two_mode_problem, rng)
        assert genome.mutate(rng, 0.0) is genome

    def test_mutate_rate_one_changes_every_gene(
        self, two_mode_problem, rng
    ):
        genome = MappingString(two_mode_problem, ["PE0"] * 7)
        mutated = genome.mutate(rng, 1.0)
        # Every gene has exactly two candidates, so rate 1 flips all.
        assert all(gene == "PE1" for gene in mutated.genes)

    def test_crossover_produces_valid_children(
        self, two_mode_problem, rng
    ):
        parent_a = MappingString(two_mode_problem, ["PE0"] * 7)
        parent_b = MappingString(two_mode_problem, ["PE1"] * 7)
        child_a, child_b = parent_a.crossover_two_point(parent_b, rng)
        # Gene multiset is preserved position-wise.
        for index in range(7):
            pair = {child_a.genes[index], child_b.genes[index]}
            assert pair == {"PE0", "PE1"}

    def test_crossover_exchanges_some_genes(self, two_mode_problem):
        rng = random.Random(5)
        parent_a = MappingString(two_mode_problem, ["PE0"] * 7)
        parent_b = MappingString(two_mode_problem, ["PE1"] * 7)
        exchanged = False
        for _ in range(20):
            child_a, _ = parent_a.crossover_two_point(parent_b, rng)
            if "PE1" in child_a.genes:
                exchanged = True
                break
        assert exchanged
