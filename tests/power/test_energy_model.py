"""Unit tests for Equation (1) — the average power model."""

import pytest

from repro.errors import SpecificationError
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.power.energy_model import (
    average_power,
    mode_dynamic_power,
    power_breakdown,
)
from repro.scheduling.list_scheduler import schedule_mode

from tests.conftest import make_two_mode_problem


def schedules_for(problem, mapping):
    genome = MappingString.from_mapping(problem, mapping)
    cores = allocate_cores(problem, genome)
    return {
        mode.name: schedule_mode(
            problem, mode, genome.mode_mapping(mode.name), cores
        )
        for mode in problem.omsm.modes
    }


ALL_SW = {
    "O1": {"t1": "PE0", "t2": "PE0", "t3": "PE0", "t4": "PE0"},
    "O2": {"u1": "PE0", "u2": "PE0", "u3": "PE0"},
}


class TestModeDynamicPower:
    def test_energy_over_period(self):
        problem = make_two_mode_problem(period=0.2)
        schedules = schedules_for(problem, ALL_SW)
        expected = schedules["O1"].total_dynamic_energy() / 0.2
        assert mode_dynamic_power(
            problem, "O1", schedules["O1"]
        ) == pytest.approx(expected)

    def test_period_normalisation(self):
        # Same schedule energy, double period -> half the power.
        short = make_two_mode_problem(period=0.2)
        longer = make_two_mode_problem(period=0.4)
        p_short = mode_dynamic_power(
            short, "O1", schedules_for(short, ALL_SW)["O1"]
        )
        p_long = mode_dynamic_power(
            longer, "O1", schedules_for(longer, ALL_SW)["O1"]
        )
        assert p_long == pytest.approx(p_short / 2)


class TestPowerBreakdown:
    def test_all_modes_present(self):
        problem = make_two_mode_problem()
        dynamic, static = power_breakdown(
            problem, schedules_for(problem, ALL_SW)
        )
        assert set(dynamic) == {"O1", "O2"}
        assert set(static) == {"O1", "O2"}
        assert all(v >= 0 for v in dynamic.values())

    def test_missing_mode_raises(self):
        problem = make_two_mode_problem()
        schedules = schedules_for(problem, ALL_SW)
        del schedules["O2"]
        with pytest.raises(SpecificationError, match="no schedule"):
            power_breakdown(problem, schedules)


class TestAveragePower:
    def test_equation_1(self):
        problem = make_two_mode_problem()
        schedules = schedules_for(problem, ALL_SW)
        dynamic, static = power_breakdown(problem, schedules)
        expected = 0.1 * (dynamic["O1"] + static["O1"]) + 0.9 * (
            dynamic["O2"] + static["O2"]
        )
        assert average_power(problem, schedules) == pytest.approx(expected)

    def test_uniform_vector(self):
        problem = make_two_mode_problem()
        schedules = schedules_for(problem, ALL_SW)
        dynamic, static = power_breakdown(problem, schedules)
        expected = 0.5 * (dynamic["O1"] + static["O1"]) + 0.5 * (
            dynamic["O2"] + static["O2"]
        )
        uniform = problem.omsm.uniform_probability_vector()
        assert average_power(
            problem, schedules, uniform
        ) == pytest.approx(expected)

    def test_linearity_in_probabilities(self):
        problem = make_two_mode_problem()
        schedules = schedules_for(problem, ALL_SW)
        p_o1 = average_power(problem, schedules, {"O1": 1.0, "O2": 0.0})
        p_o2 = average_power(problem, schedules, {"O1": 0.0, "O2": 1.0})
        for weight in (0.0, 0.25, 0.5, 0.9, 1.0):
            vector = {"O1": weight, "O2": 1.0 - weight}
            combined = average_power(problem, schedules, vector)
            assert combined == pytest.approx(
                weight * p_o1 + (1 - weight) * p_o2
            )

    def test_incomplete_vector_raises(self):
        problem = make_two_mode_problem()
        schedules = schedules_for(problem, ALL_SW)
        with pytest.raises(SpecificationError, match="misses"):
            average_power(problem, schedules, {"O1": 1.0})
