"""Unit tests for component shut-down analysis."""

import pytest

from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.power.shutdown import (
    active_components,
    mode_static_power,
    shut_down_components,
)
from repro.scheduling.list_scheduler import schedule_mode

from tests.conftest import make_two_mode_problem


def schedule_for(problem, mode_name, mapping):
    genome = MappingString.from_mapping(problem, mapping)
    cores = allocate_cores(problem, genome)
    mode = problem.omsm.mode(mode_name)
    return schedule_mode(
        problem, mode, genome.mode_mapping(mode_name), cores
    )


ALL_SW = {
    "O1": {"t1": "PE0", "t2": "PE0", "t3": "PE0", "t4": "PE0"},
    "O2": {"u1": "PE0", "u2": "PE0", "u3": "PE0"},
}

MIXED = {
    "O1": {"t1": "PE0", "t2": "PE1", "t3": "PE0", "t4": "PE0"},
    "O2": {"u1": "PE0", "u2": "PE0", "u3": "PE0"},
}


class TestActiveComponents:
    def test_all_software_shuts_down_hw_and_bus(self):
        problem = make_two_mode_problem()
        schedule = schedule_for(problem, "O1", ALL_SW)
        assert active_components(problem, schedule) == {"PE0"}
        assert shut_down_components(problem, schedule) == ("PE1", "CL0")

    def test_mixed_mapping_keeps_everything_on(self):
        problem = make_two_mode_problem()
        schedule = schedule_for(problem, "O1", MIXED)
        assert active_components(problem, schedule) == {
            "PE0",
            "PE1",
            "CL0",
        }
        assert shut_down_components(problem, schedule) == ()


class TestStaticPower:
    def test_all_software(self):
        problem = make_two_mode_problem()
        schedule = schedule_for(problem, "O1", ALL_SW)
        # Only PE0's 5 mW is paid.
        assert mode_static_power(problem, schedule) == pytest.approx(5e-3)

    def test_mixed(self):
        problem = make_two_mode_problem()
        schedule = schedule_for(problem, "O1", MIXED)
        # PE0 + PE1 + CL0 = 5 + 2 + 0.5 mW.
        assert mode_static_power(problem, schedule) == pytest.approx(
            7.5e-3
        )

    def test_per_mode_independence(self):
        problem = make_two_mode_problem()
        s1 = schedule_for(problem, "O1", MIXED)
        s2 = schedule_for(problem, "O2", MIXED)
        assert mode_static_power(problem, s1) == pytest.approx(7.5e-3)
        assert mode_static_power(problem, s2) == pytest.approx(5e-3)
