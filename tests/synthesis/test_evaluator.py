"""Unit tests for the candidate evaluator (Fig. 4 lines 3-14)."""

import pytest

from repro.architecture import (
    Architecture,
    PEKind,
    ProcessingElement,
    TaskImplementation,
    TechnologyLibrary,
)
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.specification import CommEdge, Mode, OMSM, Task, TaskGraph
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.evaluator import evaluate_mapping

from tests.conftest import make_two_mode_problem


ALL_SW = ["PE0"] * 7


class TestEvaluation:
    def test_produces_complete_implementation(self, two_mode_problem):
        genome = MappingString(two_mode_problem, ALL_SW)
        impl = evaluate_mapping(
            two_mode_problem, genome, SynthesisConfig()
        )
        assert impl is not None
        assert set(impl.schedules) == {"O1", "O2"}
        assert impl.metrics.fitness > 0
        for mode in two_mode_problem.omsm.modes:
            impl.schedules[mode.name].validate(
                mode, two_mode_problem.architecture
            )

    def test_feasible_fitness_equals_power(self, two_mode_problem):
        genome = MappingString(two_mode_problem, ALL_SW)
        impl = evaluate_mapping(
            two_mode_problem, genome, SynthesisConfig()
        )
        assert impl.metrics.is_feasible
        assert impl.metrics.fitness == pytest.approx(
            impl.metrics.average_power
        )

    def test_uniform_policy_changes_fitness_not_power(
        self, two_mode_problem
    ):
        genome = MappingString(two_mode_problem, ALL_SW)
        aware = evaluate_mapping(
            two_mode_problem,
            genome,
            SynthesisConfig(use_probabilities=True),
        )
        neglecting = evaluate_mapping(
            two_mode_problem,
            genome,
            SynthesisConfig(use_probabilities=False),
        )
        # Reported power is policy-independent...
        assert aware.metrics.average_power == pytest.approx(
            neglecting.metrics.average_power
        )
        # ...but the guiding fitness differs (modes are asymmetric).
        assert aware.metrics.fitness != pytest.approx(
            neglecting.metrics.fitness
        )

    def test_dvs_lowers_power(self, two_mode_problem):
        genome = MappingString(two_mode_problem, ALL_SW)
        nominal = evaluate_mapping(
            two_mode_problem, genome, SynthesisConfig()
        )
        scaled = evaluate_mapping(
            two_mode_problem,
            genome,
            SynthesisConfig(dvs=DvsMethod.GRADIENT),
        )
        assert (
            scaled.metrics.average_power < nominal.metrics.average_power
        )

    def test_area_violation_recorded(self):
        problem = make_two_mode_problem(asic_area=600.0)
        genome = MappingString(
            problem, ["PE1"] * problem.genome_length()
        )
        impl = evaluate_mapping(problem, genome, SynthesisConfig())
        assert not impl.metrics.is_area_feasible
        assert impl.metrics.fitness > impl.metrics.average_power

    def test_timing_violation_recorded(self):
        problem = make_two_mode_problem(period=0.02)
        genome = MappingString(problem, ["PE0"] * 7)
        impl = evaluate_mapping(problem, genome, SynthesisConfig())
        assert not impl.metrics.is_timing_feasible
        assert "O1" in impl.metrics.timing_violation

    def test_unroutable_mapping_returns_none(self):
        graph = TaskGraph(
            "g",
            [Task("a", "X"), Task("b", "X")],
            [CommEdge("a", "b", 10.0)],
        )
        omsm = OMSM("app", [Mode("M", graph, 1.0, 1.0)])
        arch = Architecture(
            "arch",
            [
                ProcessingElement("PE0", PEKind.GPP),
                ProcessingElement("PE1", PEKind.GPP),
            ],
        )
        tech = TechnologyLibrary(
            [
                TaskImplementation("X", "PE0", exec_time=0.01, power=0.1),
                TaskImplementation("X", "PE1", exec_time=0.01, power=0.1),
            ]
        )
        problem = Problem(omsm, arch, tech)
        split = MappingString.from_mapping(
            problem, {"M": {"a": "PE0", "b": "PE1"}}
        )
        assert (
            evaluate_mapping(problem, split, SynthesisConfig()) is None
        )

    def test_shutdown_summary(self, two_mode_problem):
        genome = MappingString(two_mode_problem, ALL_SW)
        impl = evaluate_mapping(
            two_mode_problem, genome, SynthesisConfig()
        )
        assert impl.shut_down_components("O1") == ("PE1", "CL0")
        assert "average power" in impl.summary()
