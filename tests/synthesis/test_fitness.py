"""Unit tests for the fitness function F_M and its penalties."""

import pytest

from repro.synthesis.fitness import (
    FitnessWeights,
    area_penalty_factor,
    mapping_fitness,
    timing_penalty,
    transition_penalty_factor,
)

from tests.conftest import make_two_mode_problem


@pytest.fixture
def problem():
    return make_two_mode_problem(period=0.2)


class TestTimingPenalty:
    def test_feasible_is_one(self, problem):
        assert timing_penalty(problem, {}, weight=20.0) == 1.0
        assert timing_penalty(problem, {"O1": {}}, weight=20.0) == 1.0

    def test_violation_scales_with_overshoot(self, problem):
        small = timing_penalty(
            problem, {"O1": {"t1": 0.02}}, weight=20.0
        )
        large = timing_penalty(
            problem, {"O1": {"t1": 0.10}}, weight=20.0
        )
        assert 1.0 < small < large

    def test_normalised_by_deadline(self, problem):
        # 0.02 overshoot over a 0.2 deadline is 10 % -> 1 + 20*0.1 = 3.
        penalty = timing_penalty(
            problem, {"O1": {"t1": 0.02}}, weight=20.0
        )
        assert penalty == pytest.approx(3.0)

    def test_multiple_violations_accumulate(self, problem):
        one = timing_penalty(problem, {"O1": {"t1": 0.02}}, weight=20.0)
        two = timing_penalty(
            problem,
            {"O1": {"t1": 0.02}, "O2": {"u1": 0.02}},
            weight=20.0,
        )
        assert two > one


class TestAreaPenalty:
    def test_feasible_is_one(self, problem):
        assert area_penalty_factor(problem, {}, weight=20.0) == 1.0

    def test_percentage_formula(self, problem):
        # PE1 area is 600; 60 cells over = 10 % -> 1 + 20 * 10 = 201.
        factor = area_penalty_factor(
            problem, {"PE1": 60.0}, weight=20.0
        )
        assert factor == pytest.approx(201.0)

    def test_weight_zero_neutralises(self, problem):
        assert area_penalty_factor(
            problem, {"PE1": 60.0}, weight=0.0
        ) == pytest.approx(1.0)


class TestTransitionPenalty:
    def test_feasible_is_one(self):
        assert transition_penalty_factor({}, weight=10.0) == 1.0

    def test_product_of_ratios(self):
        factor = transition_penalty_factor(
            {("a", "b"): 2.0, ("b", "a"): 3.0}, weight=10.0
        )
        assert factor == pytest.approx(60.0)

    def test_never_rewards(self):
        # Even with a tiny weight the factor must not drop below 1.
        factor = transition_penalty_factor(
            {("a", "b"): 1.01}, weight=0.1
        )
        assert factor >= 1.0


class TestMappingFitness:
    def test_feasible_fitness_is_power(self, problem):
        weights = FitnessWeights()
        fitness = mapping_fitness(problem, 0.005, {}, {}, {}, weights)
        assert fitness == pytest.approx(0.005)

    def test_penalties_multiply(self, problem):
        weights = FitnessWeights(area=20.0, transition=10.0, timing=20.0)
        fitness = mapping_fitness(
            problem,
            0.005,
            {"O1": {"t1": 0.02}},
            {"PE1": 60.0},
            {("O1", "O2"): 2.0},
            weights,
        )
        assert fitness == pytest.approx(0.005 * 3.0 * 201.0 * 20.0)

    def test_infeasible_always_worse_than_feasible(self, problem):
        weights = FitnessWeights()
        feasible = mapping_fitness(problem, 0.010, {}, {}, {}, weights)
        infeasible = mapping_fitness(
            problem, 0.005, {}, {"PE1": 60.0}, {}, weights
        )
        assert infeasible > feasible
