"""Unit tests for the synthesis configuration."""

import pytest

from repro.errors import SynthesisError
from repro.synthesis.config import DvsMethod, SynthesisConfig


class TestDefaults:
    def test_probability_aware_by_default(self):
        config = SynthesisConfig()
        assert config.use_probabilities
        assert config.dvs is DvsMethod.NONE

    def test_paper_shutdown_rate(self):
        assert SynthesisConfig().shutdown_mutation_rate == 0.02


class TestValidation:
    def test_population_too_small(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(population_size=1)

    def test_generations_positive(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(max_generations=0)

    @pytest.mark.parametrize("pressure", [0.9, 2.1])
    def test_selection_pressure_range(self, pressure):
        with pytest.raises(SynthesisError):
            SynthesisConfig(selection_pressure=pressure)

    def test_tournament_positive(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(tournament_size=0)

    @pytest.mark.parametrize("rate", [-0.1, 1.1])
    def test_crossover_rate_range(self, rate):
        with pytest.raises(SynthesisError):
            SynthesisConfig(crossover_rate=rate)

    def test_mutation_rate_range(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(per_gene_mutation_rate=1.5)
        assert SynthesisConfig(per_gene_mutation_rate=None)

    def test_elite_count_range(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(population_size=10, elite_count=10)
        with pytest.raises(SynthesisError):
            SynthesisConfig(elite_count=-1)

    def test_weights_non_negative(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(area_weight=-1.0)
        with pytest.raises(SynthesisError):
            SynthesisConfig(transition_weight=-1.0)
        with pytest.raises(SynthesisError):
            SynthesisConfig(timing_weight=-1.0)

    def test_repair_fraction_range(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(repair_fraction=0.0)


class TestPoolFailureMode:
    def test_default_is_fallback(self):
        assert SynthesisConfig().pool_failure_mode == "fallback"

    def test_invalid_mode_rejected(self):
        with pytest.raises(SynthesisError, match="pool failure mode"):
            SynthesisConfig(pool_failure_mode="explode")

    def test_mode_cache_size_must_be_positive(self):
        with pytest.raises(SynthesisError, match="mode cache size"):
            SynthesisConfig(mode_cache_size=0)
        assert SynthesisConfig(mode_cache_size=1).mode_cache_size == 1


class TestSerialisation:
    def test_round_trip(self):
        config = SynthesisConfig(
            population_size=24,
            dvs=DvsMethod.GRADIENT,
            use_probabilities=False,
            per_gene_mutation_rate=0.05,
            seed=9,
            jobs=2,
            pool_failure_mode="raise",
        )
        data = config.to_dict()
        assert data["dvs"] == "gradient"  # enum serialised by value
        restored = SynthesisConfig.from_dict(data)
        assert restored == config
        assert restored.dvs is DvsMethod.GRADIENT

    def test_default_round_trip(self):
        config = SynthesisConfig()
        assert SynthesisConfig.from_dict(config.to_dict()) == config

    def test_mode_cache_fields_round_trip(self):
        config = SynthesisConfig(mode_cache=False, mode_cache_size=64)
        data = config.to_dict()
        assert data["mode_cache"] is False
        assert data["mode_cache_size"] == 64
        restored = SynthesisConfig.from_dict(data)
        assert restored == config
        assert restored.mode_cache is False
        assert restored.mode_cache_size == 64

    def test_mode_cache_defaults_serialised(self):
        data = SynthesisConfig().to_dict()
        assert data["mode_cache"] is True
        assert data["mode_cache_size"] == 4096

    def test_vector_dvs_fields_round_trip(self):
        config = SynthesisConfig(vector_dvs=False)
        data = config.to_dict()
        assert data["vector_dvs"] is False
        assert data["dvs_warm_start"] is False
        restored = SynthesisConfig.from_dict(data)
        assert restored == config
        assert restored.vector_dvs is False

        warm = SynthesisConfig(vector_dvs=True, dvs_warm_start=True)
        data = warm.to_dict()
        assert data["dvs_warm_start"] is True
        assert SynthesisConfig.from_dict(data) == warm

    def test_vector_dvs_defaults_serialised(self):
        data = SynthesisConfig().to_dict()
        assert data["vector_dvs"] is True
        assert data["dvs_warm_start"] is False

    def test_speculation_fields_round_trip(self):
        config = SynthesisConfig(speculative=False, speculation_depth=3)
        data = config.to_dict()
        assert data["speculative"] is False
        assert data["speculation_depth"] == 3
        restored = SynthesisConfig.from_dict(data)
        assert restored == config
        assert restored.speculative is False
        assert restored.speculation_depth == 3

    def test_speculation_defaults_serialised(self):
        data = SynthesisConfig().to_dict()
        assert data["speculative"] is True
        assert data["speculation_depth"] == 1

    def test_speculation_depth_validated(self):
        with pytest.raises(SynthesisError, match="speculation depth"):
            SynthesisConfig(speculation_depth=0)
        data = SynthesisConfig().to_dict()
        data["speculation_depth"] = -2
        with pytest.raises(SynthesisError, match="speculation depth"):
            SynthesisConfig.from_dict(data)

    def test_warm_start_requires_vector_dvs(self):
        with pytest.raises(SynthesisError, match="vector_dvs"):
            SynthesisConfig(vector_dvs=False, dvs_warm_start=True)
        data = SynthesisConfig().to_dict()
        data["vector_dvs"] = False
        data["dvs_warm_start"] = True
        with pytest.raises(SynthesisError, match="vector_dvs"):
            SynthesisConfig.from_dict(data)

    def test_unknown_keys_rejected(self):
        data = SynthesisConfig().to_dict()
        data["poplation_size"] = 10  # typo must not pass silently
        with pytest.raises(SynthesisError, match="poplation_size"):
            SynthesisConfig.from_dict(data)

    def test_from_dict_validates(self):
        data = SynthesisConfig().to_dict()
        data["population_size"] = 1
        with pytest.raises(SynthesisError):
            SynthesisConfig.from_dict(data)

    def test_from_dict_accepts_dvs_string(self):
        data = SynthesisConfig().to_dict()
        data["dvs"] = "uniform"
        assert SynthesisConfig.from_dict(data).dvs is DvsMethod.UNIFORM
        data["dvs"] = "sawtooth"
        with pytest.raises(SynthesisError):
            SynthesisConfig.from_dict(data)


class TestWithUpdates:
    def test_returns_modified_copy(self):
        base = SynthesisConfig(seed=1)
        other = base.with_updates(seed=2, dvs=DvsMethod.GRADIENT)
        assert base.seed == 1
        assert other.seed == 2
        assert other.dvs is DvsMethod.GRADIENT
        assert other.population_size == base.population_size

    def test_updates_validated(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig().with_updates(population_size=0)
