"""Unit tests for the four improvement mutations."""

import random

import pytest

from repro.architecture import PEKind
from repro.mapping.encoding import MappingString
from repro.synthesis import mutations

from tests.conftest import make_two_mode_problem


@pytest.fixture
def problem():
    return make_two_mode_problem()


class TestShutdownImprovement:
    def test_vacates_one_pe_in_one_mode(self, problem):
        mixed = MappingString(
            problem, ["PE0", "PE1", "PE0", "PE1", "PE0", "PE1", "PE0"]
        )
        rng = random.Random(0)
        improved = mutations.shutdown_improvement(mixed, rng)
        assert improved is not None
        # In at least one mode, some PE previously used is now empty.
        vacated = False
        for mode in problem.omsm.modes:
            before = set(mixed.mode_mapping(mode.name).values())
            after = set(improved.mode_mapping(mode.name).values())
            if after < before:
                vacated = True
        assert vacated

    def test_result_is_valid_genome(self, problem):
        mixed = MappingString(
            problem, ["PE0", "PE1", "PE0", "PE1", "PE0", "PE1", "PE0"]
        )
        for seed in range(10):
            improved = mutations.shutdown_improvement(
                mixed, random.Random(seed)
            )
            if improved is not None:
                assert len(improved) == len(mixed)

    def test_probability_bias_prefers_dominant_mode(self, problem):
        # With bias enabled, O2 (Ψ=0.9) is chosen far more often.
        mixed = MappingString(
            problem, ["PE0", "PE1", "PE0", "PE1", "PE0", "PE1", "PE0"]
        )
        changed_o2 = 0
        trials = 200
        for seed in range(trials):
            improved = mutations.shutdown_improvement(
                mixed, random.Random(seed), bias_by_probability=True
            )
            if improved is None:
                continue
            if improved.mode_mapping("O2") != mixed.mode_mapping("O2"):
                changed_o2 += 1
        assert changed_o2 > trials / 2


class TestAreaImprovement:
    def test_moves_hardware_to_software(self, problem):
        all_hw_capable = MappingString(
            problem, ["PE1"] * problem.genome_length()
        )
        improved = mutations.area_improvement(
            all_hw_capable, random.Random(0), ["PE1"], move_fraction=1.0
        )
        assert improved is not None
        assert all(gene == "PE0" for gene in improved.genes)

    def test_none_when_nothing_on_hw(self, problem):
        all_sw = MappingString(problem, ["PE0"] * 7)
        assert (
            mutations.area_improvement(
                all_sw, random.Random(0), ["PE1"], move_fraction=1.0
            )
            is None
        )

    def test_respects_move_fraction_zero(self, problem):
        all_hw = MappingString(problem, ["PE1"] * 7)
        assert (
            mutations.area_improvement(
                all_hw, random.Random(0), ["PE1"], move_fraction=0.0
            )
            is None
        )


class TestTimingImprovement:
    def test_moves_software_to_faster_hardware(self, problem):
        all_sw = MappingString(problem, ["PE0"] * 7)
        improved = mutations.timing_improvement(
            all_sw, random.Random(0), ["O1"], move_fraction=1.0
        )
        assert improved is not None
        # Only O1 genes move (the violating mode).
        assert set(improved.mode_mapping("O1").values()) == {"PE1"}
        assert set(improved.mode_mapping("O2").values()) == {"PE0"}

    def test_none_when_all_hardware(self, problem):
        all_hw = MappingString(problem, ["PE1"] * 7)
        assert (
            mutations.timing_improvement(
                all_hw, random.Random(0), [], move_fraction=1.0
            )
            is None
        )


class TestTransitionImprovement:
    def test_moves_tasks_off_fpga(self):
        problem = make_two_mode_problem(
            hw_kind=PEKind.FPGA, reconfig_time_per_cell=1e-4
        )
        all_fpga = MappingString(
            problem, ["PE1"] * problem.genome_length()
        )
        improved = mutations.transition_improvement(
            all_fpga, random.Random(0), ["PE1"], move_fraction=1.0
        )
        assert improved is not None
        assert all(gene == "PE0" for gene in improved.genes)

    def test_none_without_fpgas(self, problem):
        # The fixture's PE1 is an ASIC: nothing to move away from.
        all_hw = MappingString(problem, ["PE1"] * 7)
        assert (
            mutations.transition_improvement(
                all_hw, random.Random(0), [], move_fraction=1.0
            )
            is None
        )
