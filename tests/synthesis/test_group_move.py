"""Tests for the type-group move operator."""

import random


from repro.mapping.encoding import MappingString
from repro.synthesis.mutations import type_group_move

from tests.conftest import make_parallel_hw_problem


class TestTypeGroupMove:
    def test_moves_whole_type_together(self):
        problem = make_parallel_hw_problem()
        base = MappingString.from_mapping(
            problem,
            {
                "M": {
                    "src": "CPU",
                    "p0": "CPU",
                    "p1": "HW",
                    "p2": "CPU",
                    "p3": "HW",
                    "join": "CPU",
                }
            },
        )
        seen_unified = False
        for seed in range(40):
            moved = type_group_move(base, random.Random(seed))
            if moved is None:
                continue
            # All tasks of the moved type share one PE afterwards.
            mapping = moved.mode_mapping("M")
            p_targets = {mapping[n] for n in ("p0", "p1", "p2", "p3")}
            if len(p_targets) == 1:
                seen_unified = True
        assert seen_unified

    def test_result_valid(self, two_mode_problem):
        base = MappingString.random(two_mode_problem, random.Random(1))
        for seed in range(20):
            moved = type_group_move(base, random.Random(seed))
            if moved is not None:
                assert len(moved) == len(base)

    def test_noop_returns_none(self):
        # Single candidate per type -> no move possible.
        from repro.architecture import (
            Architecture,
            PEKind,
            ProcessingElement,
            TaskImplementation,
            TechnologyLibrary,
        )
        from repro.problem import Problem
        from repro.specification import Mode, OMSM, Task, TaskGraph

        graph = TaskGraph("g", [Task("a", "X")])
        omsm = OMSM("app", [Mode("M", graph, 1.0, 1.0)])
        arch = Architecture(
            "arch", [ProcessingElement("CPU", PEKind.GPP)]
        )
        tech = TechnologyLibrary(
            [TaskImplementation("X", "CPU", exec_time=0.01, power=0.1)]
        )
        problem = Problem(omsm, arch, tech)
        genome = MappingString(problem, ["CPU"])
        assert type_group_move(genome, random.Random(0)) is None

    def test_changes_only_one_mode(self, two_mode_problem):
        base = MappingString(
            two_mode_problem, ["PE0"] * two_mode_problem.genome_length()
        )
        for seed in range(20):
            moved = type_group_move(base, random.Random(seed))
            if moved is None:
                continue
            changed_modes = [
                mode.name
                for mode in two_mode_problem.omsm.modes
                if moved.mode_mapping(mode.name)
                != base.mode_mapping(mode.name)
            ]
            assert len(changed_modes) == 1
