"""Tests for the area/power design-space exploration.

Also home of the fitness tie-breaking contract: equal-fitness
candidates keep a deterministic rank order — stable population order,
identical between serial and pooled evaluation, and unperturbed by the
per-mode result cache (which may change *when* a fitness is computed,
never *what* it is or how ties resolve).
"""

import random

import pytest

from repro.mapping.encoding import MappingString
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.cosynthesis import synthesize
from repro.synthesis.ga import rank_population
from repro.synthesis.pareto import (
    TradeoffPoint,
    area_power_tradeoff,
    format_tradeoff,
    pareto_front,
    scale_hardware_area,
)

from tests.conftest import make_two_mode_problem

TINY = SynthesisConfig(
    population_size=10, max_generations=10, convergence_generations=4
)


class TestScaleHardwareArea:
    def test_scales_hw_only(self):
        problem = make_two_mode_problem(asic_area=600.0)
        scaled = scale_hardware_area(problem, 2.0)
        assert scaled.architecture.pe("PE1").area == pytest.approx(
            1200.0
        )
        assert scaled.architecture.pe("PE0").area == 0.0

    def test_original_untouched(self):
        problem = make_two_mode_problem(asic_area=600.0)
        scale_hardware_area(problem, 0.5)
        assert problem.architecture.pe("PE1").area == 600.0

    def test_invalid_scale(self):
        problem = make_two_mode_problem()
        with pytest.raises(ValueError):
            scale_hardware_area(problem, 0.0)


class TestTradeoff:
    def test_sweep_produces_point_per_scale(self):
        problem = make_two_mode_problem()
        points = area_power_tradeoff(
            problem, scales=(0.5, 1.0), config=TINY, runs=1
        )
        assert [p.area_scale for p in points] == [0.5, 1.0]
        for point in points:
            assert point.average_power > 0
            assert point.runs == 1

    def test_more_area_never_hurts_much(self):
        # With more hardware area the optimum can only improve (up to
        # GA noise) since every smaller-area solution remains valid.
        problem = make_two_mode_problem()
        points = area_power_tradeoff(
            problem,
            scales=(0.4, 2.0),
            config=SynthesisConfig(
                population_size=16,
                max_generations=25,
                convergence_generations=8,
            ),
            runs=1,
            base_seed=3,
        )
        small, large = points
        assert large.average_power <= small.average_power * 1.15


class TestParetoFront:
    def make_points(self):
        return [
            TradeoffPoint(0.5, 300.0, 10e-3, 1, 1),
            TradeoffPoint(1.0, 600.0, 6e-3, 1, 1),
            TradeoffPoint(1.5, 900.0, 7e-3, 1, 1),  # dominated
            TradeoffPoint(2.0, 1200.0, 5e-3, 1, 1),
        ]

    def test_dominated_points_removed(self):
        front = pareto_front(self.make_points())
        scales = [p.area_scale for p in front]
        assert 1.5 not in scales
        assert scales == [0.5, 1.0, 2.0]

    def test_front_sorted_by_area(self):
        front = pareto_front(self.make_points())
        areas = [p.total_hw_area for p in front]
        assert areas == sorted(areas)

    def test_duplicate_points_both_survive(self):
        # Two coincident points dominate neither (domination needs a
        # strict improvement in at least one objective).
        twin = TradeoffPoint(1.0, 600.0, 6e-3, 1, 1)
        other = TradeoffPoint(1.0, 600.0, 6e-3, 1, 1)
        front = pareto_front([twin, other])
        assert len(front) == 2

    def test_single_point_is_its_own_front(self):
        point = TradeoffPoint(1.0, 600.0, 6e-3, 1, 1)
        assert pareto_front([point]) == [point]

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_all_feasible_property(self):
        assert TradeoffPoint(1.0, 600.0, 6e-3, 2, 2).all_feasible
        assert not TradeoffPoint(1.0, 600.0, 6e-3, 1, 2).all_feasible


class TestTieBreakDeterminism:
    """Equal-fitness candidates rank deterministically, cache or not."""

    def test_rank_population_is_stable_on_ties(self):
        problem = make_two_mode_problem()
        rng = random.Random(4)
        genomes = [MappingString.random(problem, rng) for _ in range(6)]
        # Three tie groups; within each, insertion order must survive.
        population = [
            (genomes[0], 2.0),
            (genomes[1], 1.0),
            (genomes[2], 2.0),
            (genomes[3], 1.0),
            (genomes[4], 3.0),
            (genomes[5], 2.0),
        ]
        ranked = rank_population(population, selection_pressure=1.8)
        ordered = [entry.genome for entry in ranked]
        assert ordered == [
            genomes[1],
            genomes[3],
            genomes[0],
            genomes[2],
            genomes[5],
            genomes[4],
        ]
        # Equal fitness still means distinct linear-ranking weights —
        # position, not fitness, carries the weight.
        assert ranked[0].weight == pytest.approx(1.8)
        assert ranked[-1].weight == pytest.approx(0.2)

    @pytest.mark.parametrize("mode_cache", [True, False])
    def test_jobs_and_cache_leave_ordering_unchanged(self, mode_cache):
        # A full run is a pure function of (problem, config-minus-jobs,
        # seed): the best genome and whole fitness history must match
        # between serial and pooled evaluation, with the mode cache on
        # or off.  Tie-breaks inside rank_population resolve by stable
        # population order, which dispatch must not perturb.
        config = SynthesisConfig(
            population_size=12,
            max_generations=6,
            convergence_generations=10,
            seed=13,
            mode_cache=mode_cache,
        )
        serial = synthesize(
            make_two_mode_problem(), config.with_updates(jobs=1)
        )
        pooled = synthesize(
            make_two_mode_problem(), config.with_updates(jobs=4)
        )
        assert serial.history == pooled.history
        assert serial.best.mapping.genes == pooled.best.mapping.genes
        assert (
            serial.best.metrics.fitness == pooled.best.metrics.fitness
        )

    def test_cache_on_off_identical_histories(self):
        config = SynthesisConfig(
            population_size=12,
            max_generations=6,
            convergence_generations=10,
            seed=13,
        )
        on = synthesize(make_two_mode_problem(), config)
        off = synthesize(
            make_two_mode_problem(),
            config.with_updates(mode_cache=False),
        )
        assert on.history == off.history
        assert on.best.mapping.genes == off.best.mapping.genes


class TestFormatting:
    def test_table_contains_markers(self):
        text = format_tradeoff(
            [
                TradeoffPoint(0.5, 300.0, 10e-3, 1, 1),
                TradeoffPoint(1.0, 600.0, 6e-3, 1, 1),
            ]
        )
        assert "pareto" in text
        assert "*" in text
        assert "10.000" in text
