"""Tests for the area/power design-space exploration."""

import pytest

from repro.synthesis.config import SynthesisConfig
from repro.synthesis.pareto import (
    TradeoffPoint,
    area_power_tradeoff,
    format_tradeoff,
    pareto_front,
    scale_hardware_area,
)

from tests.conftest import make_two_mode_problem

TINY = SynthesisConfig(
    population_size=10, max_generations=10, convergence_generations=4
)


class TestScaleHardwareArea:
    def test_scales_hw_only(self):
        problem = make_two_mode_problem(asic_area=600.0)
        scaled = scale_hardware_area(problem, 2.0)
        assert scaled.architecture.pe("PE1").area == pytest.approx(
            1200.0
        )
        assert scaled.architecture.pe("PE0").area == 0.0

    def test_original_untouched(self):
        problem = make_two_mode_problem(asic_area=600.0)
        scale_hardware_area(problem, 0.5)
        assert problem.architecture.pe("PE1").area == 600.0

    def test_invalid_scale(self):
        problem = make_two_mode_problem()
        with pytest.raises(ValueError):
            scale_hardware_area(problem, 0.0)


class TestTradeoff:
    def test_sweep_produces_point_per_scale(self):
        problem = make_two_mode_problem()
        points = area_power_tradeoff(
            problem, scales=(0.5, 1.0), config=TINY, runs=1
        )
        assert [p.area_scale for p in points] == [0.5, 1.0]
        for point in points:
            assert point.average_power > 0
            assert point.runs == 1

    def test_more_area_never_hurts_much(self):
        # With more hardware area the optimum can only improve (up to
        # GA noise) since every smaller-area solution remains valid.
        problem = make_two_mode_problem()
        points = area_power_tradeoff(
            problem,
            scales=(0.4, 2.0),
            config=SynthesisConfig(
                population_size=16,
                max_generations=25,
                convergence_generations=8,
            ),
            runs=1,
            base_seed=3,
        )
        small, large = points
        assert large.average_power <= small.average_power * 1.15


class TestParetoFront:
    def make_points(self):
        return [
            TradeoffPoint(0.5, 300.0, 10e-3, 1, 1),
            TradeoffPoint(1.0, 600.0, 6e-3, 1, 1),
            TradeoffPoint(1.5, 900.0, 7e-3, 1, 1),  # dominated
            TradeoffPoint(2.0, 1200.0, 5e-3, 1, 1),
        ]

    def test_dominated_points_removed(self):
        front = pareto_front(self.make_points())
        scales = [p.area_scale for p in front]
        assert 1.5 not in scales
        assert scales == [0.5, 1.0, 2.0]

    def test_front_sorted_by_area(self):
        front = pareto_front(self.make_points())
        areas = [p.total_hw_area for p in front]
        assert areas == sorted(areas)


class TestFormatting:
    def test_table_contains_markers(self):
        text = format_tradeoff(
            [
                TradeoffPoint(0.5, 300.0, 10e-3, 1, 1),
                TradeoffPoint(1.0, 600.0, 6e-3, 1, 1),
            ]
        )
        assert "pareto" in text
        assert "*" in text
        assert "10.000" in text
