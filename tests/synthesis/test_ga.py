"""Unit tests for the GA machinery (ranking, selection, breeding)."""

import random

import pytest

from repro.mapping.encoding import MappingString
from repro.synthesis import ga

from tests.conftest import make_two_mode_problem


@pytest.fixture
def problem():
    return make_two_mode_problem()


def genomes(problem, count):
    rng = random.Random(0)
    return [MappingString.random(problem, rng) for _ in range(count)]


class TestRanking:
    def test_sorted_best_first(self, problem):
        pop = genomes(problem, 4)
        fitnesses = [3.0, 1.0, 4.0, 2.0]
        ranked = ga.rank_population(
            list(zip(pop, fitnesses)), selection_pressure=2.0
        )
        assert [r.fitness for r in ranked] == [1.0, 2.0, 3.0, 4.0]

    def test_linear_weights(self, problem):
        pop = genomes(problem, 3)
        ranked = ga.rank_population(
            list(zip(pop, [1.0, 2.0, 3.0])), selection_pressure=2.0
        )
        assert ranked[0].weight == pytest.approx(2.0)
        assert ranked[1].weight == pytest.approx(1.0)
        assert ranked[2].weight == pytest.approx(0.0)

    def test_pressure_one_is_uniform(self, problem):
        pop = genomes(problem, 3)
        ranked = ga.rank_population(
            list(zip(pop, [1.0, 2.0, 3.0])), selection_pressure=1.0
        )
        assert all(r.weight == pytest.approx(1.0) for r in ranked)

    def test_single_individual(self, problem):
        pop = genomes(problem, 1)
        ranked = ga.rank_population(
            list(zip(pop, [1.0])), selection_pressure=1.8
        )
        assert ranked[0].weight == 1.0


class TestSelection:
    def test_tournament_prefers_better(self, problem):
        pop = genomes(problem, 10)
        fitnesses = list(range(10))
        ranked = ga.rank_population(
            list(zip(pop, map(float, fitnesses))), selection_pressure=2.0
        )
        rng = random.Random(0)
        picks = [
            ga.tournament_select(ranked, rng, tournament_size=3).fitness
            for _ in range(300)
        ]
        # Larger tournaments strongly favour low-fitness individuals.
        assert sum(picks) / len(picks) < 4.5

    def test_mating_pool_size(self, problem):
        pop = genomes(problem, 5)
        ranked = ga.rank_population(
            list(zip(pop, [1.0] * 5)), selection_pressure=1.5
        )
        pool = ga.select_mating_pool(
            ranked, random.Random(0), tournament_size=2, pool_size=8
        )
        assert len(pool) == 8


class TestBreeding:
    def test_offspring_count(self, problem):
        parents = genomes(problem, 6)
        offspring = ga.breed(
            parents, random.Random(0), crossover_rate=1.0,
            per_gene_mutation_rate=0.1,
        )
        assert len(offspring) == 6

    def test_odd_parent_count(self, problem):
        parents = genomes(problem, 5)
        offspring = ga.breed(
            parents, random.Random(0), crossover_rate=1.0,
            per_gene_mutation_rate=0.0,
        )
        assert len(offspring) == 5

    @pytest.mark.parametrize("pool_size", [1, 2, 3, 4, 5, 8, 9])
    @pytest.mark.parametrize("crossover_rate", [0.0, 0.5, 1.0])
    def test_offspring_count_equals_pool_size(
        self, problem, pool_size, crossover_rate
    ):
        # Regression guard: the GA replaces the non-elite population
        # slots with exactly one offspring per parent, for odd and even
        # mating pools alike — a shortfall would silently shrink the
        # effective population.
        parents = genomes(problem, pool_size)
        offspring = ga.breed(
            parents,
            random.Random(7),
            crossover_rate=crossover_rate,
            per_gene_mutation_rate=0.1,
        )
        assert len(offspring) == pool_size

    def test_offspring_valid(self, problem):
        parents = genomes(problem, 8)
        offspring = ga.breed(
            parents, random.Random(1), crossover_rate=0.9,
            per_gene_mutation_rate=0.2,
        )
        for child in offspring:
            assert len(child) == problem.genome_length()


class TestInsertion:
    def test_elites_survive(self, problem):
        pop = genomes(problem, 6)
        ranked = ga.rank_population(
            list(zip(pop, [float(i) for i in range(6)])),
            selection_pressure=1.5,
        )
        offspring = genomes(problem, 4)
        next_gen = ga.insert_offspring(
            ranked, offspring, elite_count=2, population_size=6
        )
        assert len(next_gen) == 6
        assert next_gen[0] == ranked[0].genome
        assert next_gen[1] == ranked[1].genome

    def test_top_up_with_survivors(self, problem):
        pop = genomes(problem, 6)
        ranked = ga.rank_population(
            list(zip(pop, [float(i) for i in range(6)])),
            selection_pressure=1.5,
        )
        next_gen = ga.insert_offspring(
            ranked, [], elite_count=1, population_size=6
        )
        assert len(next_gen) == 6

    def test_excess_offspring_truncated(self, problem):
        pop = genomes(problem, 4)
        ranked = ga.rank_population(
            list(zip(pop, [1.0] * 4)), selection_pressure=1.5
        )
        offspring = genomes(problem, 10)
        next_gen = ga.insert_offspring(
            ranked, offspring, elite_count=1, population_size=4
        )
        assert len(next_gen) == 4


class TestDiversity:
    def test_all_distinct(self, problem):
        pop = genomes(problem, 8)
        assert ga.population_diversity(pop) <= 1.0

    def test_all_identical(self, problem):
        genome = MappingString(problem, ["PE0"] * 7)
        assert ga.population_diversity([genome] * 5) == pytest.approx(
            0.2
        )

    def test_empty(self):
        assert ga.population_diversity([]) == 0.0
