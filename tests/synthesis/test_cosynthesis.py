"""Integration tests for the complete co-synthesis loop."""

import random

import pytest

from repro.mapping.encoding import MappingString
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer, synthesize
from repro.synthesis.evaluator import evaluate_mapping


FAST = dict(
    population_size=16, max_generations=30, convergence_generations=8
)


class TestBasicRuns:
    def test_returns_feasible_solution(self, two_mode_problem):
        result = synthesize(
            two_mode_problem, SynthesisConfig(seed=1, **FAST)
        )
        assert result.is_feasible
        assert result.average_power > 0
        assert result.generations >= 1
        assert result.evaluations >= 16
        assert result.cpu_time > 0
        assert len(result.history) == result.generations

    def test_history_monotone_non_increasing(self, two_mode_problem):
        result = synthesize(
            two_mode_problem, SynthesisConfig(seed=2, **FAST)
        )
        for earlier, later in zip(result.history, result.history[1:]):
            assert later <= earlier + 1e-15

    def test_deterministic_per_seed(self, two_mode_problem):
        first = synthesize(
            two_mode_problem, SynthesisConfig(seed=7, **FAST)
        )
        second = synthesize(
            two_mode_problem, SynthesisConfig(seed=7, **FAST)
        )
        assert first.best.mapping == second.best.mapping
        assert first.average_power == pytest.approx(
            second.average_power
        )

    def test_different_seeds_may_differ(self, two_mode_problem):
        # Not guaranteed, but the histories should at least exist.
        a = synthesize(two_mode_problem, SynthesisConfig(seed=1, **FAST))
        b = synthesize(two_mode_problem, SynthesisConfig(seed=9, **FAST))
        assert a.history and b.history


class TestOptimisationQuality:
    def test_beats_average_random_mapping(self, two_mode_problem):
        result = synthesize(
            two_mode_problem, SynthesisConfig(seed=3, **FAST)
        )
        rng = random.Random(42)
        random_powers = []
        for _ in range(30):
            genome = MappingString.random(two_mode_problem, rng)
            impl = evaluate_mapping(
                two_mode_problem, genome, SynthesisConfig()
            )
            if impl is not None and impl.metrics.is_feasible:
                random_powers.append(impl.metrics.average_power)
        assert random_powers
        average_random = sum(random_powers) / len(random_powers)
        assert result.average_power <= average_random

    def test_dvs_beats_no_dvs(self, two_mode_problem):
        nominal = synthesize(
            two_mode_problem, SynthesisConfig(seed=4, **FAST)
        )
        scaled = synthesize(
            two_mode_problem,
            SynthesisConfig(seed=4, dvs=DvsMethod.GRADIENT, **FAST),
        )
        assert scaled.average_power < nominal.average_power

    def test_convergence_stops_early(self, two_mode_problem):
        result = synthesize(
            two_mode_problem,
            SynthesisConfig(
                seed=5,
                population_size=16,
                max_generations=200,
                convergence_generations=5,
            ),
        )
        assert result.generations < 200


class TestConfigurationEffects:
    def test_mutations_can_be_disabled(self, two_mode_problem):
        result = synthesize(
            two_mode_problem,
            SynthesisConfig(
                seed=6,
                enable_shutdown_improvement=False,
                enable_area_improvement=False,
                enable_timing_improvement=False,
                enable_transition_improvement=False,
                **FAST,
            ),
        )
        assert result.is_feasible

    def test_uniform_dvs_method(self, two_mode_problem):
        result = synthesize(
            two_mode_problem,
            SynthesisConfig(seed=6, dvs=DvsMethod.UNIFORM, **FAST),
        )
        assert result.is_feasible

    def test_synthesizer_reuse_keeps_cache(self, two_mode_problem):
        synthesizer = MultiModeSynthesizer(
            two_mode_problem, SynthesisConfig(seed=8, **FAST)
        )
        first = synthesizer.run()
        evaluations_after_first = first.evaluations
        second = synthesizer.run()
        # The cache persists, so the second run adds few evaluations.
        assert second.evaluations >= evaluations_after_first
