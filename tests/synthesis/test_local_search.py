"""Tests for population seeding and the final local-search polish."""

import random

import pytest

from repro.mapping.encoding import MappingString
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer



class TestSoftwareBiasedSeeding:
    def test_full_bias_maps_everything_to_software(
        self, two_mode_problem
    ):
        genome = MappingString.random_software_biased(
            two_mode_problem, random.Random(0), bias=1.0
        )
        assert all(gene == "PE0" for gene in genome.genes)

    def test_zero_bias_is_uniform_like(self, two_mode_problem):
        rng = random.Random(0)
        seen_hw = False
        for _ in range(10):
            genome = MappingString.random_software_biased(
                two_mode_problem, rng, bias=0.0
            )
            if "PE1" in genome.genes:
                seen_hw = True
        assert seen_hw

    def test_valid_genome(self, two_mode_problem):
        for seed in range(10):
            genome = MappingString.random_software_biased(
                two_mode_problem, random.Random(seed), bias=0.5
            )
            assert len(genome) == two_mode_problem.genome_length()

    def test_hardware_only_types_still_mapped(self):
        # When a type has no software implementation the bias must not
        # crash; it falls back to the full candidate set.
        from repro.architecture import (
            Architecture,
            CommunicationLink,
            PEKind,
            ProcessingElement,
            TaskImplementation,
            TechnologyLibrary,
        )
        from repro.problem import Problem
        from repro.specification import Mode, OMSM, Task, TaskGraph

        graph = TaskGraph("g", [Task("a", "HWONLY")])
        omsm = OMSM("app", [Mode("M", graph, 1.0, 1.0)])
        arch = Architecture(
            "arch",
            [
                ProcessingElement("CPU", PEKind.GPP),
                ProcessingElement("HW", PEKind.ASIC, area=100.0),
            ],
            [CommunicationLink("BUS", ["CPU", "HW"], 1e6)],
        )
        tech = TechnologyLibrary(
            [
                TaskImplementation(
                    "HWONLY", "HW", exec_time=0.01, power=0.1, area=50.0
                )
            ]
        )
        problem = Problem(omsm, arch, tech)
        genome = MappingString.random_software_biased(
            problem, random.Random(0), bias=1.0
        )
        assert genome.genes == ("HW",)


class TestLocalSearch:
    FAST = dict(
        population_size=12, max_generations=15, convergence_generations=5
    )

    def test_polish_never_hurts(self, two_mode_problem):
        plain = MultiModeSynthesizer(
            two_mode_problem,
            SynthesisConfig(
                seed=3, local_search_budget_factor=0.0, **self.FAST
            ),
        ).run()
        polished = MultiModeSynthesizer(
            two_mode_problem,
            SynthesisConfig(
                seed=3, local_search_budget_factor=3.0, **self.FAST
            ),
        ).run()
        assert (
            polished.best.metrics.fitness
            <= plain.best.metrics.fitness + 1e-15
        )

    def test_polished_result_is_single_gene_local_optimum(self):
        # After polishing, no single-gene change may improve the
        # fitness.  (Note: the Fig. 2b mapping itself is a strict local
        # optimum at 26.7158 mW·s — escaping it needs the GA's
        # crossover, which is exactly the paper's point.)
        from repro.examples_support import fig2_problem
        from repro.synthesis.evaluator import evaluate_mapping

        problem = fig2_problem(period=1.0)
        config = SynthesisConfig(
            seed=0,
            population_size=4,
            max_generations=3,
            convergence_generations=2,
            local_search_budget_factor=10.0,
        )
        result = MultiModeSynthesizer(problem, config).run()
        best = result.best.mapping
        best_fitness = result.best.metrics.fitness
        for index in range(len(best)):
            for alternative in best.candidates_at(index):
                if alternative == best.genes[index]:
                    continue
                neighbour = best.with_gene(index, alternative)
                impl = evaluate_mapping(problem, neighbour, config)
                assert impl is not None
                assert impl.metrics.fitness >= best_fitness - 1e-15

    def test_fig2b_is_a_strict_local_optimum(self):
        # Documents the search-space structure the GA must overcome:
        # every single-gene neighbour of the Fig. 2b mapping is worse.
        from repro.examples_support import (
            fig2_mapping_without_probabilities,
            fig2_problem,
        )
        from repro.synthesis.evaluator import evaluate_mapping

        problem = fig2_problem(period=1.0)
        config = SynthesisConfig()
        base = fig2_mapping_without_probabilities(problem)
        base_fitness = evaluate_mapping(
            problem, base, config
        ).metrics.fitness
        for index in range(len(base)):
            for alternative in base.candidates_at(index):
                if alternative == base.genes[index]:
                    continue
                neighbour = base.with_gene(index, alternative)
                impl = evaluate_mapping(problem, neighbour, config)
                assert impl.metrics.fitness > base_fitness

    def test_budget_zero_disables(self, two_mode_problem):
        synthesizer = MultiModeSynthesizer(
            two_mode_problem,
            SynthesisConfig(
                seed=5, local_search_budget_factor=0.0, **self.FAST
            ),
        )
        result = synthesizer.run()
        assert result.is_feasible or not result.is_feasible  # runs

    def test_negative_budget_rejected(self):
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError):
            SynthesisConfig(local_search_budget_factor=-1.0)
