"""GAState serialisation and bit-identical synthesizer resume."""

import json
import math
import random

import pytest

from repro.errors import SynthesisError
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer
from repro.synthesis.state import (
    GAState,
    decode_rng_state,
    encode_rng_state,
)

from tests.conftest import make_two_mode_problem


class TestRngEncoding:
    def test_round_trip_reproduces_the_stream(self):
        rng = random.Random(1234)
        rng.random()  # advance off the seed point
        encoded = json.loads(json.dumps(encode_rng_state(rng.getstate())))
        clone = random.Random()
        clone.setstate(decode_rng_state(encoded))
        assert [clone.random() for _ in range(10)] == [
            rng.random() for _ in range(10)
        ]


class TestGAStateSerialisation:
    def _state(self, **overrides):
        values = dict(
            generation=4,
            rng_state=random.Random(2).getstate(),
            population=[("a", "b"), ("b", "a")],
            best_genes=("a", "b"),
            best_fitness=3.5,
            stagnant=1,
            area_stall=0,
            timing_stall=2,
            transition_stall=0,
            history=[9.0, 5.0, 3.5],
            evaluations=40,
        )
        values.update(overrides)
        return GAState(**values)

    def test_json_round_trip(self):
        state = self._state()
        data = json.loads(json.dumps(state.to_dict()))
        restored = GAState.from_dict(data)
        assert restored == state
        assert restored.restore_rng().getstate() == state.rng_state

    def test_infinities_survive_json(self):
        state = self._state(
            best_genes=None,
            best_fitness=math.inf,
            history=[math.inf, 5.0],
        )
        data = json.loads(json.dumps(state.to_dict()))
        assert data["best_fitness"] is None  # valid JSON, no "Infinity"
        restored = GAState.from_dict(data)
        assert restored.best_fitness == math.inf
        assert restored.history == [math.inf, 5.0]
        assert restored.best_genes is None

    def test_unknown_version_rejected(self):
        data = self._state().to_dict()
        data["version"] = 99
        with pytest.raises(SynthesisError, match="version"):
            GAState.from_dict(data)


class TestSynthesizerResume:
    @pytest.fixture(scope="class")
    def problem(self):
        return make_two_mode_problem()

    def _config(self):
        return SynthesisConfig(
            population_size=10,
            max_generations=12,
            convergence_generations=8,
            seed=21,
        )

    def test_resume_is_bit_identical(self, problem):
        config = self._config()
        snapshots = []
        reference = MultiModeSynthesizer(problem, config).run(
            on_generation=snapshots.append
        )
        assert snapshots, "run emitted no generation snapshots"

        for snapshot in (snapshots[0], snapshots[len(snapshots) // 2]):
            # Serialise through JSON exactly like the checkpoint store.
            state = GAState.from_dict(
                json.loads(json.dumps(snapshot.to_dict()))
            )
            resumed = MultiModeSynthesizer(problem, config).run(
                resume=state
            )
            assert resumed.history == reference.history
            assert resumed.average_power == reference.average_power
            assert (
                resumed.best.mapping.genes == reference.best.mapping.genes
            )
            assert resumed.generations == reference.generations
            # evaluations may exceed the reference: the resumed run
            # starts with a cold evaluation cache (results cannot
            # change — evaluation is a pure function of the genome).
            assert resumed.evaluations >= snapshot.evaluations

    def test_snapshots_are_emitted_per_generation(self, problem):
        config = self._config()
        snapshots = []
        result = MultiModeSynthesizer(problem, config).run(
            on_generation=snapshots.append
        )
        generations = [s.generation for s in snapshots]
        assert generations == sorted(generations)
        assert len(set(generations)) == len(generations)
        # A converged run breaks out of the loop before the snapshot
        # point, so its final generation has no snapshot; a run that
        # exhausts max_generations snapshots every generation.
        assert generations[-1] in (
            result.generations,
            result.generations - 1,
        )
        assert all(s.evaluations > 0 for s in snapshots)

    def test_resume_rejects_mismatched_population_size(self, problem):
        config = self._config()
        snapshots = []
        MultiModeSynthesizer(problem, config).run(
            on_generation=snapshots.append
        )
        state = snapshots[0]
        bigger = config.with_updates(population_size=14)
        with pytest.raises(SynthesisError, match="population"):
            MultiModeSynthesizer(problem, bigger).run(resume=state)
