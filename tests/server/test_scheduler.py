"""Weighted fair scheduling and admission control."""

import pytest

from repro.errors import AdmissionError
from repro.obs.metrics import MetricsRegistry
from repro.server.jobs import JobState, ServerJob


def make_job(tenant, n, priority=0):
    return ServerJob(
        job_id=f"j{n:06d}-{tenant}",
        tenant=tenant,
        priority=priority,
        spec={"name": "t"},
    )


def make_scheduler(**kwargs):
    from repro.server.scheduler import Scheduler

    kwargs.setdefault("registry", MetricsRegistry())
    return Scheduler(**kwargs)


class TestOrdering:
    def test_single_tenant_is_fifo(self):
        scheduler = make_scheduler()
        jobs = [make_job("a", n) for n in range(3)]
        for job in jobs:
            scheduler.submit(job)
        picked = [scheduler.next_job() for _ in range(3)]
        assert picked == jobs
        assert scheduler.next_job() is None

    def test_priority_wins_within_a_tenant(self):
        scheduler = make_scheduler()
        low = make_job("a", 0, priority=0)
        high = make_job("a", 1, priority=5)
        scheduler.submit(low)
        scheduler.submit(high)
        assert scheduler.next_job() is high
        assert scheduler.next_job() is low

    def test_round_robin_with_equal_weights(self):
        scheduler = make_scheduler()
        for n in range(2):
            scheduler.submit(make_job("a", n))
            scheduler.submit(make_job("b", n + 10))
        order = [scheduler.next_job().tenant for _ in range(4)]
        assert order == ["a", "b", "a", "b"]

    def test_weights_bias_dispatch_share(self):
        scheduler = make_scheduler(weights={"big": 2.0}, quota=50)
        for n in range(20):
            scheduler.submit(make_job("big", n))
            scheduler.submit(make_job("small", n + 100))
        first_nine = [scheduler.next_job().tenant for _ in range(9)]
        # Weight 2 vs 1 -> "big" gets roughly two dispatches per one.
        assert first_nine.count("big") == 6
        assert first_nine.count("small") == 3


class TestFairnessAcceptance:
    def test_newcomer_is_not_starved_by_a_flood(self):
        # The ISSUE.md acceptance property: tenant A floods 10 jobs;
        # tenant B then submits one.  B must be dispatched within one
        # slot turnover, i.e. B is the very next pick.
        scheduler = make_scheduler(quota=20)
        flood = [make_job("a", n) for n in range(10)]
        for job in flood:
            scheduler.submit(job)
        assert scheduler.next_job() is flood[0]
        late = make_job("b", 99)
        scheduler.submit(late)
        assert scheduler.next_job() is late

    def test_newcomer_gets_no_credit_for_idle_past(self):
        # After B's single job, A must keep draining — B's virtual
        # time started at the floor, not at zero.
        scheduler = make_scheduler(quota=20)
        flood = [make_job("a", n) for n in range(10)]
        for job in flood:
            scheduler.submit(job)
        scheduler.next_job()
        scheduler.submit(make_job("b", 99))
        scheduler.next_job()  # b
        assert scheduler.next_job().tenant == "a"


class TestAdmission:
    def test_quota_rejection_is_typed_and_counted(self):
        registry = MetricsRegistry()
        scheduler = make_scheduler(quota=2, registry=registry)
        scheduler.submit(make_job("a", 0))
        scheduler.submit(make_job("a", 1))
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.submit(make_job("a", 2))
        assert excinfo.value.kind == "backpressure"
        assert excinfo.value.tenant == "a"
        assert (
            registry.counter_value(
                "server_admission_rejections_total", tenant="a"
            )
            == 1
        )

    def test_running_jobs_count_against_the_quota(self):
        scheduler = make_scheduler(quota=2)
        scheduler.submit(make_job("a", 0))
        scheduler.submit(make_job("a", 1))
        dispatched = scheduler.next_job()
        dispatched.state = JobState.RUNNING
        with pytest.raises(AdmissionError):
            scheduler.admit("a")
        # Releasing the slot frees quota again.
        scheduler.release(dispatched)
        scheduler.admit("a")

    def test_global_queue_bound_rejects_any_tenant(self):
        registry = MetricsRegistry()
        scheduler = make_scheduler(
            quota=100, queue_bound=3, registry=registry
        )
        for n in range(3):
            scheduler.submit(make_job(f"t{n}", n))
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.submit(make_job("late", 9))
        assert "queue is full" in str(excinfo.value)
        assert (
            registry.counter_value(
                "server_admission_rejections_total", tenant="late"
            )
            == 1
        )

    def test_enforce_false_bypasses_admission(self):
        scheduler = make_scheduler(quota=1)
        scheduler.submit(make_job("a", 0))
        scheduler.submit(make_job("a", 1), enforce=False)
        assert scheduler.depth == 2

    def test_rejected_job_is_not_enqueued(self):
        scheduler = make_scheduler(quota=1)
        scheduler.submit(make_job("a", 0))
        with pytest.raises(AdmissionError):
            scheduler.submit(make_job("a", 1))
        assert scheduler.depth == 1


class TestCancelAndGauges:
    def test_discarded_queued_job_is_skipped(self):
        scheduler = make_scheduler()
        first = make_job("a", 0)
        second = make_job("a", 1)
        scheduler.submit(first)
        scheduler.submit(second)
        first.state = JobState.CANCELLED
        scheduler.discard(first)
        assert scheduler.depth == 1
        assert scheduler.next_job() is second
        assert scheduler.next_job() is None

    def test_gauges_track_queue_and_running(self):
        registry = MetricsRegistry()
        scheduler = make_scheduler(registry=registry)
        job = make_job("a", 0)
        scheduler.submit(job)
        assert (
            registry.gauge_value("server_jobs_queued", tenant="a") == 1
        )
        assert registry.gauge_value("server_queue_depth") == 1
        scheduler.next_job()
        assert (
            registry.gauge_value("server_jobs_queued", tenant="a") == 0
        )
        assert (
            registry.gauge_value("server_jobs_running", tenant="a") == 1
        )
        scheduler.release(job)
        assert (
            registry.gauge_value("server_jobs_running", tenant="a") == 0
        )

    def test_submissions_are_counted(self):
        registry = MetricsRegistry()
        scheduler = make_scheduler(registry=registry)
        scheduler.submit(make_job("a", 0))
        assert (
            registry.counter_value(
                "server_jobs_submitted_total", tenant="a"
            )
            == 1
        )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quota": 0},
            {"queue_bound": 0},
            {"weights": {"a": 0.0}},
            {"weights": {"a": -1.0}},
        ],
    )
    def test_bad_knobs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_scheduler(**kwargs)
