"""Wire-protocol encoding, decoding and error mapping."""

import pytest

from repro.errors import AdmissionError, CampaignError, ServerError
from repro.server.protocol import (
    ERROR_KINDS,
    MAX_LINE_BYTES,
    decode_message,
    encode_message,
    error_for,
    error_response,
    ok_response,
    raise_for_error,
)


class TestEncodeDecode:
    def test_round_trip(self):
        payload = {"op": "submit", "tenant": "a", "spec": {"name": "t"}}
        line = encode_message(payload)
        assert line.endswith(b"\n")
        assert decode_message(line) == payload

    def test_decode_accepts_str_and_bytes(self):
        assert decode_message('{"op": "ping"}') == {"op": "ping"}
        assert decode_message(b'{"op": "ping"}\n') == {"op": "ping"}

    @pytest.mark.parametrize(
        "junk", [b"not json\n", b"[1, 2]\n", b'"just a string"\n']
    )
    def test_junk_is_a_typed_invalid_error(self, junk):
        with pytest.raises(ServerError) as excinfo:
            decode_message(junk)
        assert excinfo.value.kind == "invalid"

    def test_non_utf8_is_rejected(self):
        with pytest.raises(ServerError):
            decode_message(b"\xff\xfe{}\n")

    def test_oversize_line_is_rejected(self):
        with pytest.raises(ServerError):
            decode_message(b"x" * (MAX_LINE_BYTES + 1))


class TestResponses:
    def test_ok_response_carries_fields(self):
        assert ok_response(job_id="j1") == {"ok": True, "job_id": "j1"}

    def test_error_response_shape(self):
        response = error_response("not_found", "no job")
        assert response == {
            "ok": False,
            "error": {"kind": "not_found", "message": "no job"},
        }

    def test_unknown_kind_collapses_to_internal(self):
        assert (
            error_response("weird", "m")["error"]["kind"] == "internal"
        )


class TestErrorFor:
    def test_server_error_keeps_its_kind(self):
        for kind in ERROR_KINDS:
            response = error_for(ServerError("boom", kind=kind))
            assert response["error"]["kind"] == kind

    def test_admission_error_is_backpressure(self):
        response = error_for(AdmissionError("full", tenant="a"))
        assert response["error"]["kind"] == "backpressure"

    def test_campaign_error_maps_to_invalid(self):
        response = error_for(CampaignError("bad spec"))
        assert response["error"]["kind"] == "invalid"

    def test_anything_else_is_internal(self):
        response = error_for(RuntimeError("boom"))
        assert response["error"]["kind"] == "internal"
        assert "RuntimeError" in response["error"]["message"]


class TestRaiseForError:
    def test_ok_passes_through(self):
        assert raise_for_error({"ok": True, "x": 1}) == {
            "ok": True,
            "x": 1,
        }

    def test_backpressure_raises_admission_error(self):
        with pytest.raises(AdmissionError):
            raise_for_error(error_response("backpressure", "full"))

    def test_other_kinds_raise_server_error_with_kind(self):
        with pytest.raises(ServerError) as excinfo:
            raise_for_error(error_response("conflict", "nope"))
        assert excinfo.value.kind == "conflict"

    def test_malformed_error_still_raises(self):
        with pytest.raises(ServerError):
            raise_for_error({"ok": False})
