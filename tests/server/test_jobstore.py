"""JobStore durability and the job state machine."""

import json

import pytest

from repro.errors import ServerError
from repro.server.jobs import (
    TERMINAL_STATES,
    JobState,
    JobStore,
    ServerJob,
    validate_tenant,
)


def spec_payload(name="t"):
    return {"name": name, "instances": ["mul1"], "runs": 1}


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        self.now += 1.0
        return self.now


class TestTenantValidation:
    def test_accepts_reasonable_names(self):
        for name in ("a", "team-a", "alice.b_2", "X" * 64):
            assert validate_tenant(name) == name

    @pytest.mark.parametrize(
        "bad", ["", "-lead", ".lead", "has space", "a/b", "x" * 65]
    )
    def test_rejects_bad_names(self, bad):
        with pytest.raises(ServerError) as excinfo:
            validate_tenant(bad)
        assert excinfo.value.kind == "invalid"


class TestCreateAndReload:
    def test_create_persists_a_queued_record(self, tmp_path):
        store = JobStore(tmp_path, clock=FakeClock())
        job = store.create(spec_payload(), "alice", priority=2)
        assert job.state is JobState.QUEUED
        assert job.tenant == "alice"
        assert job.priority == 2
        on_disk = json.loads(
            (tmp_path / "jobs" / f"{job.job_id}.json").read_text()
        )
        assert on_disk["state"] == "queued"
        assert on_disk["spec"] == spec_payload()

    def test_job_ids_are_ordered_and_survive_restart(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.create(spec_payload(), "a")
        second = store.create(spec_payload(), "b")
        assert first.job_id < second.job_id
        # A new store on the same directory continues the sequence.
        reloaded = JobStore(tmp_path)
        third = reloaded.create(spec_payload(), "a")
        assert third.job_id > second.job_id
        assert len(reloaded.jobs()) == 3

    def test_reload_preserves_states(self, tmp_path):
        store = JobStore(tmp_path)
        done = store.create(spec_payload(), "a")
        store.transition(done, JobState.RUNNING)
        store.transition(done, JobState.DONE)
        queued = store.create(spec_payload(), "a")
        reloaded = JobStore(tmp_path)
        assert reloaded.get(done.job_id).state is JobState.DONE
        assert reloaded.get(queued.job_id).state is JobState.QUEUED

    def test_corrupt_record_is_a_typed_error(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(spec_payload(), "a")
        (tmp_path / "jobs" / f"{job.job_id}.json").write_text("{nope")
        with pytest.raises(ServerError) as excinfo:
            JobStore(tmp_path)
        assert excinfo.value.kind == "invalid"

    def test_unknown_job_is_not_found(self, tmp_path):
        with pytest.raises(ServerError) as excinfo:
            JobStore(tmp_path).get("j000001-ghost")
        assert excinfo.value.kind == "not_found"


class TestStateMachine:
    def test_happy_path_stamps_timestamps(self, tmp_path):
        store = JobStore(tmp_path, clock=FakeClock())
        job = store.create(spec_payload(), "a")
        store.transition(job, JobState.RUNNING)
        assert job.started_ts is not None
        store.transition(job, JobState.DONE)
        assert job.finished_ts is not None and job.terminal

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES,
                                                key=lambda s: s.value))
    def test_terminal_states_are_final(self, tmp_path, terminal):
        store = JobStore(tmp_path)
        job = store.create(spec_payload(), "a")
        if terminal is not JobState.CANCELLED:
            store.transition(job, JobState.RUNNING)
        store.transition(job, terminal)
        with pytest.raises(ServerError) as excinfo:
            store.transition(job, JobState.RUNNING)
        assert excinfo.value.kind == "conflict"

    def test_queued_cannot_jump_to_done(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(spec_payload(), "a")
        with pytest.raises(ServerError):
            store.transition(job, JobState.DONE)

    def test_recovery_requeue_clears_worker_and_counts(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(spec_payload(), "a")
        store.transition(job, JobState.RUNNING)
        job.worker_pid = 4321
        store.save(job)
        store.transition(job, JobState.QUEUED)
        assert job.worker_pid is None
        assert job.started_ts is None
        assert job.resumes == 1
        # And the requeue is durable.
        assert JobStore(tmp_path).get(job.job_id).resumes == 1


class TestQueries:
    def test_jobs_filters_by_tenant_and_state(self, tmp_path):
        store = JobStore(tmp_path)
        a1 = store.create(spec_payload(), "a")
        store.create(spec_payload(), "b")
        store.transition(a1, JobState.RUNNING)
        assert [j.job_id for j in store.jobs(tenant="a")] == [a1.job_id]
        running = store.jobs(states=[JobState.RUNNING])
        assert [j.job_id for j in running] == [a1.job_id]

    def test_counts_cover_all_states(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(spec_payload(), "a")
        counts = store.counts()
        assert counts["queued"] == 1
        assert set(counts) == {s.value for s in JobState}

    def test_run_dir_lives_under_runs(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(spec_payload(), "a")
        assert store.run_dir(job.job_id) == tmp_path / "runs" / job.job_id


class TestRecordRoundTrip:
    def test_to_from_dict_is_lossless(self):
        job = ServerJob(
            job_id="j000007-a",
            tenant="a",
            priority=3,
            spec=spec_payload(),
            state=JobState.RUNNING,
            submitted_ts=1.5,
            started_ts=2.5,
            worker_pid=99,
            resumes=2,
            cancel_requested=True,
        )
        assert ServerJob.from_dict(job.to_dict()) == job

    def test_future_version_is_rejected(self):
        record = ServerJob(
            job_id="j1-a", tenant="a", priority=0, spec={}
        ).to_dict()
        record["version"] = 999
        with pytest.raises(ServerError):
            ServerJob.from_dict(record)
