"""Crash resilience: ``kill -9`` the server mid-campaign, restart, resume.

The ISSUE acceptance scenario: a server killed hard with SIGKILL while
a job's campaign is mid-flight must, on restart over the same state
directory, reclaim the orphaned worker, requeue the job, and finish it
with results **bit-identical** to an uninterrupted run of the same
spec.  The durable pieces under test: atomic job records, campaign
checkpoints (with GA RNG state), and the worker orphan watchdog that
prevents two writers on one run directory.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.api import run_campaign
from repro.errors import ServerError
from repro.runtime.spec import CampaignSpec
from repro.server.client import ServerClient
from repro.server.jobs import JOBS_DIRNAME
from repro.server.service import SOCKET_FILENAME
from repro.server.workers import pid_alive, worker_env
from repro.synthesis.config import SynthesisConfig


def durable_spec():
    """Long enough to be killed mid-flight, checkpointing every gen."""
    return CampaignSpec(
        name="killable",
        instances=["mul1"],
        runs=1,
        base_seed=11,
        config=SynthesisConfig(
            population_size=10,
            max_generations=60,
            convergence_generations=60,
        ),
        checkpoint_every=1,
    )


def start_server(state_dir):
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--state",
            str(state_dir),
            "--slots",
            "1",
        ],
        env=worker_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for_ping(client, process, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"server died early (code {process.returncode})"
            )
        try:
            client.ping()
            return
        except ServerError:
            time.sleep(0.05)
    raise AssertionError("server socket never came up")


def wait_for_checkpoint(run_dir, timeout=60.0):
    """Block until the job's campaign wrote at least one checkpoint."""
    events = pathlib.Path(run_dir) / "events.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if events.exists():
            for line in events.read_text().splitlines():
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if event.get("event") == "checkpointed":
                    return event
        time.sleep(0.05)
    raise AssertionError("no checkpoint appeared in time")


def wait_for_pid_death(pid, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not pid_alive(pid):
            return
        time.sleep(0.1)
    raise AssertionError(f"pid {pid} still alive after {timeout:.0f}s")


@pytest.mark.slow
def test_kill_dash_nine_then_restart_resumes_bit_identically(tmp_path):
    spec = durable_spec()
    reference = run_campaign(spec, run_dir=tmp_path / "direct")
    assert not reference.failures

    state_dir = tmp_path / "state"
    state_dir.mkdir()
    client = ServerClient(state_dir / SOCKET_FILENAME, timeout=30.0)

    # Phase 1: serve, submit, let the campaign checkpoint, kill -9.
    server = start_server(state_dir)
    try:
        wait_for_ping(client, server)
        submitted = client.submit(spec, tenant="crash")
        job_id = submitted["job_id"]
        client.wait_until_running(job_id, timeout=60.0)
        wait_for_checkpoint(state_dir / "runs" / job_id)
    except BaseException:
        server.kill()
        server.wait()
        raise
    os.kill(server.pid, signal.SIGKILL)
    server.wait()

    # The durable record still says "running" — nobody was alive to
    # transition it — and names the orphaned worker's pid.
    record = json.loads(
        (state_dir / JOBS_DIRNAME / f"{job_id}.json").read_text()
    )
    assert record["state"] == "running"
    worker_pid = record["worker_pid"]
    assert worker_pid is not None
    # The orphan watchdog notices the dead parent and stops the worker
    # (its poll period is 0.5 s) — no second writer can race the
    # restarted server's own worker on this run directory.
    wait_for_pid_death(worker_pid)

    # Phase 2: restart on the same state directory; the job must be
    # requeued, resumed from its checkpoint, and finished.
    server = start_server(state_dir)
    try:
        wait_for_ping(client, server)
        job = client.wait(job_id, timeout=180.0)
        assert job["state"] == "done", job.get("error")
        assert job["resumes"] >= 1
        served = client.result(job_id)["results"]
    finally:
        try:
            client.shutdown()
            server.wait(timeout=15)
        except Exception:
            server.kill()
            server.wait()

    # Bit-identical to the never-interrupted reference run, on the
    # same contract the campaign-resume tests pin: the synthesis
    # outcome (power, genes, fitness history, generation count).  The
    # ``evaluations`` counter is excluded — it reflects in-memory
    # cache warmth, which a process restart legitimately resets.
    for campaign_job in spec.jobs():
        got = served[campaign_job.job_id]
        expected = reference.results[campaign_job.job_id]
        for field in ("power", "best_genes", "history", "generations"):
            assert got[field] == getattr(expected, field), field
