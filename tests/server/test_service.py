"""End-to-end service tests: a real server on a real Unix socket.

The server runs on a background thread inside the test process (with
its own metrics registry); its workers are genuine subprocesses, so
these tests exercise the full submit -> schedule -> worker -> result
path including the durable job records on disk.
"""

import contextlib
import json
import threading
import time

import pytest

from repro.api import run_campaign
from repro.errors import AdmissionError, ServerError
from repro.obs.metrics import MetricsRegistry
from repro.runtime.spec import CampaignSpec
from repro.server.client import ServerClient
from repro.server.service import CampaignServer
from repro.synthesis.config import SynthesisConfig


def quick_spec(name="served", seed=7, **overrides):
    values = dict(
        name=name,
        instances=["mul1"],
        runs=1,
        base_seed=seed,
        config=SynthesisConfig(
            population_size=8,
            max_generations=6,
            convergence_generations=4,
        ),
        checkpoint_every=2,
    )
    values.update(overrides)
    return CampaignSpec(**values)


def slow_spec(**overrides):
    """A job that runs long enough to still be up when we poke it."""
    overrides.setdefault(
        "config",
        SynthesisConfig(
            population_size=10,
            max_generations=500,
            convergence_generations=500,
        ),
    )
    overrides.setdefault("checkpoint_every", 1)
    return quick_spec(name="slow", **overrides)


@contextlib.contextmanager
def running_server(state_dir, **kwargs):
    kwargs.setdefault("slots", 1)
    kwargs.setdefault("registry", MetricsRegistry())
    server = CampaignServer(state_dir, **kwargs)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    client = ServerClient(server.socket_path, timeout=30.0)
    deadline = time.monotonic() + 15.0
    while True:
        try:
            client.ping()
            break
        except ServerError:
            if time.monotonic() >= deadline:
                raise RuntimeError("server did not come up")
            time.sleep(0.05)
    try:
        yield server, client
    finally:
        with contextlib.suppress(ServerError):
            client.shutdown()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "server thread failed to stop"


class TestLifecycle:
    def test_ping_and_overview_status(self, tmp_path):
        with running_server(tmp_path / "state") as (server, client):
            pong = client.ping()
            assert pong["pong"] is True
            overview = client.status()
            assert overview["slots"] == {"total": 1, "busy": 0}
            assert overview["jobs"]["queued"] == 0
            assert overview["queue_depth"] == 0

    def test_shutdown_removes_socket_and_writes_summary(self, tmp_path):
        state = tmp_path / "state"
        with running_server(state) as (server, client):
            pass
        assert not server.socket_path.exists()
        summary = json.loads((state / "run_summary.json").read_text())
        assert summary["kind"] == "server"
        assert "metrics" in summary


class TestSubmitAndRun:
    def test_served_job_matches_direct_campaign(self, tmp_path):
        spec = quick_spec()
        with running_server(tmp_path / "state") as (server, client):
            submitted = client.submit(spec, tenant="alice")
            assert submitted["state"] == "queued"
            job = client.wait(submitted["job_id"], timeout=120.0)
            assert job["state"] == "done", job.get("error")
            served = client.result(submitted["job_id"])
        reference = run_campaign(spec, run_dir=tmp_path / "direct")
        for campaign_job in spec.jobs():
            got = served["results"][campaign_job.job_id]
            expected = reference.results[campaign_job.job_id]
            for field in ("power", "best_genes", "history",
                          "generations", "evaluations"):
                assert got[field] == getattr(expected, field), field

    def test_stream_replays_campaign_events(self, tmp_path):
        with running_server(tmp_path / "state") as (server, client):
            submitted = client.submit(quick_spec(), tenant="alice")
            client.wait(submitted["job_id"], timeout=120.0)
            events = list(client.stream(submitted["job_id"]))
        kinds = [event.get("event") for event in events]
        assert "campaign_started" in kinds
        assert "campaign_finished" in kinds
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)

    def test_latency_and_completion_metrics_recorded(self, tmp_path):
        registry = MetricsRegistry()
        state = tmp_path / "state"
        with running_server(state, registry=registry) as (
            server,
            client,
        ):
            submitted = client.submit(quick_spec(), tenant="alice")
            client.wait(submitted["job_id"], timeout=120.0)
        assert (
            registry.counter_value(
                "server_jobs_completed_total", state="done"
            )
            == 1
        )
        wait_hist = registry.histogram_data(
            "server_job_wait_seconds", tenant="alice"
        )
        run_hist = registry.histogram_data(
            "server_job_run_seconds", tenant="alice"
        )
        assert wait_hist.count == 1 and run_hist.count == 1
        assert registry.counter_value("server_slot_busy_seconds_total") > 0
        summary = json.loads((state / "run_summary.json").read_text())
        counters = summary["metrics"]["counters"]
        assert counters["server_jobs_completed_total{state=done}"] == 1


class TestErrors:
    def test_invalid_spec_is_a_typed_invalid_error(self, tmp_path):
        with running_server(tmp_path / "state") as (server, client):
            with pytest.raises(ServerError) as excinfo:
                client.submit({"name": "broken"})
            assert excinfo.value.kind == "invalid"

    def test_bad_tenant_rejected_before_anything_persists(self, tmp_path):
        state = tmp_path / "state"
        with running_server(state) as (server, client):
            with pytest.raises(ServerError) as excinfo:
                client.submit(quick_spec(), tenant="has space")
            assert excinfo.value.kind == "invalid"
            assert client.jobs() == []

    def test_unknown_job_is_not_found(self, tmp_path):
        with running_server(tmp_path / "state") as (server, client):
            with pytest.raises(ServerError) as excinfo:
                client.status("j000042-ghost")
            assert excinfo.value.kind == "not_found"

    def test_result_of_queued_job_is_a_conflict(self, tmp_path):
        with running_server(tmp_path / "state") as (server, client):
            first = client.submit(slow_spec(), tenant="a")
            second = client.submit(quick_spec(), tenant="a")
            with pytest.raises(ServerError) as excinfo:
                client.result(second["job_id"])
            assert excinfo.value.kind == "conflict"


class TestAdmissionControl:
    def test_quota_rejection_reaches_the_client_typed(self, tmp_path):
        registry = MetricsRegistry()
        with running_server(
            tmp_path / "state", tenant_quota=1, registry=registry
        ) as (server, client):
            client.submit(slow_spec(), tenant="flood")
            with pytest.raises(AdmissionError) as excinfo:
                client.submit(quick_spec(), tenant="flood")
            assert excinfo.value.kind == "backpressure"
            assert (
                registry.counter_value(
                    "server_admission_rejections_total", tenant="flood"
                )
                == 1
            )
            # Another tenant is unaffected by flood's quota.
            other = client.submit(quick_spec(), tenant="calm")
            assert other["state"] == "queued"


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        with running_server(tmp_path / "state") as (server, client):
            client.submit(slow_spec(), tenant="a")
            queued = client.submit(quick_spec(), tenant="a")
            response = client.cancel(queued["job_id"])
            assert response["state"] == "cancelled"
            job = client.status(queued["job_id"])["job"]
            assert job["state"] == "cancelled"
            with pytest.raises(ServerError) as excinfo:
                client.cancel(queued["job_id"])
            assert excinfo.value.kind == "conflict"

    def test_cancel_running_job_stops_its_worker(self, tmp_path):
        with running_server(tmp_path / "state") as (server, client):
            submitted = client.submit(slow_spec(), tenant="a")
            client.wait_until_running(submitted["job_id"], timeout=60.0)
            client.cancel(submitted["job_id"])
            job = client.wait(submitted["job_id"], timeout=60.0)
            assert job["state"] == "cancelled"
