"""Tests for JSON serialisation of problems and mappings."""

import json
import math
import random

import pytest

from repro.errors import SpecificationError
from repro.io import (
    load_problem,
    mapping_from_dict,
    mapping_to_dict,
    problem_from_dict,
    problem_to_dict,
    save_problem,
)
from repro.mapping.encoding import MappingString

from tests.conftest import make_parallel_hw_problem, make_two_mode_problem


class TestProblemRoundtrip:
    def test_roundtrip_preserves_structure(self):
        original = make_two_mode_problem()
        rebuilt = problem_from_dict(problem_to_dict(original))
        assert rebuilt.name == original.name
        assert rebuilt.omsm.mode_names == original.omsm.mode_names
        assert (
            rebuilt.omsm.probability_vector()
            == original.omsm.probability_vector()
        )
        assert rebuilt.architecture.pe_names == (
            original.architecture.pe_names
        )
        assert len(rebuilt.technology) == len(original.technology)
        assert rebuilt.genome_length() == original.genome_length()

    def test_roundtrip_preserves_task_graphs(self):
        original = make_parallel_hw_problem()
        rebuilt = problem_from_dict(problem_to_dict(original))
        for mode in original.omsm.modes:
            rebuilt_graph = rebuilt.omsm.mode(mode.name).task_graph
            assert rebuilt_graph.task_names == mode.task_graph.task_names
            assert [e.key for e in rebuilt_graph.edges] == [
                e.key for e in mode.task_graph.edges
            ]

    def test_roundtrip_preserves_dvs_settings(self):
        original = make_two_mode_problem(dvs_hw=True)
        rebuilt = problem_from_dict(problem_to_dict(original))
        for pe in original.architecture.pes:
            twin = rebuilt.architecture.pe(pe.name)
            assert twin.voltage_levels == pe.voltage_levels
            assert twin.threshold_voltage == pe.threshold_voltage

    def test_infinite_transition_limit(self):

        original = make_two_mode_problem(transition_limit=math.inf)
        data = problem_to_dict(original)
        assert data["transitions"][0]["max_time"] is None
        rebuilt = problem_from_dict(data)
        assert math.isinf(rebuilt.omsm.transition("O1", "O2").max_time)

    def test_synthesis_on_rebuilt_problem(self):
        from repro.synthesis import SynthesisConfig, synthesize

        rebuilt = problem_from_dict(
            problem_to_dict(make_two_mode_problem())
        )
        result = synthesize(
            rebuilt,
            SynthesisConfig(
                seed=1,
                population_size=10,
                max_generations=10,
                convergence_generations=4,
            ),
        )
        assert result.average_power > 0

    def test_file_roundtrip(self, tmp_path):
        original = make_two_mode_problem()
        path = tmp_path / "problem.json"
        save_problem(original, path)
        loaded = load_problem(path)
        assert loaded.name == original.name
        # The file is valid, indented JSON.
        parsed = json.loads(path.read_text())
        assert parsed["schema"] == 1

    def test_bad_schema_rejected(self):
        data = problem_to_dict(make_two_mode_problem())
        data["schema"] = 99
        with pytest.raises(SpecificationError, match="schema"):
            problem_from_dict(data)

    def test_tampered_file_fails_validation(self):
        data = problem_to_dict(make_two_mode_problem())
        data["modes"][0]["probability"] = 0.5  # no longer sums to 1
        with pytest.raises(SpecificationError):
            problem_from_dict(data)


class TestMappingRoundtrip:
    def test_roundtrip(self):
        problem = make_two_mode_problem()
        mapping = MappingString.random(problem, random.Random(2))
        rebuilt = mapping_from_dict(problem, mapping_to_dict(mapping))
        assert rebuilt == mapping

    def test_wrong_problem_rejected(self):
        problem = make_two_mode_problem()
        other = make_parallel_hw_problem()
        mapping = MappingString.random(problem, random.Random(2))
        data = mapping_to_dict(mapping)
        with pytest.raises(SpecificationError, match="saved for"):
            mapping_from_dict(other, data)

    def test_bad_schema_rejected(self):
        problem = make_two_mode_problem()
        mapping = MappingString.random(problem, random.Random(2))
        data = mapping_to_dict(mapping)
        data["schema"] = 0
        with pytest.raises(SpecificationError):
            mapping_from_dict(problem, data)


class TestResultRoundtrip:
    """save_result/load_result with the stable mode_powers field."""

    @pytest.fixture(scope="class")
    def problem(self):
        return make_two_mode_problem()

    @pytest.fixture(scope="class")
    def result(self, problem):
        from repro.synthesis.config import SynthesisConfig
        from repro.synthesis.cosynthesis import MultiModeSynthesizer

        config = SynthesisConfig(
            population_size=10, max_generations=10, seed=2
        )
        return MultiModeSynthesizer(problem, config).run()

    def test_mode_powers_are_part_of_the_schema(self, result):
        from repro.io import result_to_dict

        data = result_to_dict(result)
        assert set(data["mode_powers"]) == {"O1", "O2"}
        for entry in data["mode_powers"].values():
            assert set(entry) == {"dynamic", "static"}
        # Consistency with Equation (1): Ψ-weighted sum of the
        # per-mode totals is the aggregate power.
        psi = data["psi"]
        total = sum(
            (entry["dynamic"] + entry["static"]) * psi[mode]
            for mode, entry in data["mode_powers"].items()
        )
        assert total == pytest.approx(data["average_power"], abs=1e-12)

    def test_roundtrip_is_exact(self, problem, result, tmp_path):
        from repro.io import load_result, save_result

        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(problem, path)
        assert loaded.best.mapping.genes == result.best.mapping.genes
        assert loaded.best.metrics.average_power == pytest.approx(
            result.best.metrics.average_power, abs=0
        )
        assert loaded.mode_powers == result.mode_powers
        assert loaded.generations == result.generations
        assert loaded.evaluations == result.evaluations
        assert loaded.history == result.history

    def test_wrong_problem_rejected(self, result, tmp_path):
        from repro.io import load_result, save_result

        path = tmp_path / "result.json"
        save_result(result, path)
        other = make_parallel_hw_problem()
        with pytest.raises(SpecificationError, match="saved for"):
            load_result(other, path)

    def test_tampered_mode_powers_rejected(self, problem, result, tmp_path):
        from repro.io import result_from_dict, result_to_dict

        data = result_to_dict(result)
        data["mode_powers"]["O1"]["dynamic"] += 1e-3
        with pytest.raises(SpecificationError, match="disagree"):
            result_from_dict(problem, data)

    def test_unknown_schema_rejected(self, problem, result):
        from repro.io import result_from_dict, result_to_dict

        data = result_to_dict(result)
        data["schema"] = "v999"
        with pytest.raises(SpecificationError, match="schema"):
            result_from_dict(problem, data)
