"""Tests for implementation containers and metrics."""

import pytest

from repro.mapping.encoding import MappingString
from repro.mapping.implementation import ImplementationMetrics
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.evaluator import evaluate_mapping

from tests.conftest import make_two_mode_problem


def metrics(**overrides):
    base = dict(
        average_power=1e-3,
        dynamic_power={"O1": 5e-4, "O2": 1e-3},
        static_power={"O1": 1e-4, "O2": 2e-4},
        timing_violation={},
        area_violation={},
        transition_violation={},
        fitness=1e-3,
    )
    base.update(overrides)
    return ImplementationMetrics(**base)


class TestMetrics:
    def test_feasible_flags(self):
        m = metrics()
        assert m.is_feasible
        assert m.is_timing_feasible
        assert m.is_area_feasible
        assert m.is_transition_feasible

    def test_timing_violation_breaks_feasibility(self):
        m = metrics(timing_violation={"O1": {"t1": 0.01}})
        assert not m.is_timing_feasible
        assert not m.is_feasible
        assert m.is_area_feasible

    def test_area_violation_breaks_feasibility(self):
        m = metrics(area_violation={"PE1": 100.0})
        assert not m.is_area_feasible
        assert not m.is_feasible

    def test_transition_violation_breaks_feasibility(self):
        m = metrics(transition_violation={("O1", "O2"): 1.5})
        assert not m.is_transition_feasible
        assert not m.is_feasible

    def test_mode_power(self):
        m = metrics()
        assert m.mode_power("O1") == pytest.approx(6e-4)
        assert m.mode_power("O2") == pytest.approx(1.2e-3)


class TestImplementation:
    def setup_method(self):
        self.problem = make_two_mode_problem()
        genome = MappingString(
            self.problem,
            ["PE0", "PE1", "PE0", "PE0", "PE0", "PE0", "PE0"],
        )
        self.impl = evaluate_mapping(
            self.problem, genome, SynthesisConfig()
        )

    def test_schedule_accessor(self):
        assert self.impl.schedule("O1").mode_name == "O1"

    def test_active_components(self):
        active = self.impl.active_components("O1")
        assert "PE0" in active
        assert "PE1" in active
        assert "CL0" in active

    def test_shutdown_in_unused_mode(self):
        assert self.impl.shut_down_components("O2") == ("PE1", "CL0")

    def test_summary_mentions_each_mode(self):
        text = self.impl.summary()
        assert "mode O1" in text
        assert "mode O2" in text
        assert "mW" in text
