"""Tests for the streaming Ψ estimator."""

import math
import random

import pytest

from repro.adaptive.estimator import PsiEstimator
from repro.errors import SpecificationError
from repro.simulation.markov import ModeProcess
from repro.simulation.trace import generate_trace

from tests.conftest import make_two_mode_problem


class TestConstruction:
    def test_requires_modes(self):
        with pytest.raises(SpecificationError, match="at least one"):
            PsiEstimator([], half_life=1.0)

    def test_rejects_non_positive_half_life(self):
        with pytest.raises(SpecificationError, match="half_life"):
            PsiEstimator(["A"], half_life=0.0)

    def test_rejects_negative_prior_weight(self):
        with pytest.raises(SpecificationError, match="prior_weight"):
            PsiEstimator(
                ["A"], half_life=1.0, prior={"A": 1.0}, prior_weight=-1
            )

    def test_rejects_incomplete_prior(self):
        with pytest.raises(SpecificationError, match="misses"):
            PsiEstimator(
                ["A", "B"], half_life=1.0, prior={"A": 1.0},
                prior_weight=1.0,
            )

    def test_tau_is_half_life_over_ln2(self):
        estimator = PsiEstimator(["A"], half_life=math.log(2.0))
        assert estimator.tau == pytest.approx(1.0)


class TestObserve:
    def test_unknown_mode_rejected(self):
        estimator = PsiEstimator(["A"], half_life=1.0)
        with pytest.raises(SpecificationError, match="no mode"):
            estimator.observe("B", 1.0)

    def test_negative_dwell_rejected(self):
        estimator = PsiEstimator(["A"], half_life=1.0)
        with pytest.raises(SpecificationError, match="non-negative"):
            estimator.observe("A", -1.0)

    def test_zero_dwell_is_a_no_op(self):
        estimator = PsiEstimator(["A", "B"], half_life=1.0)
        estimator.observe("A", 0.0)
        assert estimator.observed_time == 0.0
        assert estimator.observations == 0

    def test_single_mode_estimates_to_one(self):
        estimator = PsiEstimator(["A", "B"], half_life=1.0)
        estimator.observe("A", 5.0)
        estimate = estimator.estimate()
        assert estimate["A"] == pytest.approx(1.0)
        assert estimate["B"] == pytest.approx(0.0)

    def test_exact_alternation_converges_to_duty_cycle(self):
        # 30 % A / 70 % B alternation: the steady-state estimate is the
        # duty cycle, independent of the forgetting constant.
        estimator = PsiEstimator(["A", "B"], half_life=5.0)
        for _ in range(400):
            estimator.observe("A", 0.3)
            estimator.observe("B", 0.7)
        estimate = estimator.estimate()
        assert estimate["A"] == pytest.approx(0.3, abs=0.02)
        assert estimate["B"] == pytest.approx(0.7, abs=0.02)

    def test_forgetting_follows_a_regime_change(self):
        # After many half-lives in the new regime, the old regime's
        # mass is forgotten.
        estimator = PsiEstimator(["A", "B"], half_life=2.0)
        for _ in range(100):
            estimator.observe("A", 1.0)
        for _ in range(100):
            estimator.observe("B", 1.0)
        estimate = estimator.estimate()
        assert estimate["B"] > 0.99

    def test_weights_decay_exactly_exponentially(self):
        estimator = PsiEstimator(["A", "B"], half_life=1.0)
        estimator.observe("A", 1.0)
        before = estimator.estimate()["A"]
        assert before == pytest.approx(1.0)
        # One half-life spent entirely in B: A's weight halves while
        # B accumulates tau * (1 - 1/2).
        estimator.observe("B", 1.0)
        tau = estimator.tau
        expected_a = tau * 0.5 * 0.5
        expected_b = tau * 0.5
        estimate = estimator.estimate()
        assert estimate["A"] == pytest.approx(
            expected_a / (expected_a + expected_b)
        )


class TestPrior:
    def test_empty_estimator_returns_prior(self):
        prior = {"A": 0.8, "B": 0.2}
        estimator = PsiEstimator(
            ["A", "B"], half_life=1.0, prior=prior, prior_weight=3.0
        )
        assert estimator.estimate() == pytest.approx(prior)

    def test_empty_estimator_without_prior_is_uniform(self):
        estimator = PsiEstimator(["A", "B"], half_life=1.0)
        assert estimator.estimate() == pytest.approx(
            {"A": 0.5, "B": 0.5}
        )

    def test_prior_fades_as_observation_accumulates(self):
        prior = {"A": 1.0, "B": 0.0}
        estimator = PsiEstimator(
            ["A", "B"], half_life=1.0, prior=prior, prior_weight=0.5
        )
        estimator.observe("B", 0.2)
        early_b = estimator.estimate()["B"]
        for _ in range(50):
            estimator.observe("B", 1.0)
        late_b = estimator.estimate()["B"]
        assert early_b < late_b
        assert late_b > 0.9


class TestConfidence:
    def test_starts_at_zero(self):
        estimator = PsiEstimator(["A"], half_life=1.0)
        assert estimator.confidence() == 0.0

    def test_half_after_tau(self):
        estimator = PsiEstimator(["A"], half_life=math.log(2.0))
        estimator.observe("A", 1.0)  # exactly tau seconds
        assert estimator.confidence() == pytest.approx(1 - math.exp(-1))

    def test_monotone_and_bounded(self):
        estimator = PsiEstimator(["A"], half_life=2.0)
        previous = 0.0
        for _ in range(30):
            estimator.observe("A", 1.0)
            value = estimator.confidence()
            assert previous <= value < 1.0
            previous = value


class TestTraceFeeding:
    def test_observe_trace_accepts_visits_and_pairs(self):
        problem = make_two_mode_problem()
        process = ModeProcess(problem.omsm)
        visits = generate_trace(
            process, horizon=20.0, rng=random.Random(0)
        )
        from_visits = PsiEstimator(problem.omsm.mode_names, half_life=5.0)
        from_visits.observe_trace(visits)
        from_pairs = PsiEstimator(problem.omsm.mode_names, half_life=5.0)
        from_pairs.observe_trace(
            [(v.mode, v.duration) for v in visits]
        )
        assert from_visits.estimate() == pytest.approx(
            from_pairs.estimate()
        )
        assert from_visits.observed_time == pytest.approx(
            from_pairs.observed_time
        )

    def test_long_trace_estimate_approaches_psi(self):
        problem = make_two_mode_problem()
        process = ModeProcess(problem.omsm)
        visits = generate_trace(
            process, horizon=2000.0, rng=random.Random(7)
        )
        estimator = PsiEstimator(
            problem.omsm.mode_names, half_life=500.0
        )
        estimator.observe_trace(visits)
        psi = problem.omsm.probability_vector()
        estimate = estimator.estimate()
        for mode, value in psi.items():
            assert estimate[mode] == pytest.approx(value, abs=0.08)


class TestReset:
    def test_reset_clears_observations_keeps_prior(self):
        prior = {"A": 0.9, "B": 0.1}
        estimator = PsiEstimator(
            ["A", "B"], half_life=1.0, prior=prior, prior_weight=1.0
        )
        estimator.observe("B", 10.0)
        estimator.reset()
        assert estimator.observed_time == 0.0
        assert estimator.confidence() == 0.0
        assert estimator.estimate() == pytest.approx(prior)
