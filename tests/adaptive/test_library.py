"""Tests for the design library — above all, exact Ψ re-scoring."""

import random

import pytest

from repro.adaptive.library import (
    DesignLibrary,
    DesignRecord,
    psi_distance,
)
from repro.errors import SpecificationError
from repro.mapping.encoding import MappingString
from repro.power.energy_model import average_power
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer
from repro.synthesis.evaluator import evaluate_mapping

from tests.conftest import make_two_mode_problem


@pytest.fixture(scope="module")
def problem():
    return make_two_mode_problem()


@pytest.fixture(scope="module")
def result(problem):
    config = SynthesisConfig(
        population_size=10, max_generations=12, seed=3
    )
    return MultiModeSynthesizer(problem, config).run()


@pytest.fixture
def record(result):
    return DesignRecord.from_result("design-time", result)


def random_psi(modes, rng):
    weights = [rng.random() + 1e-3 for _ in modes]
    total = sum(weights)
    return {mode: w / total for mode, w in zip(modes, weights)}


class TestExactRescoring:
    def test_score_equals_average_power_at_true_psi(
        self, problem, result, record
    ):
        psi = problem.omsm.probability_vector()
        assert abs(record.score(psi) - result.average_power) <= 1e-9

    def test_score_equals_fresh_evaluator_under_any_psi(
        self, problem, result, record
    ):
        """The acceptance property: exact under arbitrary Ψ.

        For each random Ψ the stored design is re-scored by the
        library AND freshly re-evaluated (decode → schedule → DVS →
        Equation 1) against the re-targeted problem; the two must
        agree to 1e-9.
        """
        rng = random.Random(42)
        modes = problem.omsm.mode_names
        for _ in range(25):
            psi = random_psi(modes, rng)
            # Direct Equation (1) over the existing schedules...
            direct = average_power(problem, result.best.schedules, psi)
            assert abs(record.score(psi) - direct) <= 1e-9
            # ...and a full re-evaluation against the re-targeted
            # problem (evaluation is pure; schedules are Ψ-independent).
            retargeted = problem.with_probabilities(psi)
            implementation = evaluate_mapping(
                retargeted,
                MappingString(retargeted, record.genes),
                SynthesisConfig(),
            )
            assert implementation is not None
            assert (
                abs(record.score(psi) - implementation.metrics.average_power)
                <= 1e-9
            )

    def test_score_is_linear_in_psi(self, problem, record):
        # p̄(λa + (1-λ)b) == λ p̄(a) + (1-λ) p̄(b) — Equation 1 linearity.
        a = {"O1": 1.0, "O2": 0.0}
        b = {"O1": 0.0, "O2": 1.0}
        for lam in (0.0, 0.25, 0.5, 0.9, 1.0):
            mixed = {
                mode: lam * a[mode] + (1 - lam) * b[mode]
                for mode in a
            }
            expected = lam * record.score(a) + (1 - lam) * record.score(b)
            assert record.score(mixed) == pytest.approx(
                expected, abs=1e-12
            )

    def test_score_rejects_incomplete_psi(self, record):
        with pytest.raises(SpecificationError, match="misses"):
            record.score({"O1": 1.0})


class TestPsiDistance:
    def test_identical_is_zero(self):
        psi = {"A": 0.3, "B": 0.7}
        assert psi_distance(psi, psi) == 0.0

    def test_disjoint_is_one(self):
        assert psi_distance({"A": 1.0, "B": 0.0}, {"A": 0.0, "B": 1.0}) == 1.0

    def test_symmetric(self):
        a = {"A": 0.2, "B": 0.8}
        b = {"A": 0.6, "B": 0.4}
        assert psi_distance(a, b) == psi_distance(b, a)


class TestQueries:
    def make_record(self, name, powers, psi):
        return DesignRecord(
            name=name,
            genes=("PE0",),
            psi=psi,
            mode_powers={
                mode: {"dynamic": value, "static": 0.0}
                for mode, value in powers.items()
            },
        )

    def test_best_picks_minimal_power(self):
        library = DesignLibrary(
            [
                self.make_record(
                    "a", {"O1": 1.0, "O2": 0.1}, {"O1": 0.1, "O2": 0.9}
                ),
                self.make_record(
                    "b", {"O1": 0.1, "O2": 1.0}, {"O1": 0.9, "O2": 0.1}
                ),
            ]
        )
        best, score = library.best({"O1": 0.9, "O2": 0.1})
        assert best.name == "b"
        assert score == pytest.approx(0.9 * 0.1 + 0.1 * 1.0)
        best, _ = library.best({"O1": 0.1, "O2": 0.9})
        assert best.name == "a"

    def test_best_skips_infeasible_records(self):
        good = self.make_record("good", {"O1": 5.0, "O2": 5.0}, {"O1": 0.5, "O2": 0.5})
        cheat = self.make_record("cheat", {"O1": 0.1, "O2": 0.1}, {"O1": 0.5, "O2": 0.5})
        cheat.feasible = False
        library = DesignLibrary([good, cheat])
        best, _ = library.best({"O1": 0.5, "O2": 0.5})
        assert best.name == "good"
        best, _ = library.best(
            {"O1": 0.5, "O2": 0.5}, feasible_only=False
        )
        assert best.name == "cheat"

    def test_best_on_empty_library_raises(self):
        with pytest.raises(SpecificationError, match="no"):
            DesignLibrary().best({"O1": 1.0})

    def test_best_ties_break_by_insertion_order(self):
        first = self.make_record("first", {"O1": 1.0, "O2": 1.0}, {"O1": 0.5, "O2": 0.5})
        clone = self.make_record("clone", {"O1": 1.0, "O2": 1.0}, {"O1": 0.5, "O2": 0.5})
        best, _ = DesignLibrary([first, clone]).best({"O1": 0.5, "O2": 0.5})
        assert best.name == "first"

    def test_nearest_orders_by_distance(self):
        library = DesignLibrary(
            [
                self.make_record("far", {"O1": 1.0, "O2": 1.0}, {"O1": 0.9, "O2": 0.1}),
                self.make_record("near", {"O1": 1.0, "O2": 1.0}, {"O1": 0.2, "O2": 0.8}),
            ]
        )
        ranked = library.nearest({"O1": 0.1, "O2": 0.9}, count=2)
        assert [r.name for r in ranked] == ["near", "far"]
        assert len(library.nearest({"O1": 0.1, "O2": 0.9}, count=1)) == 1

    def test_lower_bound_combines_modes_across_records(self):
        library = DesignLibrary(
            [
                self.make_record("a", {"O1": 1.0, "O2": 5.0}, {"O1": 0.5, "O2": 0.5}),
                self.make_record("b", {"O1": 5.0, "O2": 1.0}, {"O1": 0.5, "O2": 0.5}),
            ]
        )
        psi = {"O1": 0.5, "O2": 0.5}
        bound = library.lower_bound(psi)
        assert bound == pytest.approx(0.5 * 1.0 + 0.5 * 1.0)
        # Strictly below each individual design's score.
        for record in library.records:
            assert bound < record.score(psi)

    def test_readding_a_name_replaces_the_record(self):
        library = DesignLibrary(
            [self.make_record("x", {"O1": 1.0, "O2": 1.0}, {"O1": 0.5, "O2": 0.5})]
        )
        library.add(
            self.make_record("x", {"O1": 2.0, "O2": 2.0}, {"O1": 0.5, "O2": 0.5})
        )
        assert len(library) == 1
        assert library.get("x").mode_power("O1") == 2.0


class TestPersistence:
    def test_roundtrip_is_bit_exact(self, record, tmp_path):
        library = DesignLibrary([record])
        path = library.save(tmp_path / "library.json")
        loaded = DesignLibrary.load(path)
        assert len(loaded) == 1
        reloaded = loaded.get("design-time")
        assert reloaded.genes == record.genes
        assert reloaded.psi == record.psi
        assert reloaded.mode_powers == record.mode_powers
        assert reloaded.area_used == record.area_used
        # Scores after the round-trip are identical to the last bit.
        psi = {"O1": 0.37, "O2": 0.63}
        assert reloaded.score(psi) == record.score(psi)

    def test_save_is_atomic(self, record, tmp_path):
        path = tmp_path / "library.json"
        DesignLibrary([record]).save(path)
        assert not path.with_suffix(".json.tmp").exists()

    def test_version_mismatch_rejected(self, record, tmp_path):
        import json

        path = DesignLibrary([record]).save(tmp_path / "library.json")
        data = json.loads(path.read_text())
        data["version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(SpecificationError, match="version"):
            DesignLibrary.load(path)

    def test_mode_order_survives_roundtrip(self, record, tmp_path):
        path = DesignLibrary([record]).save(tmp_path / "library.json")
        loaded = DesignLibrary.load(path).get("design-time")
        assert list(loaded.mode_powers) == list(record.mode_powers)


class TestFromResult:
    def test_carries_quality_figures(self, problem, result, record):
        assert record.feasible == result.is_feasible
        assert record.generations == result.generations
        assert record.evaluations == result.evaluations
        assert record.psi == problem.omsm.probability_vector()
        assert set(record.mode_powers) == set(problem.omsm.mode_names)
        assert record.area_used == result.best.cores.area_used
