"""Warm-started re-synthesis must beat cold starts (paired seeds).

Acceptance: on the smart phone case study, a GA run whose initial
population is seeded from the design-time design reaches the
cold-start run's best fitness in fewer generations — for each paired
seed, same problem, same budget.
"""

import random

import pytest

from repro.adaptive.controller import warm_state
from repro.adaptive.library import DesignRecord
from repro.benchgen.smartphone import smartphone_problem
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer

#: MP3-heavy usage the re-synthesis targets (design-time Ψ is
#: standby/RLC dominated, Table 3).
SHIFTED_PSI = {
    "rlc": 0.15,
    "mp3_rlc": 0.55,
    "mp3_network_search": 0.10,
    "gsm_codec_rlc": 0.05,
    "network_search": 0.02,
    "photo_rlc": 0.05,
    "photo_network_search": 0.02,
    "take_photo": 0.06,
}

#: Calibrated budget: feasible on the smart phone in ~1 s.
BUDGET = dict(
    population_size=16,
    max_generations=25,
    convergence_generations=8,
    local_search_budget_factor=0.5,
)

PAIRED_SEEDS = (1, 2)


def generations_to_reach(history, target):
    """1-based generation at which ``history`` first reaches ``target``."""
    for index, fitness in enumerate(history):
        if fitness <= target:
            return index + 1
    return None


@pytest.fixture(scope="module")
def design_time():
    problem = smartphone_problem()
    result = MultiModeSynthesizer(
        problem, SynthesisConfig(seed=1, **BUDGET)
    ).run()
    assert result.is_feasible
    return DesignRecord.from_result("design-time", result)


@pytest.mark.slow
@pytest.mark.parametrize("seed", PAIRED_SEEDS)
def test_warm_start_reaches_cold_best_in_fewer_generations(
    design_time, seed
):
    target_problem = smartphone_problem().with_probabilities(SHIFTED_PSI)
    config = SynthesisConfig(seed=seed, **BUDGET)

    cold = MultiModeSynthesizer(target_problem, config).run()
    state = warm_state(
        target_problem, config, [design_time.genes], random.Random(seed)
    )
    warm = MultiModeSynthesizer(target_problem, config).run(resume=state)

    cold_best = min(cold.history)
    cold_gens = generations_to_reach(cold.history, cold_best)
    warm_gens = generations_to_reach(warm.history, cold_best)

    # The warm run reaches the cold run's best fitness level at all...
    assert warm_gens is not None
    # ...strictly earlier, and never ends up worse overall.
    assert warm_gens < cold_gens
    assert min(warm.history) <= cold_best
