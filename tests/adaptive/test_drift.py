"""Tests for the drift detector's triggers, hysteresis and cooldown."""

import pytest

from repro.adaptive.drift import DriftConfig, DriftDetector
from repro.errors import SpecificationError

PSI_A = {"O1": 0.1, "O2": 0.9}
PSI_B = {"O1": 0.9, "O2": 0.1}


def update(detector, now=0.0, psi=PSI_A, confidence=1.0,
           deployed=1.0, best=1.0, deployed_psi=PSI_A):
    return detector.update(
        now=now,
        psi_estimate=psi,
        confidence=confidence,
        deployed_score=deployed,
        best_score=best,
        deployed_psi=deployed_psi,
    )


class TestConfigValidation:
    def test_rejects_negative_thresholds(self):
        with pytest.raises(SpecificationError):
            DriftConfig(regret_threshold=-0.1)
        with pytest.raises(SpecificationError):
            DriftConfig(distance_threshold=-0.1)

    def test_rejects_bad_hysteresis(self):
        with pytest.raises(SpecificationError):
            DriftConfig(hysteresis=0.0)
        with pytest.raises(SpecificationError):
            DriftConfig(hysteresis=1.5)

    def test_rejects_negative_cooldown(self):
        with pytest.raises(SpecificationError):
            DriftConfig(cooldown=-1.0)

    def test_rejects_bad_confidence(self):
        with pytest.raises(SpecificationError):
            DriftConfig(min_confidence=1.0)


class TestTriggers:
    def test_quiet_below_both_thresholds(self):
        detector = DriftDetector(DriftConfig(min_confidence=0.0))
        decision = update(detector, deployed=1.01, best=1.0)
        assert not decision.drift
        assert decision.reason == "below_threshold"

    def test_regret_trigger_fires(self):
        detector = DriftDetector(
            DriftConfig(regret_threshold=0.05, min_confidence=0.0)
        )
        decision = update(detector, deployed=1.2, best=1.0)
        assert decision.drift
        assert "regret" in decision.reason
        assert decision.regret == pytest.approx(0.2)

    def test_distance_trigger_fires(self):
        detector = DriftDetector(
            DriftConfig(distance_threshold=0.15, min_confidence=0.0)
        )
        decision = update(detector, psi=PSI_B, deployed_psi=PSI_A)
        assert decision.drift
        assert "distance" in decision.reason
        assert decision.distance == pytest.approx(0.8)

    def test_combined_reason(self):
        detector = DriftDetector(DriftConfig(min_confidence=0.0))
        decision = update(
            detector, psi=PSI_B, deployed_psi=PSI_A, deployed=2.0, best=1.0
        )
        assert decision.drift
        assert decision.reason == "regret+distance"

    def test_low_confidence_gates_everything(self):
        detector = DriftDetector(DriftConfig(min_confidence=0.5))
        decision = update(
            detector, confidence=0.2, deployed=5.0, best=1.0
        )
        assert not decision.drift
        assert decision.reason == "low_confidence"

    def test_non_positive_best_score_rejected(self):
        detector = DriftDetector()
        with pytest.raises(SpecificationError, match="best_score"):
            update(detector, best=0.0)


class TestHysteresis:
    def test_latches_until_recovery_with_zero_cooldown(self):
        # cooldown=0: the detector fires once, then stays quiet while
        # the trigger hovers above the re-arm level — no thrash.
        detector = DriftDetector(
            DriftConfig(
                regret_threshold=0.10,
                hysteresis=0.5,
                cooldown=0.0,
                min_confidence=0.0,
            )
        )
        assert update(detector, now=1.0, deployed=1.2, best=1.0).drift
        # Still over threshold: disarmed, no fire.
        decision = update(detector, now=2.0, deployed=1.2, best=1.0)
        assert not decision.drift
        assert decision.reason == "disarmed"
        # Dips below threshold but above hysteresis level: still quiet.
        decision = update(detector, now=3.0, deployed=1.08, best=1.0)
        assert not decision.drift
        assert not decision.armed
        # Full recovery below hysteresis × threshold re-arms...
        decision = update(detector, now=4.0, deployed=1.02, best=1.0)
        assert not decision.drift
        assert decision.armed
        # ...and the next excursion fires again.
        assert update(detector, now=5.0, deployed=1.2, best=1.0).drift

    def test_reset_rearms(self):
        detector = DriftDetector(
            DriftConfig(regret_threshold=0.1, min_confidence=0.0)
        )
        assert update(detector, now=1.0, deployed=1.5, best=1.0).drift
        detector.reset()
        assert update(detector, now=1.1, deployed=1.5, best=1.0).drift


class TestCooldown:
    def test_persistent_drift_fires_at_cooldown_cadence(self):
        detector = DriftDetector(
            DriftConfig(
                regret_threshold=0.1,
                cooldown=10.0,
                min_confidence=0.0,
            )
        )
        fired = [
            t
            for t in range(0, 40)
            if update(
                detector, now=float(t), deployed=2.0, best=1.0
            ).drift
        ]
        assert fired == [0, 10, 20, 30]

    def test_within_cooldown_reports_cooling(self):
        detector = DriftDetector(
            DriftConfig(
                regret_threshold=0.1, cooldown=5.0, min_confidence=0.0
            )
        )
        assert update(detector, now=0.0, deployed=2.0, best=1.0).drift
        decision = update(detector, now=2.0, deployed=2.0, best=1.0)
        assert not decision.drift
        assert decision.cooling

    def test_new_episode_within_cooldown_still_blocked(self):
        detector = DriftDetector(
            DriftConfig(
                regret_threshold=0.1,
                hysteresis=0.5,
                cooldown=100.0,
                min_confidence=0.0,
            )
        )
        assert update(detector, now=0.0, deployed=2.0, best=1.0).drift
        # Full recovery re-arms...
        update(detector, now=1.0, deployed=1.0, best=1.0)
        assert detector.armed
        # ...but a new excursion inside the cooldown cannot fire yet.
        decision = update(detector, now=2.0, deployed=2.0, best=1.0)
        assert not decision.drift
        assert decision.reason == "cooldown"
        # After the cooldown it fires.
        assert update(detector, now=101.0, deployed=2.0, best=1.0).drift
