"""Closed-loop tests for the adaptation controller.

The scenario: a two-mode system synthesised for its design-time Ψ
(O2-heavy) experiences a usage shift towards O1.  The library also
holds an ``alt`` design synthesised for the O1-heavy regime, so the
controller should detect the drift and swap — and the closed loop
must spend less energy than leaving the design-time design in place.
"""

import random

import pytest

from repro.adaptive.controller import (
    AdaptationConfig,
    AdaptationController,
    trace_energy,
    warm_population,
    warm_state,
)
from repro.adaptive.drift import DriftConfig
from repro.adaptive.library import DesignLibrary, DesignRecord
from repro.errors import SpecificationError
from repro.obs.metrics import REGISTRY
from repro.runtime.events import EventLog, iter_events
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer

from tests.conftest import make_two_mode_problem

#: Usage after the shift: mostly O1 instead of mostly O2.
SHIFTED_PSI = {"O1": 0.9, "O2": 0.1}

#: Mostly-O2 phase (matches the design Ψ), then a hard shift to O1.
TRACE = [("O2", 0.9), ("O1", 0.1)] * 10 + [("O1", 2.0), ("O2", 0.2)] * 20


def make_config(**overrides):
    base = dict(
        half_life=5.0,
        prior_weight=1.0,
        drift=DriftConfig(
            regret_threshold=0.02,
            distance_threshold=0.4,
            min_confidence=0.3,
            cooldown=3.0,
        ),
        synthesis=SynthesisConfig(
            population_size=8, max_generations=6, seed=7
        ),
        max_resyntheses=1,
        seed=11,
    )
    base.update(overrides)
    return AdaptationConfig(**base)


@pytest.fixture(scope="module")
def problem():
    return make_two_mode_problem()


@pytest.fixture(scope="module")
def library(problem):
    """Design-time design plus an alternative tuned for O1-heavy use."""
    design_time = MultiModeSynthesizer(
        problem,
        SynthesisConfig(population_size=8, max_generations=10, seed=3),
    ).run()
    alt = MultiModeSynthesizer(
        problem.with_probabilities(SHIFTED_PSI),
        SynthesisConfig(population_size=8, max_generations=10, seed=5),
    ).run()
    return DesignLibrary(
        [
            DesignRecord.from_result("design-time", design_time),
            DesignRecord.from_result("alt", alt),
        ]
    )


def fresh_library(library):
    """A per-test copy so admitted designs never leak between tests."""
    return DesignLibrary(list(library.records))


class TestConfigValidation:
    def test_rejects_bad_half_life(self):
        with pytest.raises(SpecificationError, match="half_life"):
            AdaptationConfig(half_life=0.0)

    def test_rejects_bad_seed_designs(self):
        with pytest.raises(SpecificationError, match="seed_designs"):
            AdaptationConfig(seed_designs=0)

    def test_rejects_negative_max_resyntheses(self):
        with pytest.raises(SpecificationError, match="max_resyntheses"):
            AdaptationConfig(max_resyntheses=-1)


class TestSwitchTime:
    def test_defaults_to_largest_finite_transition_time(
        self, problem, library
    ):
        controller = AdaptationController(
            problem, fresh_library(library), make_config()
        )
        expected = max(
            t.max_time
            for t in problem.omsm.transitions
            if t.max_time != float("inf")
        )
        assert controller.switch_time() == expected

    def test_config_override_wins(self, problem, library):
        controller = AdaptationController(
            problem,
            fresh_library(library),
            make_config(switch_time=1.25),
        )
        assert controller.switch_time() == 1.25


class TestWarmStart:
    def test_population_keeps_seeds_verbatim(self, problem, library):
        seeds = [record.genes for record in library.records]
        config = SynthesisConfig(population_size=8)
        population = warm_population(
            problem, config, seeds, random.Random(0)
        )
        assert len(population) == config.population_size
        assert population[: len(seeds)] == seeds

    def test_population_is_deterministic(self, problem, library):
        seeds = [library.get("design-time").genes]
        config = SynthesisConfig(population_size=10)
        first = warm_population(problem, config, seeds, random.Random(4))
        second = warm_population(
            problem, config, seeds, random.Random(4)
        )
        assert first == second

    def test_requires_seeds(self, problem):
        with pytest.raises(SpecificationError, match="seed"):
            warm_population(
                problem, SynthesisConfig(), [], random.Random(0)
            )

    def test_state_is_a_generation_zero_snapshot(self, problem, library):
        seeds = [library.get("design-time").genes]
        config = SynthesisConfig(population_size=8)
        state = warm_state(problem, config, seeds, random.Random(1))
        assert state.generation == 0
        assert len(state.population) == config.population_size
        assert state.best_genes is None
        assert state.evaluations == 0

    def test_resume_accepts_warm_state(self, problem, library):
        # The warm state must ride the existing checkpoint hooks.
        config = SynthesisConfig(
            population_size=8, max_generations=3, seed=9
        )
        seeds = [library.get("design-time").genes]
        state = warm_state(problem, config, seeds, random.Random(2))
        result = MultiModeSynthesizer(problem, config).run(resume=state)
        assert result.generations >= 1


class TestClosedLoop:
    def run_loop(self, problem, library, **overrides):
        controller = AdaptationController(
            problem, library, make_config(**overrides)
        )
        return controller.run(TRACE)

    def test_swaps_to_the_alternative_design(self, problem, library):
        report = self.run_loop(problem, fresh_library(library))
        assert report.swaps >= 1
        swap = next(d for d in report.decisions if d.kind == "swap")
        assert swap.design != "design-time"
        assert report.deployed != "design-time"

    def test_beats_the_static_deployment(self, problem, library):
        lib = fresh_library(library)
        report = self.run_loop(problem, lib)
        static = trace_energy(library.get("design-time"), TRACE)
        assert report.energy < static
        assert report.simulated_time == pytest.approx(
            sum(dwell for _, dwell in TRACE)
        )
        assert report.average_power == pytest.approx(
            report.energy / report.simulated_time
        )

    def test_is_bit_reproducible(self, problem, library):
        first = self.run_loop(problem, fresh_library(library))
        second = self.run_loop(problem, fresh_library(library))
        assert first.energy == second.energy
        assert first.deployed == second.deployed
        assert first.psi_estimate == second.psi_estimate
        assert [
            (d.time, d.kind, d.design, d.reason)
            for d in first.decisions
        ] == [
            (d.time, d.kind, d.design, d.reason)
            for d in second.decisions
        ]

    def test_switching_cost_is_charged(self, problem, library):
        cheap = self.run_loop(
            problem, fresh_library(library), switch_time=0.0
        )
        costly = self.run_loop(
            problem, fresh_library(library), switch_time=5.0
        )
        assert cheap.swaps >= 1 and costly.swaps >= 1
        assert costly.energy > cheap.energy

    def test_max_resyntheses_caps_ga_launches(self, problem, library):
        report = self.run_loop(
            problem, fresh_library(library), max_resyntheses=0
        )
        assert report.resyntheses == 0

    def test_initial_design_is_honoured(self, problem, library):
        controller = AdaptationController(
            problem,
            fresh_library(library),
            make_config(),
            initial_design="alt",
        )
        assert controller.deployed.name == "alt"

    def test_metrics_registry_sees_the_loop(self, problem, library):
        before = REGISTRY.snapshot()
        report = self.run_loop(problem, fresh_library(library))
        delta = REGISTRY.delta_since(before)
        counters = {
            name: value
            for (name, _), value in delta["counters"].items()
        }
        assert counters["adapt_drift_checks"] == len(TRACE)
        assert counters["adapt_drift_detected"] == report.drift_events
        assert counters.get("adapt_swaps", 0) == report.swaps
        assert (
            counters.get("adapt_resyntheses", 0) == report.resyntheses
        )
        regret = REGISTRY.histogram_data("adapt_regret")
        assert regret.count >= len(TRACE)
        assert REGISTRY.gauge_value("adapt_energy_joules") > 0

    def test_events_land_on_the_jsonl_stream(
        self, problem, library, tmp_path
    ):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            controller = AdaptationController(
                problem,
                fresh_library(library),
                make_config(),
                event_log=log,
            )
            report = controller.run(TRACE)
        events = list(iter_events(path))
        kinds = [event["event"] for event in events]
        assert kinds.count("adapt_drift") == report.drift_events
        assert kinds.count("adapt_swap") == report.swaps
        swap = next(e for e in events if e["event"] == "adapt_swap")
        assert swap["previous"] == "design-time"
        assert "switch_time" in swap

    def test_adapt_events_render_human_readably(
        self, problem, library, tmp_path
    ):
        from repro.obs.status import format_event

        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            AdaptationController(
                problem,
                fresh_library(library),
                make_config(),
                event_log=log,
            ).run(TRACE)
        lines = [format_event(e) for e in iter_events(path)]
        assert any("drift" in line for line in lines)
        assert any("->" in line for line in lines)
        assert all(isinstance(line, str) and line for line in lines)
