"""Unit tests for the Problem bundle."""

import pytest

from repro.errors import SpecificationError, TechnologyError
from repro.problem import Problem



class TestProblem:
    def test_construction_validates_technology(self, two_mode_problem):
        assert two_mode_problem.name == "two_mode"
        assert two_mode_problem.genome_length() == 7

    def test_gene_space_layout(self, two_mode_problem):
        genes = two_mode_problem.gene_space("O1")
        assert [task for task, _ in genes] == ["t1", "t2", "t3", "t4"]
        for _, candidates in genes:
            assert set(candidates) == {"PE0", "PE1"}

    def test_gene_space_unknown_mode(self, two_mode_problem):
        with pytest.raises(SpecificationError):
            two_mode_problem.gene_space("ghost")

    def test_missing_implementation_rejected(self, two_mode_problem):
        from repro.architecture import TechnologyLibrary, TaskImplementation

        incomplete = TechnologyLibrary(
            [TaskImplementation("A", "PE0", exec_time=0.01, power=0.1)]
        )
        with pytest.raises(TechnologyError):
            Problem(
                two_mode_problem.omsm,
                two_mode_problem.architecture,
                incomplete,
            )

    def test_repr_mentions_name(self, two_mode_problem):
        assert "two_mode" in repr(two_mode_problem)
