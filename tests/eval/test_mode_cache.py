"""Unit tests of the per-mode result cache and its observability.

Covers the bounded-LRU mechanics (hits refresh recency, capacity
evicts oldest, byte accounting follows), the metrics emitted on the
process-global registry, per-problem memoisation incl. sharing across
``with_probabilities`` re-targets, the config fingerprint, and the
dirty-mode contract: after a single-mode edit, the clean modes' prep
lookups are cache hits.
"""

import random

import pytest

from repro.benchgen.suite import suite_problem
from repro.eval.cache import (
    ModeOutcome,
    ModePrep,
    ModeResultCache,
    config_fingerprint,
    mode_cache_for,
)
from repro.mapping.encoding import MappingString, mode_bounds
from repro.obs.metrics import REGISTRY
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.evaluator import evaluate_mapping

from tests.conftest import make_two_mode_problem

FP = ("none", True, True, 0)


def _prep(n: int = 1) -> ModePrep:
    return ModePrep(
        mode_mapping={f"t{i}": "PE0" for i in range(n)},
        mobilities={},
        demand={},
    )


def _outcome() -> ModeOutcome:
    return ModeOutcome(schedule=None, timing={}, dynamic=0.0, static=0.0)


class TestLruMechanics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ModeResultCache(0)

    def test_get_miss_then_hit(self):
        cache = ModeResultCache(4)
        key = ("m0", ("PE0",), FP)
        assert cache.get_prep(key) is None
        value = _prep()
        cache.put_prep(key, value)
        assert cache.get_prep(key) is value
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_drops_least_recently_used(self):
        cache = ModeResultCache(2)
        keys = [("m0", (f"PE{i}",), FP) for i in range(3)]
        cache.put_prep(keys[0], _prep())
        cache.put_prep(keys[1], _prep())
        # Touch keys[0] so keys[1] becomes the eviction victim.
        assert cache.get_prep(keys[0]) is not None
        cache.put_prep(keys[2], _prep())
        assert cache.evictions == 1
        assert cache.get_prep(keys[0]) is not None
        assert cache.get_prep(keys[1]) is None
        assert cache.get_prep(keys[2]) is not None

    def test_segments_are_bounded_independently(self):
        cache = ModeResultCache(1)
        cache.put_prep(("m0", ("PE0",), FP), _prep())
        cache.put_sched(("m0", ("PE0",), (), FP), _outcome())
        assert len(cache) == 2
        assert cache.evictions == 0
        cache.put_prep(("m0", ("PE1",), FP), _prep())
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_byte_accounting_tracks_eviction_and_clear(self):
        cache = ModeResultCache(1)
        big, small = _prep(10), _prep(1)
        cache.put_prep(("m0", ("PE0",), FP), big)
        assert cache.bytes_resident == big.approx_bytes
        cache.put_prep(("m0", ("PE1",), FP), small)
        assert cache.bytes_resident == small.approx_bytes
        cache.clear()
        assert cache.bytes_resident == 0
        assert len(cache) == 0

    def test_stats_summary(self):
        cache = ModeResultCache(8)
        cache.get_prep(("m0", ("PE0",), FP))
        cache.put_prep(("m0", ("PE0",), FP), _prep())
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["capacity"] == 8
        assert stats["bytes_resident"] > 0


class TestMetrics:
    def test_hits_misses_and_evictions_are_metered_per_mode(self):
        base = REGISTRY.snapshot()
        cache = ModeResultCache(1)
        cache.get_prep(("modeA", ("PE0",), FP))
        cache.put_prep(("modeA", ("PE0",), FP), _prep())
        cache.get_prep(("modeA", ("PE0",), FP))
        cache.put_prep(("modeB", ("PE1",), FP), _prep())  # evicts modeA
        delta = REGISTRY.delta_since(base)["counters"]

        def count(name, **labels):
            from repro.obs.metrics import metric_key

            return delta.get(metric_key(name, labels), 0.0)

        assert count(
            "eval_mode_cache_misses_total", mode="modeA", stage="prep"
        ) == 1
        assert count(
            "eval_mode_cache_hits_total", mode="modeA", stage="prep"
        ) == 1
        assert count(
            "eval_mode_cache_evictions_total", mode="modeA", stage="prep"
        ) == 1

    def test_gauges_published(self):
        cache = ModeResultCache(4)
        cache.put_prep(("m0", ("PE0",), FP), _prep())
        cache.get_prep(("m0", ("PE0",), FP))
        assert REGISTRY.gauge_value("eval_mode_cache_bytes_resident") > 0
        assert REGISTRY.gauge_value("eval_mode_cache_entries") >= 1
        assert 0.0 < REGISTRY.gauge_value("eval_mode_cache_hit_rate") <= 1.0

    def test_clear_resets_meters_and_gauges(self):
        # Regression: clear() used to leave the hit-rate gauge (and the
        # hit/miss/eviction meters) at their pre-clear values until the
        # next lookup, so --status reported stale cache stats after a
        # with_probabilities retarget.
        cache = ModeResultCache(4)
        key = ("m0", ("PE0",), FP)
        cache.get_prep(key)
        cache.put_prep(key, _prep())
        cache.get_prep(key)
        assert REGISTRY.gauge_value("eval_mode_cache_hit_rate") == 0.5
        cache.clear()
        assert cache.hits == 0
        assert cache.misses == 0
        assert cache.evictions == 0
        assert cache.hit_rate == 0.0
        assert REGISTRY.gauge_value("eval_mode_cache_hit_rate") == 0.0
        assert REGISTRY.gauge_value("eval_mode_cache_bytes_resident") == 0
        assert REGISTRY.gauge_value("eval_mode_cache_entries") == 0


class TestJournalPublication:
    """The cross-worker publication channel of the async pool."""

    def test_insertions_journal_only_while_armed(self):
        cache = ModeResultCache(8)
        cache.put_prep(("m0", ("PE0",), FP), _prep())
        cache.start_journal()
        assert cache.drain_journal() == []
        value = _prep()
        cache.put_prep(("m0", ("PE1",), FP), value)
        outcome = _outcome()
        cache.put_sched(("m0", ("PE1",), (), FP), outcome)
        drained = cache.drain_journal()
        assert drained == [
            ("prep", ("m0", ("PE1",), FP), value),
            ("sched", ("m0", ("PE1",), (), FP), outcome),
        ]
        # Drain empties the journal but keeps it armed.
        assert cache.drain_journal() == []
        cache.put_prep(("m0", ("PE2",), FP), _prep())
        assert len(cache.drain_journal()) == 1

    def test_apply_published_inserts_if_absent(self):
        source = ModeResultCache(8)
        source.start_journal()
        source.put_prep(("m0", ("PE0",), FP), _prep())
        source.put_sched(("m0", ("PE0",), (), FP), _outcome())
        entries = source.drain_journal()

        target = ModeResultCache(8)
        local = _prep()
        target.put_prep(("m0", ("PE0",), FP), local)
        applied = target.apply_published(entries)
        # The prep key was already resident: the local value wins.
        assert applied == 1
        assert target.get_prep(("m0", ("PE0",), FP)) is local
        assert target.get_sched(("m0", ("PE0",), (), FP)) is not None

    def test_apply_published_meters_no_hits_or_misses(self):
        source = ModeResultCache(8)
        source.start_journal()
        source.put_prep(("m0", ("PE0",), FP), _prep())
        target = ModeResultCache(8)
        target.apply_published(source.drain_journal())
        assert target.hits == 0
        assert target.misses == 0
        assert target.bytes_resident > 0
        assert len(target) == 1

    def test_apply_published_does_not_echo_into_journal(self):
        source = ModeResultCache(8)
        source.start_journal()
        source.put_prep(("m0", ("PE0",), FP), _prep())
        entries = source.drain_journal()
        target = ModeResultCache(8)
        target.start_journal()
        target.apply_published(entries)
        # A broadcast applied while journalling must not be re-published.
        assert target.drain_journal() == []

    def test_apply_published_respects_capacity(self):
        source = ModeResultCache(8)
        source.start_journal()
        for i in range(3):
            source.put_prep(("m0", (f"PE{i}",), FP), _prep())
        target = ModeResultCache(2)
        target.apply_published(source.drain_journal())
        assert len(target) == 2
        assert target.evictions == 1


class TestConfigFingerprint:
    def test_captures_result_affecting_facets(self):
        base = SynthesisConfig()
        assert config_fingerprint(base) == config_fingerprint(
            base.with_updates(area_weight=1.0, population_size=10, seed=9)
        )
        for changed in (
            base.with_updates(dvs=DvsMethod.GRADIENT),
            base.with_updates(dvs_shared_rail=False),
            base.with_updates(decode_cache=False),
            base.with_updates(inner_loop_iterations=2),
        ):
            assert config_fingerprint(changed) != config_fingerprint(base)


class TestModeCacheFor:
    def test_memoised_per_problem(self):
        problem = make_two_mode_problem()
        config = SynthesisConfig()
        cache = mode_cache_for(problem, config)
        assert mode_cache_for(problem, config) is cache
        assert cache.capacity == config.mode_cache_size

    def test_shared_across_probability_retargets(self):
        problem = make_two_mode_problem()
        config = SynthesisConfig()
        cache = mode_cache_for(problem, config)
        names = problem.omsm.mode_names
        weights = {
            name: (0.9 if i == 0 else 0.1 / max(1, len(names) - 1))
            for i, name in enumerate(names)
        }
        retargeted = problem.with_probabilities(weights)
        assert mode_cache_for(retargeted, config) is cache


class TestDirtyModeConsistency:
    """After a single-mode edit, the clean modes must hit in cache."""

    def test_clean_modes_hit_after_single_mode_edit(self):
        problem = suite_problem("mul1")
        config = SynthesisConfig(mode_cache_size=256)
        cache = ModeResultCache(config.mode_cache_size)
        rng = random.Random(11)
        genome = MappingString.random(problem, rng)
        evaluate_mapping(problem, genome, config, cache=cache)

        bounds = mode_bounds(problem)
        dirty_name, start, _end = bounds[0]
        index = start
        candidates = genome.candidates_at(index)
        replacement = next(
            (pe for pe in candidates if pe != genome.genes[index]), None
        )
        if replacement is None:
            pytest.skip("gene 0 has a single candidate PE")
        edited = genome.with_gene(index, replacement)
        assert edited.dirty_modes == frozenset({dirty_name})

        before = cache.hits
        evaluate_mapping(problem, edited, config, cache=cache)
        clean_modes = len(problem.omsm.mode_names) - 1
        # Every clean mode hits at least its prep entry; the dirty mode
        # must not (its gene slice changed).
        assert cache.hits - before >= clean_modes

    def test_identical_genome_is_all_hits(self):
        problem = make_two_mode_problem()
        config = SynthesisConfig()
        cache = ModeResultCache(64)
        rng = random.Random(3)
        genome = MappingString.random(problem, rng)
        first = evaluate_mapping(problem, genome, config, cache=cache)
        misses_after_first = cache.misses
        second = evaluate_mapping(
            problem, MappingString(problem, genome.genes), config, cache=cache
        )
        assert cache.misses == misses_after_first
        if first is not None:
            assert second is not None
            assert second.metrics.fitness == first.metrics.fitness
