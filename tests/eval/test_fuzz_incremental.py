"""Differential fuzz oracle: incremental pipeline vs monolithic path.

For each benchmark instance, random mutation chains (gene mutation,
two-point crossover between two lineages, targeted single-gene edits)
drive the incremental pipeline through a warm, steadily churning
mode-result cache — and every single candidate is re-evaluated through
the fresh legacy path (``mode_cache=False``) and compared bit-for-bit:
fitness, per-mode dynamic/static power, violation summaries, and the
full task/communication schedules.  Any divergence — a stale cache
entry, an imprecise core signature, a float reassociation — fails with
the step number that produced it.

Part of the tier-1 suite, hence of ``make verify``.
"""

import random

import pytest

from repro.benchgen.smartphone import smartphone_problem
from repro.benchgen.suite import suite_problem
from repro.mapping.encoding import MappingString
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.evaluator import evaluate_mapping

#: (instance, chain steps, per-gene mutation rate) — ≥200 fuzzed
#: candidates per instance, two tgff-style suite instances plus the
#: smartphone case study.
INSTANCES = [
    ("mul1", 200, 0.08),
    ("mul3", 200, 0.06),
    ("smartphone", 200, 0.04),
]


def _problem(name):
    if name == "smartphone":
        return smartphone_problem()
    return suite_problem(name)


def _snapshot(implementation):
    """Everything observable about one evaluation, bit-exact."""
    if implementation is None:
        return None
    metrics = implementation.metrics
    out = [
        metrics.fitness,
        metrics.average_power,
        metrics.dynamic_power,
        metrics.static_power,
        metrics.timing_violation,
        metrics.area_violation,
        metrics.transition_violation,
    ]
    for mode_name in sorted(implementation.schedules):
        schedule = implementation.schedules[mode_name]
        out.append(
            tuple(
                tuple(sorted(vars(task).items()))
                for task in schedule.tasks
            )
        )
        out.append(
            tuple(
                tuple(sorted(vars(comm).items()))
                for comm in schedule.comms
            )
        )
    return out


@pytest.mark.parametrize(
    "name,steps,rate", INSTANCES, ids=[entry[0] for entry in INSTANCES]
)
def test_mutation_chain_bit_identical_to_legacy(name, steps, rate):
    problem = _problem(name)
    rng = random.Random(20030310)
    incremental = SynthesisConfig(
        dvs=DvsMethod.GRADIENT, mode_cache=True, mode_cache_size=512
    )
    legacy = incremental.with_updates(mode_cache=False)

    genome = MappingString.random(problem, rng)
    partner = MappingString.random(problem, rng)
    for step in range(steps):
        fast = _snapshot(
            evaluate_mapping(problem, genome, incremental)
        )
        oracle = _snapshot(evaluate_mapping(problem, genome, legacy))
        assert fast == oracle, (
            f"{name}: incremental result diverged from the legacy "
            f"oracle at chain step {step}"
        )
        # Advance both lineages; mix operators so prep *and* schedule
        # segments see hits, single-mode dirt and cross-mode dirt.
        roll = rng.random()
        if roll < 0.6:
            genome = genome.mutate(rng, rate)
        elif roll < 0.85:
            genome, partner = genome.crossover_two_point(partner, rng)
        else:
            index = rng.randrange(len(genome))
            candidates = genome.candidates_at(index)
            genome = genome.with_gene(index, rng.choice(candidates))
