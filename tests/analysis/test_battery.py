"""Tests for battery lifetime estimation."""

import pytest

from repro.analysis.battery import Battery
from repro.errors import SpecificationError


class TestConstruction:
    def test_defaults(self):
        battery = Battery(capacity_mah=1000.0)
        assert battery.voltage == 3.7
        assert battery.peukert_exponent == 1.05

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(capacity_mah=0.0),
            dict(capacity_mah=100.0, voltage=0.0),
            dict(capacity_mah=100.0, peukert_exponent=0.9),
            dict(capacity_mah=100.0, rated_hours=0.0),
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(SpecificationError):
            Battery(**kwargs)


class TestIdealModel:
    def test_energy(self):
        battery = Battery(capacity_mah=1000.0, voltage=3.7)
        # 1 Ah * 3.7 V = 3.7 Wh = 13320 J
        assert battery.energy_joules == pytest.approx(13_320.0)

    def test_lifetime(self):
        battery = Battery(capacity_mah=1000.0, voltage=3.7)
        # 3.7 Wh at 3.7 mW -> 1000 hours.
        assert battery.lifetime_hours(3.7e-3) == pytest.approx(1000.0)

    def test_lifetime_scales_inversely(self):
        battery = Battery(capacity_mah=1000.0)
        assert battery.lifetime_hours(2e-3) == pytest.approx(
            battery.lifetime_hours(4e-3) * 2
        )

    def test_non_positive_power_rejected(self):
        battery = Battery(capacity_mah=1000.0)
        with pytest.raises(SpecificationError):
            battery.lifetime_hours(0.0)


class TestPeukert:
    def test_exponent_one_matches_ideal_at_rated_point(self):
        battery = Battery(
            capacity_mah=1000.0,
            voltage=3.7,
            peukert_exponent=1.0,
            rated_hours=20.0,
        )
        power = battery.energy_joules / (20.0 * 3600.0)
        assert battery.lifetime_hours_peukert(power) == pytest.approx(
            battery.lifetime_hours(power)
        )

    def test_higher_draw_penalised(self):
        battery = Battery(capacity_mah=1000.0, peukert_exponent=1.2)
        # Doubling the draw more than halves the Peukert lifetime.
        slow = battery.lifetime_hours_peukert(2e-3)
        fast = battery.lifetime_hours_peukert(4e-3)
        assert fast < slow / 2

    def test_lifetime_gain(self):
        battery = Battery(capacity_mah=1000.0, peukert_exponent=1.0)
        # Ideal model: 30 % lower power -> 1/0.7 - 1 lifetime gain.
        gain = battery.lifetime_gain(1e-2, 0.7e-2)
        assert gain == pytest.approx(1 / 0.7 - 1, rel=1e-6)

    def test_paper_scale_example(self):
        # The paper's smart phone: 2.602 mW -> 0.859 mW overall.
        battery = Battery(capacity_mah=1000.0, voltage=3.7)
        gain = battery.lifetime_gain(2.602e-3, 0.859e-3)
        assert gain > 1.5  # more than 2.5x the battery life
