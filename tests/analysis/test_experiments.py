"""Tests for the experiment drivers (fast, tiny GA budgets)."""

import pytest

from repro.analysis.experiments import (
    compare_policies,
    run_smartphone_experiment,
    run_suite_experiment,
)
from repro.synthesis.config import DvsMethod, SynthesisConfig

from tests.conftest import make_two_mode_problem

TINY = SynthesisConfig(
    population_size=10, max_generations=12, convergence_generations=5
)


class TestComparePolicies:
    def test_structure(self):
        problem = make_two_mode_problem()
        result = compare_policies(problem, TINY, runs=2, base_seed=7)
        assert result.example == "two_mode"
        assert result.modes == 2
        assert result.runs == 2
        assert len(result.without.powers) == 2
        assert len(result.with_probabilities.powers) == 2
        assert result.without.mean_power > 0
        assert result.without.mean_cpu_time > 0

    def test_reduction_formula(self):
        problem = make_two_mode_problem()
        result = compare_policies(problem, TINY, runs=1)
        expected = (
            100.0
            * (
                result.without.mean_power
                - result.with_probabilities.mean_power
            )
            / result.without.mean_power
        )
        assert result.reduction_pct == pytest.approx(expected)

    def test_power_stdev(self):
        problem = make_two_mode_problem()
        result = compare_policies(problem, TINY, runs=3)
        assert result.without.power_stdev >= 0.0


class TestSuiteExperiment:
    def test_subset_selection(self):
        results = run_suite_experiment(
            dvs=DvsMethod.NONE,
            runs=1,
            config=TINY,
            examples=["mul9"],
        )
        assert [r.example for r in results] == ["mul9"]

    def test_dvs_method_is_applied(self):
        no_dvs = run_suite_experiment(
            dvs=DvsMethod.NONE, runs=1, config=TINY, examples=["mul9"]
        )[0]
        dvs = run_suite_experiment(
            dvs=DvsMethod.GRADIENT,
            runs=1,
            config=TINY,
            examples=["mul9"],
        )[0]
        # DVS cannot hurt: same GA trajectory evaluated with voltage
        # scaling lands at most at the nominal power.
        assert (
            dvs.with_probabilities.mean_power
            <= no_dvs.with_probabilities.mean_power * 1.05
        )


class TestSmartphoneExperiment:
    @pytest.mark.slow
    def test_both_rows_present(self):
        results = run_smartphone_experiment(runs=1, config=TINY)
        assert set(results) == {"w/o DVS", "with DVS"}
        for result in results.values():
            assert result.modes == 8
