"""Consistency checks of the transcribed paper tables."""

import pytest

from repro.analysis.paper_data import (
    MAX_REDUCTION_DVS_PCT,
    MAX_REDUCTION_NO_DVS_PCT,
    TABLE1,
    TABLE2,
    TABLE3,
    table1_row,
    table2_row,
)


class TestTable1:
    def test_twelve_rows(self):
        assert len(TABLE1) == 12

    def test_reductions_consistent_with_powers(self):
        # The paper's printed reductions were computed from unrounded
        # run averages, so they deviate slightly (up to ~0.35 points in
        # Table 1) from what the printed powers imply.
        for row in TABLE1:
            computed = 100.0 * (
                1.0 - row.power_with_mw / row.power_without_mw
            )
            assert computed == pytest.approx(row.reduction_pct, abs=0.5)

    def test_headline_max(self):
        assert max(r.reduction_pct for r in TABLE1) == pytest.approx(
            MAX_REDUCTION_NO_DVS_PCT
        )

    def test_lookup(self):
        assert table1_row("mul6").reduction_pct == pytest.approx(22.46)
        with pytest.raises(KeyError):
            table1_row("mul99")


class TestTable2:
    def test_twelve_rows(self):
        assert len(TABLE2) == 12

    def test_reductions_consistent_with_powers(self):
        # Table 2's printed reductions disagree with its printed powers
        # by up to ~3.7 points (mul1: 10.92 % printed vs 7.19 % implied)
        # — an inconsistency in the paper itself, kept here as-is.
        for row in TABLE2:
            computed = 100.0 * (
                1.0 - row.power_with_mw / row.power_without_mw
            )
            assert computed == pytest.approx(row.reduction_pct, abs=4.0)

    def test_dvs_always_beats_no_dvs(self):
        # The paper's central DVS observation: with DVS, absolute power
        # drops for every instance and both policies.
        for no_dvs, dvs in zip(TABLE1, TABLE2):
            assert dvs.power_without_mw < no_dvs.power_without_mw
            assert dvs.power_with_mw < no_dvs.power_with_mw

    def test_dvs_costs_more_cpu(self):
        for no_dvs, dvs in zip(TABLE1, TABLE2):
            assert dvs.cpu_without_s > no_dvs.cpu_without_s
            assert dvs.cpu_with_s > no_dvs.cpu_with_s

    def test_headline_max(self):
        assert max(r.reduction_pct for r in TABLE2) == pytest.approx(
            MAX_REDUCTION_DVS_PCT
        )

    def test_lookup(self):
        assert table2_row("mul7").reduction_pct == pytest.approx(64.02)


class TestTable3:
    def test_rows(self):
        assert set(TABLE3) == {"w/o DVS", "with DVS"}

    def test_overall_reduction_near_67_percent(self):
        fixed_no_psi = TABLE3["w/o DVS"][0]
        dvs_with_psi = TABLE3["with DVS"][2]
        overall = 100.0 * (1.0 - dvs_with_psi / fixed_no_psi)
        assert overall == pytest.approx(67.0, abs=1.0)
