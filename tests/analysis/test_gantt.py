"""Tests for the ASCII Gantt renderer."""

import random


from repro.analysis.gantt import render_all_modes, render_gantt
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.scheduling.list_scheduler import schedule_mode
from repro.scheduling.schedule import ModeSchedule

from tests.conftest import make_parallel_hw_problem, make_two_mode_problem


def make_schedule(problem, mode_name, mapping):
    genome = MappingString.from_mapping(problem, mapping)
    cores = allocate_cores(problem, genome)
    mode = problem.omsm.mode(mode_name)
    return schedule_mode(
        problem, mode, genome.mode_mapping(mode_name), cores
    )


class TestRenderGantt:
    def test_rows_for_active_resources(self):
        problem = make_two_mode_problem()
        schedule = make_schedule(
            problem,
            "O1",
            {
                "O1": {
                    "t1": "PE0",
                    "t2": "PE1",
                    "t3": "PE0",
                    "t4": "PE0",
                },
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        text = render_gantt(schedule, problem.architecture, width=40)
        assert "PE0" in text
        assert "PE1/B#0" in text
        assert "CL0" in text
        assert "makespan" in text

    def test_idle_resources_omitted(self):
        problem = make_two_mode_problem()
        schedule = make_schedule(
            problem,
            "O1",
            {
                "O1": {t: "PE0" for t in ["t1", "t2", "t3", "t4"]},
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        text = render_gantt(schedule, problem.architecture, width=40)
        assert "PE1" not in text
        assert "CL0" not in text

    def test_rows_have_requested_width(self):
        problem = make_two_mode_problem()
        schedule = make_schedule(
            problem,
            "O1",
            {
                "O1": {t: "PE0" for t in ["t1", "t2", "t3", "t4"]},
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        text = render_gantt(
            schedule, problem.architecture, width=50, label_width=10
        )
        for line in text.splitlines()[1:]:
            assert len(line) == 10 + 50 + 2  # label + cells + bars

    def test_start_columns_capitalised(self):
        problem = make_two_mode_problem()
        schedule = make_schedule(
            problem,
            "O1",
            {
                "O1": {t: "PE0" for t in ["t1", "t2", "t3", "t4"]},
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        text = render_gantt(schedule, problem.architecture, width=60)
        pe0_row = next(
            line for line in text.splitlines() if line.startswith("PE0")
        )
        assert pe0_row.count("T") == 4  # four task starts

    def test_hardware_cores_get_own_rows(self):
        problem = make_parallel_hw_problem(period=0.012)
        schedule = make_schedule(
            problem,
            "M",
            {
                "M": {
                    "src": "CPU",
                    "p0": "HW",
                    "p1": "HW",
                    "p2": "HW",
                    "p3": "HW",
                    "join": "CPU",
                }
            },
        )
        text = render_gantt(schedule, problem.architecture, width=40)
        assert "HW/P#0" in text
        assert "HW/P#1" in text

    def test_empty_schedule(self):
        problem = make_two_mode_problem()
        empty = ModeSchedule("O1", [], [])
        assert "empty" in render_gantt(empty, problem.architecture)


class TestRenderAllModes:
    def test_all_modes_present(self):
        problem = make_two_mode_problem()
        genome = MappingString.random(problem, random.Random(1))
        cores = allocate_cores(problem, genome)
        schedules = {
            mode.name: schedule_mode(
                problem, mode, genome.mode_mapping(mode.name), cores
            )
            for mode in problem.omsm.modes
        }
        text = render_all_modes(schedules, problem.architecture)
        assert "'O1'" in text
        assert "'O2'" in text
