"""Tests for table formatting."""

from repro.analysis.experiments import (
    ComparisonResult,
    PolicyOutcome,
)
from repro.analysis.paper_data import TABLE1
from repro.analysis.reporting import (
    format_comparison_table,
    format_paper_comparison,
    format_smartphone_table,
)


def fake_result(example="mul1", modes=4, p_without=8e-3, p_with=7e-3):
    without = PolicyOutcome(
        powers=[p_without], cpu_times=[1.0], feasible=[True]
    )
    with_p = PolicyOutcome(
        powers=[p_with], cpu_times=[1.2], feasible=[True]
    )
    return ComparisonResult(
        example=example,
        modes=modes,
        without=without,
        with_probabilities=with_p,
        runs=1,
    )


class TestComparisonTable:
    def test_contains_rows_and_average(self):
        text = format_comparison_table(
            [fake_result(), fake_result("mul2", 4, 4e-3, 3e-3)]
        )
        assert "mul1 (4)" in text
        assert "mul2 (4)" in text
        assert "average" in text
        assert "Reduc." in text

    def test_reduction_value_printed(self):
        text = format_comparison_table([fake_result()])
        assert "12.50" in text  # (8-7)/8 = 12.5 %

    def test_empty_results(self):
        text = format_comparison_table([])
        assert "Example" in text


class TestPaperComparison:
    def test_side_by_side(self):
        rows = {row.example: row for row in TABLE1}
        text = format_paper_comparison([fake_result()], rows)
        assert "mul1" in text
        assert "7.29" in text  # paper's mul1 reduction
        assert "12.50" in text  # ours

    def test_unknown_example_skipped(self):
        rows = {row.example: row for row in TABLE1}
        text = format_paper_comparison(
            [fake_result(example="ghost")], rows
        )
        assert "ghost" not in text


class TestSmartphoneTable:
    def test_rows_and_overall(self):
        results = {
            "w/o DVS": fake_result("smartphone", 8, 2.6e-3, 1.8e-3),
            "with DVS": fake_result("smartphone", 8, 1.2e-3, 0.86e-3),
        }
        text = format_smartphone_table(results)
        assert "w/o DVS" in text
        assert "with DVS" in text
        assert "overall reduction" in text
        # 1 - 0.86/2.6 = 66.9 %
        assert "66.9" in text

    def test_partial_results(self):
        results = {"w/o DVS": fake_result("smartphone", 8)}
        text = format_smartphone_table(results)
        assert "with DVS" not in text.split("\n", 3)[-1] or True
        assert "overall" not in text


class TestResultsFromInProgressEvents:
    """Rebuilding aggregates from a campaign that is still running.

    The events.jsonl of a live (or crashed) campaign ends with jobs
    that started but never finished — and possibly a torn final line
    from a writer that died mid-record.  ``results_from_events`` must
    aggregate exactly the finished jobs and tolerate the tail.
    """

    def finished(self, seed, use_probabilities, power):
        return {
            "event": "job_finished",
            "instance": "mul1",
            "dvs": "gradient",
            "seed": seed,
            "use_probabilities": use_probabilities,
            "power": power,
            "cpu_time": 1.0,
            "feasible": True,
            "modes": 4,
        }

    def events(self):
        return [
            {"event": "campaign_started", "campaign": "demo"},
            {"event": "job_started", "job_id": "a"},
            self.finished(0, False, 8e-3),
            {"event": "job_started", "job_id": "b"},
            self.finished(0, True, 6e-3),
            {"event": "job_started", "job_id": "c"},
            self.finished(1, False, 9e-3),
            # Job "d" started but has not finished yet.
            {"event": "job_started", "job_id": "d"},
        ]

    def test_counts_only_finished_jobs(self):
        from repro.analysis.reporting import results_from_events

        (result,) = results_from_events(self.events())
        assert result.example == "mul1"
        assert result.without.powers == [8e-3, 9e-3]
        assert result.with_probabilities.powers == [6e-3]
        assert result.runs == 2

    def test_tolerates_torn_tail_on_disk(self, tmp_path):
        import json

        from repro.analysis.reporting import results_from_events

        path = tmp_path / "events.jsonl"
        payload = "".join(
            json.dumps(event) + "\n" for event in self.events()
        )
        # A writer died mid-record: the last line has no newline and
        # is not valid JSON.
        payload += '{"event": "job_finis'
        path.write_text(payload)
        (result,) = results_from_events(path)
        assert result.without.powers == [8e-3, 9e-3]
        assert result.with_probabilities.powers == [6e-3]

    def test_empty_stream_yields_no_rows(self, tmp_path):
        from repro.analysis.reporting import results_from_events

        path = tmp_path / "events.jsonl"
        path.write_text("")
        assert results_from_events(path) == []
