"""Tests for the independent implementation validator."""

import dataclasses
import random

import pytest

from repro.mapping.encoding import MappingString
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.cosynthesis import synthesize
from repro.synthesis.evaluator import evaluate_mapping
from repro.validation import ValidationError, validate_implementation

from tests.conftest import make_two_mode_problem

FAST = SynthesisConfig(
    population_size=12, max_generations=15, convergence_generations=5
)


class TestValidImplementations:
    def test_evaluated_mapping_passes(self, two_mode_problem):
        impl = evaluate_mapping(
            two_mode_problem,
            MappingString.random(two_mode_problem, random.Random(0)),
            SynthesisConfig(),
        )
        validate_implementation(impl)

    def test_synthesis_result_passes(self, two_mode_problem):
        result = synthesize(two_mode_problem, FAST.with_updates(seed=1))
        validate_implementation(result.best)

    def test_dvs_result_passes(self, two_mode_problem):
        result = synthesize(
            two_mode_problem,
            FAST.with_updates(seed=2, dvs=DvsMethod.GRADIENT),
        )
        validate_implementation(result.best)

    def test_infeasible_but_consistent_passes(self):
        # Infeasibility is a property, not an inconsistency: an
        # implementation violating deadlines must still validate.
        problem = make_two_mode_problem(period=0.02)
        impl = evaluate_mapping(
            problem,
            MappingString(problem, ["PE0"] * 7),
            SynthesisConfig(),
        )
        assert not impl.metrics.is_timing_feasible
        validate_implementation(impl)

    def test_many_random_mappings_pass(self, two_mode_problem):
        for seed in range(15):
            impl = evaluate_mapping(
                two_mode_problem,
                MappingString.random(
                    two_mode_problem, random.Random(seed)
                ),
                SynthesisConfig(dvs=DvsMethod.GRADIENT),
            )
            validate_implementation(impl)


class TestTamperedImplementations:
    def make_impl(self, two_mode_problem):
        return evaluate_mapping(
            two_mode_problem,
            MappingString(two_mode_problem, ["PE0"] * 7),
            SynthesisConfig(),
        )

    def test_wrong_average_power_detected(self, two_mode_problem):
        impl = self.make_impl(two_mode_problem)
        broken_metrics = dataclasses.replace(
            impl.metrics, average_power=impl.metrics.average_power * 2
        )
        broken = dataclasses.replace(impl, metrics=broken_metrics)
        with pytest.raises(ValidationError, match="average power"):
            validate_implementation(broken)

    def test_missing_schedule_detected(self, two_mode_problem):
        impl = self.make_impl(two_mode_problem)
        schedules = dict(impl.schedules)
        del schedules["O2"]
        broken = dataclasses.replace(impl, schedules=schedules)
        with pytest.raises(ValidationError, match="no schedule"):
            validate_implementation(broken)

    def test_mapping_mismatch_detected(self, two_mode_problem):
        impl = self.make_impl(two_mode_problem)
        other_mapping = MappingString(
            two_mode_problem,
            ["PE1"] + ["PE0"] * 6,
        )
        broken = dataclasses.replace(impl, mapping=other_mapping)
        with pytest.raises(ValidationError, match="mapped"):
            validate_implementation(broken)

    def test_fabricated_timing_violation_detected(
        self, two_mode_problem
    ):
        impl = self.make_impl(two_mode_problem)
        broken_metrics = dataclasses.replace(
            impl.metrics,
            timing_violation={"O1": {"t1": 0.5}},
        )
        broken = dataclasses.replace(impl, metrics=broken_metrics)
        with pytest.raises(ValidationError, match="timing"):
            validate_implementation(broken)

    def test_fabricated_area_violation_detected(self, two_mode_problem):
        impl = self.make_impl(two_mode_problem)
        broken_metrics = dataclasses.replace(
            impl.metrics, area_violation={"PE1": 50.0}
        )
        broken = dataclasses.replace(impl, metrics=broken_metrics)
        with pytest.raises(ValidationError, match="area"):
            validate_implementation(broken)
