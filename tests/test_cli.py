"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.runs == 5

    def test_table2_only_filter(self):
        args = build_parser().parse_args(
            ["table2", "--only", "mul1", "mul2", "--runs", "2"]
        )
        assert args.only == ["mul1", "mul2"]
        assert args.runs == 2

    def test_only_rejects_unknown_instance(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--only", "mul99"])

    def test_synthesize_options(self):
        args = build_parser().parse_args(
            [
                "synthesize",
                "mul3",
                "--dvs",
                "gradient",
                "--no-probabilities",
                "--seed",
                "9",
            ]
        )
        assert args.problem == "mul3"
        assert args.dvs == "gradient"
        assert not args.probabilities
        assert args.seed == 9

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestInspect:
    def test_inspect_suite_instance(self, capsys):
        assert main(["inspect", "mul9"]) == 0
        out = capsys.readouterr().out
        assert "problem 'mul9'" in out
        assert "architecture" in out
        assert "transitions" in out

    def test_inspect_smartphone(self, capsys):
        assert main(["inspect", "smartphone"]) == 0
        out = capsys.readouterr().out
        assert "rlc" in out
        assert "GPP" in out


class TestSynthesize:
    def test_synthesize_small_instance(self, capsys):
        code = main(
            [
                "synthesize",
                "mul9",
                "--population",
                "10",
                "--generations",
                "8",
                "--convergence",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "average power" in out
        assert "generations:" in out


class TestSimulate:
    def test_simulate_command(self, capsys):
        code = main(
            [
                "simulate",
                "mul9",
                "--horizon",
                "50",
                "--population",
                "10",
                "--generations",
                "8",
                "--convergence",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated power" in out
        assert "Equation (1)" in out


class TestGanttFlag:
    def test_synthesize_with_gantt(self, capsys):
        code = main(
            [
                "synthesize",
                "mul9",
                "--gantt",
                "--population",
                "10",
                "--generations",
                "8",
                "--convergence",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "|" in out

    def test_save_mapping(self, capsys, tmp_path):
        target = tmp_path / "mapping.json"
        code = main(
            [
                "synthesize",
                "mul9",
                "--save-mapping",
                str(target),
                "--population",
                "10",
                "--generations",
                "8",
                "--convergence",
                "4",
            ]
        )
        assert code == 0
        assert target.exists()
        import json

        data = json.loads(target.read_text())
        assert data["problem"] == "mul9"


class TestTables:
    def test_table1_single_instance(self, capsys):
        code = main(
            [
                "table1",
                "--only",
                "mul9",
                "--runs",
                "1",
                "--population",
                "10",
                "--generations",
                "8",
                "--convergence",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "mul9" in out
        assert "vs paper" in out
