"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.runs == 5

    def test_table2_only_filter(self):
        args = build_parser().parse_args(
            ["table2", "--only", "mul1", "mul2", "--runs", "2"]
        )
        assert args.only == ["mul1", "mul2"]
        assert args.runs == 2

    def test_only_rejects_unknown_instance(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--only", "mul99"])

    def test_synthesize_options(self):
        args = build_parser().parse_args(
            [
                "synthesize",
                "mul3",
                "--dvs",
                "gradient",
                "--no-probabilities",
                "--seed",
                "9",
            ]
        )
        assert args.problem == "mul3"
        assert args.dvs == "gradient"
        assert not args.probabilities
        assert args.seed == 9
        assert not args.no_mode_cache

    def test_no_mode_cache_flag(self):
        from repro.cli import _config_from_args

        args = build_parser().parse_args(
            ["synthesize", "mul1", "--no-mode-cache"]
        )
        assert args.no_mode_cache
        assert _config_from_args(args).mode_cache is False
        default = build_parser().parse_args(["synthesize", "mul1"])
        assert _config_from_args(default).mode_cache is True

    def test_async_pool_flag(self):
        from repro.cli import _config_from_args

        default = build_parser().parse_args(["synthesize", "mul1"])
        assert _config_from_args(default).async_pool is True
        args = build_parser().parse_args(
            ["synthesize", "mul1", "--no-async-pool"]
        )
        assert args.no_async_pool
        assert _config_from_args(args).async_pool is False

    def test_vector_dvs_flags(self):
        from repro.cli import _config_from_args

        default = build_parser().parse_args(["synthesize", "mul1"])
        config = _config_from_args(default)
        assert config.vector_dvs is True
        assert config.dvs_warm_start is False

        args = build_parser().parse_args(
            ["synthesize", "mul1", "--no-vector-dvs"]
        )
        assert _config_from_args(args).vector_dvs is False

        args = build_parser().parse_args(
            ["synthesize", "mul1", "--dvs-warm-start"]
        )
        assert _config_from_args(args).dvs_warm_start is True

    def test_speculation_flags(self):
        from repro.cli import _config_from_args

        default = build_parser().parse_args(["synthesize", "mul1"])
        config = _config_from_args(default)
        assert config.speculative is True
        assert config.speculation_depth == 1

        args = build_parser().parse_args(
            ["synthesize", "mul1", "--no-speculation"]
        )
        assert args.no_speculation
        assert _config_from_args(args).speculative is False

        args = build_parser().parse_args(
            ["synthesize", "mul1", "--speculation-depth", "2"]
        )
        assert _config_from_args(args).speculation_depth == 2

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_options(self):
        args = build_parser().parse_args(
            ["campaign", "spec.json", "--out", "runs/demo", "--quiet"]
        )
        assert args.command == "campaign"
        assert args.spec == "spec.json"
        assert args.out == "runs/demo"
        assert args.quiet

    def test_campaign_resume_and_report(self):
        args = build_parser().parse_args(["campaign", "--resume", "runs/x"])
        assert args.resume == "runs/x"
        assert args.spec is None
        args = build_parser().parse_args(["campaign", "--report", "runs/x"])
        assert args.report == "runs/x"


class TestInspect:
    def test_inspect_suite_instance(self, capsys):
        assert main(["inspect", "mul9"]) == 0
        out = capsys.readouterr().out
        assert "problem 'mul9'" in out
        assert "architecture" in out
        assert "transitions" in out

    def test_inspect_smartphone(self, capsys):
        assert main(["inspect", "smartphone"]) == 0
        out = capsys.readouterr().out
        assert "rlc" in out
        assert "GPP" in out


class TestUnknownInstance:
    def test_error_lists_valid_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["inspect", "mul99"])
        message = str(excinfo.value)
        assert "unknown problem 'mul99'" in message
        assert "smartphone" in message  # full list of valid names


class TestSynthesize:
    def test_synthesize_small_instance(self, capsys):
        code = main(
            [
                "synthesize",
                "mul9",
                "--population",
                "10",
                "--generations",
                "8",
                "--convergence",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "average power" in out
        assert "generations:" in out


class TestSimulate:
    def test_simulate_command(self, capsys):
        code = main(
            [
                "simulate",
                "mul9",
                "--horizon",
                "50",
                "--population",
                "10",
                "--generations",
                "8",
                "--convergence",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated power" in out
        assert "Equation (1)" in out


class TestGanttFlag:
    def test_synthesize_with_gantt(self, capsys):
        code = main(
            [
                "synthesize",
                "mul9",
                "--gantt",
                "--population",
                "10",
                "--generations",
                "8",
                "--convergence",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "|" in out

    def test_save_mapping(self, capsys, tmp_path):
        target = tmp_path / "mapping.json"
        code = main(
            [
                "synthesize",
                "mul9",
                "--save-mapping",
                str(target),
                "--population",
                "10",
                "--generations",
                "8",
                "--convergence",
                "4",
            ]
        )
        assert code == 0
        assert target.exists()
        import json

        data = json.loads(target.read_text())
        assert data["problem"] == "mul9"


class TestCampaign:
    def _write_spec(self, tmp_path):
        import json

        from repro.runtime.spec import CampaignSpec
        from repro.synthesis.config import SynthesisConfig

        spec = CampaignSpec(
            name="cli-smoke",
            instances=["mul9"],
            runs=1,
            base_seed=400,
            config=SynthesisConfig(
                population_size=10,
                max_generations=8,
                convergence_generations=4,
            ),
            checkpoint_every=2,
        )
        path = tmp_path / "spec.json"
        spec.save(path)
        assert json.loads(path.read_text())["name"] == "cli-smoke"
        return path

    def test_init_spec_writes_loadable_template(self, capsys, tmp_path):
        from repro.runtime.spec import CampaignSpec

        target = tmp_path / "template.json"
        assert main(["campaign", "--init-spec", str(target)]) == 0
        assert "template campaign spec" in capsys.readouterr().out
        template = CampaignSpec.load(target)
        assert template.jobs()

    def test_run_report_resume_cycle(self, capsys, tmp_path):
        spec = self._write_spec(tmp_path)
        run_dir = tmp_path / "run"
        code = main(["campaign", str(spec), "--out", str(run_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign done: 2 jobs completed, 0 failed" in out
        assert "Campaign 'cli-smoke'" in out
        assert "mul9" in out

        # Reporting needs only the event stream.
        assert main(["campaign", "--report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Campaign report" in out
        assert "mul9" in out

        # Resuming a finished campaign skips every job.
        assert main(["campaign", "--resume", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "already complete, skipped" in out
        assert "campaign done: 2 jobs completed" in out

    def test_report_without_events_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "--report", str(tmp_path / "nowhere")])

    def test_missing_arguments_rejected(self):
        with pytest.raises(SystemExit, match="campaign needs"):
            main(["campaign"])

    def test_unknown_instance_in_spec_fails_job(self, capsys, tmp_path):
        import json

        spec = self._write_spec(tmp_path)
        data = json.loads(spec.read_text())
        data["instances"] = ["mul99"]
        spec.write_text(json.dumps(data))
        code = main(["campaign", str(spec), "--out", str(tmp_path / "r")])
        out = capsys.readouterr().out
        assert code == 1  # failures reported via exit code
        assert "FAILED" in out
        assert "unknown instance" in out


class TestCampaignStatusTail:
    """--status / --tail work from an event stream alone."""

    def _write_run_dir(self, tmp_path, *, finished):
        import json

        events = [
            {"seq": 0, "ts": 100.0, "event": "campaign_started",
             "campaign": "obs", "total_jobs": 3, "pending_jobs": 3},
            {"seq": 1, "ts": 100.0, "event": "job_started",
             "job_id": "a", "attempt": 1, "resumed_from": 0},
            {"seq": 2, "ts": 110.0, "event": "job_finished",
             "job_id": "a", "power": 0.05, "cpu_time": 9.5,
             "generations": 8, "evaluations": 80},
            {"seq": 3, "ts": 110.0, "event": "job_started",
             "job_id": "b", "attempt": 1, "resumed_from": 0},
            {"seq": 4, "ts": 111.0, "event": "job_failed",
             "job_id": "b", "error": "no feasible mapping"},
            {"seq": 5, "ts": 111.0, "event": "job_started",
             "job_id": "c", "attempt": 1, "resumed_from": 0},
            {"seq": 6, "ts": 115.0, "event": "generation",
             "job_id": "c", "generation": 4, "best_fitness": 1.25,
             "evaluations": 40},
        ]
        if finished:
            events += [
                {"seq": 7, "ts": 120.0, "event": "job_finished",
                 "job_id": "c", "power": 0.04, "cpu_time": 8.0,
                 "generations": 8, "evaluations": 80},
                {"seq": 8, "ts": 120.0, "event": "campaign_finished",
                 "campaign": "obs", "completed_jobs": 2,
                 "failed_jobs": 1},
            ]
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        with open(run_dir / "events.jsonl", "w") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        return run_dir

    def test_status_mid_campaign(self, capsys, tmp_path):
        run_dir = self._write_run_dir(tmp_path, finished=False)
        assert main(["campaign", "--status", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "campaign 'obs': running" in out
        assert "2/3 jobs (67%)" in out
        assert "1 completed" in out and "1 failed" in out
        assert "running: c (generation 4)" in out
        assert "failed: b: no feasible mapping" in out
        assert "eta:" in out

    def test_status_finished_campaign(self, capsys, tmp_path):
        run_dir = self._write_run_dir(tmp_path, finished=True)
        assert main(["campaign", "--status", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "campaign 'obs': finished" in out
        assert "3/3 jobs (100%)" in out
        assert "eta" not in out

    def test_status_missing_run_dir_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no event stream"):
            main(["campaign", "--status", str(tmp_path / "nowhere")])

    def test_status_without_summary_skips_pool_stats(
        self, capsys, tmp_path
    ):
        run_dir = self._write_run_dir(tmp_path, finished=False)
        assert main(["campaign", "--status", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "pool:" not in out

    def test_status_renders_na_for_pr3_era_summary(
        self, capsys, tmp_path
    ):
        # Regression: --status used to crash formatting
        # pool_utilisation when the field is absent from an older
        # run_summary.json (pre-dispatch-window schema, or a run that
        # fell back to serial mid-campaign).
        import pathlib
        import shutil

        fixture = (
            pathlib.Path(__file__).resolve().parent
            / "fixtures"
            / "run_summary_pr3.json"
        )
        run_dir = self._write_run_dir(tmp_path, finished=True)
        shutil.copy(fixture, run_dir / "run_summary.json")
        assert main(["campaign", "--status", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "pool: workers n/a, utilisation n/a" in out
        assert "in-process:" in out

    def test_tail_no_follow_prints_existing_events(self, capsys, tmp_path):
        run_dir = self._write_run_dir(tmp_path, finished=False)
        code = main(["campaign", "--tail", str(run_dir), "--no-follow"])
        out = capsys.readouterr().out
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == 7
        assert "campaign 'obs' started: 3/3 jobs pending" in lines[0]
        assert "[a] finished: 50.000 mW" in out
        assert "[b] FAILED: no feasible mapping" in out
        assert "[c] generation 4" in out

    def test_tail_follow_stops_at_campaign_end(self, capsys, tmp_path):
        # On a finished stream, follow mode terminates by itself at the
        # campaign_finished event — no --no-follow needed.
        run_dir = self._write_run_dir(tmp_path, finished=True)
        assert main(["campaign", "--tail", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines()[-1].endswith(
            "campaign 'obs' finished: 2 completed, 1 failed"
        )

    def test_tail_missing_run_dir_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no event stream"):
            main(
                ["campaign", "--tail", str(tmp_path / "gone"),
                 "--no-follow"]
            )

    def test_status_on_real_run_dir(self, capsys, tmp_path):
        # End-to-end: a real (tiny) campaign leaves a run directory
        # that --status reads back as finished, with a summary on disk.
        from repro.obs.summary import load_run_summary
        from repro.runtime.spec import CampaignSpec
        from repro.synthesis.config import SynthesisConfig

        spec = CampaignSpec(
            name="cli-status",
            instances=["mul9"],
            runs=1,
            base_seed=7,
            config=SynthesisConfig(
                population_size=10,
                max_generations=4,
                convergence_generations=10,
            ),
        )
        path = tmp_path / "spec.json"
        spec.save(path)
        run_dir = tmp_path / "run"
        assert main(
            ["campaign", str(path), "--out", str(run_dir), "--quiet"]
        ) == 0
        capsys.readouterr()
        assert main(["campaign", "--status", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "campaign 'cli-status': finished" in out
        assert "2/2 jobs (100%)" in out
        assert load_run_summary(run_dir)["jobs"]["completed"] == 2


class TestTables:
    def test_table1_single_instance(self, capsys):
        code = main(
            [
                "table1",
                "--only",
                "mul9",
                "--runs",
                "1",
                "--population",
                "10",
                "--generations",
                "8",
                "--convergence",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "mul9" in out
        assert "vs paper" in out


class TestProblemsCommand:
    def test_parser_accepts_problems(self):
        args = build_parser().parse_args(["problems"])
        assert args.command == "problems"

    def test_lists_registry_with_mode_counts(self, capsys):
        assert main(["problems"]) == 0
        out = capsys.readouterr().out
        header, *rows = out.strip().splitlines()
        assert "modes" in header and "genes" in header
        names = [row.split()[0] for row in rows]
        assert "mul1" in names
        assert "smartphone" in names
        smartphone_row = next(r for r in rows if r.startswith("smartphone"))
        assert smartphone_row.split()[1] == "8"


class TestAdaptCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["adapt", "mul1"])
        assert args.command == "adapt"
        assert args.problem == "mul1"
        assert args.trace is None
        assert args.steps == 200
        assert args.library is None
        assert args.out is None

    def test_parser_options(self):
        args = build_parser().parse_args(
            [
                "adapt",
                "smartphone",
                "--trace",
                "trace.json",
                "--steps",
                "50",
                "--seed",
                "4",
            ]
        )
        assert args.trace == "trace.json"
        assert args.steps == 50
        assert args.seed == 4

    def test_adapt_samples_a_trace_and_reports(self, capsys, tmp_path):
        out_dir = tmp_path / "run"
        code = main(
            [
                "adapt",
                "mul1",
                "--steps",
                "30",
                "--population",
                "8",
                "--generations",
                "6",
                "--seed",
                "1",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptation over" in out
        assert "final design:" in out
        assert "Ψ estimate" in out
        assert (out_dir / "events.jsonl").exists()
        assert (out_dir / "library.json").exists()

    def test_adapt_with_explicit_trace_file(self, capsys, tmp_path):
        import json

        from repro.benchgen import registry

        modes = registry.get("mul1").omsm.mode_names
        trace = [[mode, 5.0] for mode in modes] * 3
        trace_path = tmp_path / "trace.json"
        trace_path.write_text(json.dumps(trace))
        code = main(
            [
                "adapt",
                "mul1",
                "--trace",
                str(trace_path),
                "--population",
                "8",
                "--generations",
                "6",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"adaptation over {len(trace) * 5.0:.1f} s" in out

    def test_malformed_trace_rejected(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        trace_path.write_text('{"not": "a list"}')
        with pytest.raises(SystemExit, match="must be a JSON list"):
            main(
                [
                    "adapt",
                    "mul1",
                    "--trace",
                    str(trace_path),
                    "--population",
                    "8",
                    "--generations",
                    "6",
                ]
            )

    def test_missing_trace_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read trace"):
            main(
                [
                    "adapt",
                    "mul1",
                    "--trace",
                    str(tmp_path / "nope.json"),
                    "--population",
                    "8",
                    "--generations",
                    "6",
                ]
            )
