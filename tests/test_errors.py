"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ArchitectureError,
    MappingError,
    ReproError,
    SchedulingError,
    SpecificationError,
    SynthesisError,
    TechnologyError,
    VoltageScalingError,
)
from repro.validation import ValidationError


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ArchitectureError,
            MappingError,
            SchedulingError,
            SpecificationError,
            SynthesisError,
            TechnologyError,
            VoltageScalingError,
            ValidationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catching_base_catches_library_failures(self):
        from repro.specification import Task

        try:
            Task("", "T")
        except ReproError as error:
            assert "name" in str(error)
        else:  # pragma: no cover
            pytest.fail("expected a ReproError")

    def test_distinct_branches_do_not_cross(self):
        assert not issubclass(SchedulingError, SpecificationError)
        assert not issubclass(TechnologyError, ArchitectureError)
