"""Unit tests for the smart phone benchmark (paper Fig. 1 / Table 3)."""

import pytest

from repro.benchgen.smartphone import (
    smartphone_architecture,
    smartphone_problem,
    smartphone_technology,
)


@pytest.fixture(scope="module")
def problem():
    return smartphone_problem()


class TestOmsmStructure:
    def test_eight_modes(self, problem):
        assert len(problem.omsm) == 8

    def test_paper_probabilities(self, problem):
        vector = problem.omsm.probability_vector()
        assert vector["rlc"] == pytest.approx(0.74)
        assert vector["gsm_codec_rlc"] == pytest.approx(0.09)
        assert vector["mp3_rlc"] == pytest.approx(0.10)
        assert vector["network_search"] == pytest.approx(0.01)
        assert sum(vector.values()) == pytest.approx(1.0)

    def test_node_counts_in_paper_range(self, problem):
        # The paper states 5-88 nodes and 0-137 edges per mode.
        for mode in problem.omsm.modes:
            assert 5 <= len(mode.task_graph) <= 88
            assert 0 <= len(mode.task_graph.edges) <= 137

    def test_rlc_is_smallest_frequent_mode(self, problem):
        rlc = problem.omsm.mode("rlc")
        assert len(rlc.task_graph) <= 8

    def test_cross_mode_sharing_exists(self, problem):
        shared = problem.omsm.shared_task_types()
        # The codecs share IDCT/Huffman/dequantiser blocks, and RLC
        # appears in several composite modes.
        assert "IDCT" in shared
        assert "HD" in shared
        assert "MEAS" in shared

    def test_transitions_follow_fig_1a(self, problem):
        omsm = problem.omsm
        assert omsm.has_transition("network_search", "rlc")
        assert omsm.has_transition("rlc", "gsm_codec_rlc")
        assert omsm.has_transition("rlc", "mp3_rlc")
        assert omsm.has_transition("take_photo", "photo_rlc")
        # No direct jump from GSM call to MP3 playback.
        assert not omsm.has_transition("gsm_codec_rlc", "mp3_rlc")

    def test_mp3_deadlines_from_figure(self, problem):
        graph = problem.omsm.mode("mp3_rlc").task_graph
        deq = [t for t in graph if t.task_type == "DEQ"]
        assert deq and all(t.deadline == 0.025 for t in deq)
        # Fig. 1b's IDCT θ=15 ms applies to the first granule; the
        # second granule's output is due with the 25 ms frame period.
        first_granule = [
            t
            for t in graph
            if t.task_type == "IDCT" and "g0" in t.name
        ]
        second_granule = [
            t
            for t in graph
            if t.task_type == "IDCT" and "g1" in t.name
        ]
        assert first_granule and all(
            t.deadline == 0.015 for t in first_granule
        )
        assert second_granule and all(
            t.deadline is None for t in second_granule
        )


class TestArchitecture:
    def test_paper_architecture(self, problem):
        arch = problem.architecture
        assert [pe.name for pe in arch.pes] == ["GPP", "ASIC1", "ASIC2"]
        assert arch.pe("GPP").dvs_enabled
        assert not arch.pe("ASIC1").dvs_enabled
        assert len(arch.links) == 1

    def test_dvs_can_be_disabled(self):
        fixed = smartphone_problem(dvs_enabled=False)
        assert not fixed.architecture.pe("GPP").dvs_enabled

    def test_fresh_instances_are_independent(self):
        a = smartphone_problem(dvs_enabled=False)
        b = smartphone_problem()
        assert b.architecture.pe("GPP").dvs_enabled


class TestTechnology:
    def test_hw_speedup_in_stated_range(self):
        tech = smartphone_technology()
        arch = smartphone_architecture()
        software = {p.name for p in arch.software_pes()}
        for entry in tech:
            if entry.pe in software:
                continue
            gpp = tech.implementation(entry.task_type, "GPP")
            speedup = gpp.exec_time / entry.exec_time
            # The paper assumes hardware 5x to 100x faster.
            assert 5.0 <= speedup <= 100.0

    def test_every_type_runs_on_gpp(self, problem):
        for task_type in problem.omsm.all_task_types():
            assert problem.technology.supports(task_type, "GPP")

    def test_control_tasks_are_software_only(self, problem):
        for task_type in ("RRC", "HDR", "STORE", "PWR"):
            assert problem.technology.candidate_pes(task_type) == (
                "GPP",
            )

    def test_dsp_blocks_have_hardware(self, problem):
        for task_type in ("FFT", "IDCT", "HD", "DEQ", "STP", "LTP"):
            candidates = problem.technology.candidate_pes(task_type)
            assert len(candidates) >= 2


class TestFeasibility:
    def test_all_software_mapping_schedulable(self, problem):
        # The GPP alone can run every mode (deadlines may be missed,
        # but scheduling must succeed and validate).
        from repro.mapping.cores import allocate_cores
        from repro.mapping.encoding import MappingString
        from repro.scheduling.list_scheduler import schedule_mode

        genome = MappingString(
            problem, ["GPP"] * problem.genome_length()
        )
        cores = allocate_cores(problem, genome)
        for mode in problem.omsm.modes:
            schedule = schedule_mode(
                problem, mode, genome.mode_mapping(mode.name), cores
            )
            schedule.validate(mode, problem.architecture)

    def test_feasible_solution_exists(self, problem):
        # A moderately sized synthesis run must find a fully feasible
        # mapping (area within both ASICs, all deadlines met).
        from repro.synthesis import SynthesisConfig, synthesize

        result = synthesize(
            problem,
            SynthesisConfig(
                seed=0,
                population_size=30,
                max_generations=60,
                convergence_generations=15,
            ),
        )
        assert result.is_feasible
