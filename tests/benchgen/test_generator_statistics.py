"""Statistical sanity of the instance generator across many seeds.

Single instances can legitimately be extreme (a mode with no shared
types, an architecture with one link); these tests check that the
*distribution* over seeds matches the generator's documented intent.
"""

import statistics

import pytest

from repro.benchgen.multimode import MultiModeSpec, generate_problem


def spec(seed):
    return MultiModeSpec(
        name=f"stat{seed}",
        seed=seed,
        mode_tasks=(10, 14, 12, 9),
        pe_count=3,
        cl_count=1,
    )


@pytest.fixture(scope="module")
def problems():
    return [generate_problem(spec(seed)) for seed in range(30)]


class TestDistributions:
    def test_most_instances_share_types_across_modes(self, problems):
        sharing = sum(
            1 for p in problems if p.omsm.shared_task_types()
        )
        assert sharing >= len(problems) * 0.7

    def test_dominant_probability_distribution(self, problems):
        dominants = [
            max(m.probability for m in p.omsm.modes) for p in problems
        ]
        assert all(0.55 <= d <= 0.85 for d in dominants)
        # The draw is uniform over the range: the mean sits mid-range.
        assert 0.6 < statistics.mean(dominants) < 0.8

    def test_hardware_present_in_every_instance(self, problems):
        for p in problems:
            assert p.architecture.hardware_pes()

    def test_dvs_gpp_always(self, problems):
        for p in problems:
            assert p.architecture.pe("GPP0").dvs_enabled

    def test_area_pressure_everywhere(self, problems):
        for p in problems:
            for pe in p.architecture.hardware_pes():
                demand = sum(
                    e.area for e in p.technology if e.pe == pe.name
                )
                if demand > 0:
                    assert pe.area < demand

    def test_speedups_within_stated_band(self, problems):
        for p in problems:
            software = {
                pe.name for pe in p.architecture.software_pes()
            }
            for entry in p.technology:
                if entry.pe in software:
                    continue
                gpp = p.technology.implementation(
                    entry.task_type, "GPP0"
                )
                assert (
                    5.0 - 1e-9
                    <= gpp.exec_time / entry.exec_time
                    <= 100.0 + 1e-9
                )

    def test_hardware_energy_fraction(self, problems):
        # HW energy is 0.1-1 % of the software energy by construction.
        for p in problems:
            software = {
                pe.name for pe in p.architecture.software_pes()
            }
            for entry in p.technology:
                if entry.pe in software:
                    continue
                gpp = p.technology.implementation(
                    entry.task_type, "GPP0"
                )
                # GPP entry power is jittered +-20 % around the base,
                # so allow a generous band.
                ratio = entry.energy / gpp.energy
                assert 5e-4 < ratio < 2e-2

    def test_genome_lengths_match_task_counts(self, problems):
        for p in problems:
            assert p.genome_length() == sum(
                len(m.task_graph) for m in p.omsm.modes
            )
