"""Unit tests for the multi-mode instance generator."""

import pytest

from repro.benchgen.multimode import MultiModeSpec, generate_problem


def small_spec(**overrides):
    defaults = dict(
        name="test",
        seed=42,
        mode_tasks=(8, 10, 9),
        pe_count=3,
        cl_count=2,
    )
    defaults.update(overrides)
    return MultiModeSpec(**defaults)


class TestSpecValidation:
    def test_needs_modes(self):
        with pytest.raises(ValueError):
            MultiModeSpec(name="x", seed=0, mode_tasks=())

    def test_needs_tasks(self):
        with pytest.raises(ValueError):
            MultiModeSpec(name="x", seed=0, mode_tasks=(5, 0))

    def test_needs_pes_and_links(self):
        with pytest.raises(ValueError):
            MultiModeSpec(name="x", seed=0, mode_tasks=(5,), pe_count=0)
        with pytest.raises(ValueError):
            MultiModeSpec(name="x", seed=0, mode_tasks=(5,), cl_count=0)

    def test_mode_count(self):
        assert small_spec().mode_count == 3


class TestGeneratedStructure:
    def test_counts_match_spec(self):
        problem = generate_problem(small_spec())
        assert len(problem.omsm) == 3
        for mode, expected in zip(problem.omsm.modes, (8, 10, 9)):
            assert len(mode.task_graph) == expected
        assert len(problem.architecture.pes) == 3
        assert len(problem.architecture.links) == 2

    def test_probabilities_sum_to_one(self):
        problem = generate_problem(small_spec())
        total = sum(m.probability for m in problem.omsm.modes)
        assert total == pytest.approx(1.0)

    def test_probabilities_are_skewed(self):
        problem = generate_problem(small_spec())
        dominant = max(m.probability for m in problem.omsm.modes)
        assert dominant >= 0.55

    def test_first_pe_is_software(self):
        problem = generate_problem(small_spec())
        assert problem.architecture.pes[0].is_software

    def test_at_least_one_hardware_pe(self):
        for seed in range(20):
            problem = generate_problem(small_spec(seed=seed))
            assert problem.architecture.hardware_pes()

    def test_fully_connected(self):
        problem = generate_problem(small_spec())
        assert problem.architecture.is_fully_connected()

    def test_every_type_has_software_implementation(self):
        problem = generate_problem(small_spec())
        software = {p.name for p in problem.architecture.software_pes()}
        for task_type in problem.omsm.all_task_types():
            candidates = set(
                problem.technology.candidate_pes(task_type)
            )
            assert candidates & software

    def test_hardware_faster_and_cheaper(self):
        problem = generate_problem(small_spec())
        software = {p.name for p in problem.architecture.software_pes()}
        for entry in problem.technology:
            if entry.pe in software:
                continue
            gpp = problem.technology.implementation(
                entry.task_type, "GPP0"
            )
            assert entry.exec_time < gpp.exec_time
            assert entry.energy < gpp.energy
            assert entry.area > 0

    def test_hw_speedup_in_paper_range(self):
        problem = generate_problem(small_spec())
        software = {p.name for p in problem.architecture.software_pes()}
        for entry in problem.technology:
            if entry.pe in software:
                continue
            gpp = problem.technology.implementation(
                entry.task_type, "GPP0"
            )
            speedup = gpp.exec_time / entry.exec_time
            assert 5.0 <= speedup <= 100.0 + 1e-9

    def test_area_pressure_exists(self):
        # HW components must be smaller than total demand: mapping
        # everything into hardware should be impossible.
        problem = generate_problem(small_spec())
        for pe in problem.architecture.hardware_pes():
            demand = sum(
                entry.area
                for entry in problem.technology
                if entry.pe == pe.name
            )
            if demand > 0:
                assert pe.area < demand

    def test_transitions_cover_ring(self):
        problem = generate_problem(small_spec())
        names = problem.omsm.mode_names
        for src, dst in zip(names, names[1:] + names[:1]):
            assert problem.omsm.has_transition(src, dst)
            assert problem.omsm.has_transition(dst, src)

    def test_periods_leave_slack(self):
        # The fastest-software critical path must fit in the period.
        from repro.scheduling.mobility import critical_path_length

        problem = generate_problem(small_spec())
        software = [p.name for p in problem.architecture.software_pes()]
        for mode in problem.omsm.modes:
            def best_sw(name, _mode=mode):
                task = _mode.task_graph.task(name)
                return min(
                    problem.technology.implementation(
                        task.task_type, pe
                    ).exec_time
                    for pe in software
                )

            assert (
                critical_path_length(mode, best_sw) <= mode.period
            )


class TestDeterminism:
    def test_same_seed_same_problem(self):
        a = generate_problem(small_spec())
        b = generate_problem(small_spec())
        assert a.omsm.probability_vector() == b.omsm.probability_vector()
        assert [p.name for p in a.architecture.pes] == [
            p.name for p in b.architecture.pes
        ]
        assert len(a.technology) == len(b.technology)
        for entry_a, entry_b in zip(a.technology, b.technology):
            assert entry_a == entry_b

    def test_different_seed_differs(self):
        a = generate_problem(small_spec(seed=1))
        b = generate_problem(small_spec(seed=2))
        assert (
            a.omsm.probability_vector() != b.omsm.probability_vector()
        )


class TestDominantAssignment:
    def test_smallest(self):
        spec = small_spec(dominant_assignment="smallest")
        problem = generate_problem(spec)
        sizes = {
            m.name: len(m.task_graph) for m in problem.omsm.modes
        }
        dominant = max(
            problem.omsm.modes, key=lambda m: m.probability
        )
        assert sizes[dominant.name] == min(sizes.values())

    def test_largest(self):
        spec = small_spec(dominant_assignment="largest")
        problem = generate_problem(spec)
        sizes = {
            m.name: len(m.task_graph) for m in problem.omsm.modes
        }
        dominant = max(
            problem.omsm.modes, key=lambda m: m.probability
        )
        assert sizes[dominant.name] == max(sizes.values())

    def test_dominant_period_stretch(self):
        plain = generate_problem(small_spec())
        stretched = generate_problem(
            small_spec(dominant_period_stretch=(3.0, 3.0))
        )
        dominant_plain = max(
            plain.omsm.modes, key=lambda m: m.probability
        )
        dominant_stretched = max(
            stretched.omsm.modes, key=lambda m: m.probability
        )
        assert dominant_stretched.name == dominant_plain.name
        assert (
            dominant_stretched.period > dominant_plain.period * 2.0
        )
