"""Unit tests for the mul1-mul12 suite definition."""

import pytest

from repro.analysis.paper_data import TABLE1
from repro.benchgen.suite import SUITE_SPECS, load_suite, suite_problem


class TestSuiteDefinition:
    def test_twelve_instances(self):
        assert len(SUITE_SPECS) == 12
        assert [s.name for s in SUITE_SPECS] == [
            f"mul{i}" for i in range(1, 13)
        ]

    def test_mode_counts_match_paper_table(self):
        paper_modes = {row.example: row.modes for row in TABLE1}
        for spec in SUITE_SPECS:
            assert spec.mode_count == paper_modes[spec.name]

    def test_parameters_within_paper_ranges(self):
        for spec in SUITE_SPECS:
            assert 3 <= spec.mode_count <= 5
            assert all(8 <= t <= 32 for t in spec.mode_tasks)
            assert 2 <= spec.pe_count <= 4
            assert 1 <= spec.cl_count <= 3

    def test_unique_seeds(self):
        seeds = [s.seed for s in SUITE_SPECS]
        assert len(set(seeds)) == len(seeds)


class TestSuiteLoading:
    def test_lookup_by_name(self):
        problem = suite_problem("mul5")
        assert problem.name == "mul5"
        assert len(problem.omsm) == 3

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="mul99"):
            suite_problem("mul99")

    def test_load_all(self):
        problems = load_suite()
        assert [p.name for p in problems] == [
            s.name for s in SUITE_SPECS
        ]

    def test_regeneration_is_stable(self):
        first = suite_problem("mul3")
        second = suite_problem("mul3")
        assert (
            first.omsm.probability_vector()
            == second.omsm.probability_vector()
        )
        assert first.genome_length() == second.genome_length()
