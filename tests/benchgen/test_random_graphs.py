"""Unit tests for the TGFF-style random graph generator."""

import random

import pytest

from repro.benchgen.random_graphs import random_task_graph


class TestStructure:
    def test_task_count(self):
        graph = random_task_graph(
            "g", random.Random(0), task_count=20, type_pool=["A", "B"]
        )
        assert len(graph) == 20

    def test_acyclic_by_construction(self):
        for seed in range(10):
            graph = random_task_graph(
                "g",
                random.Random(seed),
                task_count=30,
                type_pool=["A", "B", "C"],
            )
            # TaskGraph construction validates acyclicity.
            assert len(graph.topological_order()) == 30

    def test_connected_layers(self):
        # Every non-source task has at least one predecessor.
        graph = random_task_graph(
            "g", random.Random(1), task_count=25, type_pool=["A"]
        )
        sources = set(graph.sources())
        for task in graph:
            if task.name not in sources:
                assert graph.predecessors(task.name)

    def test_types_from_pool(self):
        pool = ["X", "Y", "Z"]
        graph = random_task_graph(
            "g", random.Random(2), task_count=15, type_pool=pool
        )
        assert graph.task_types() <= set(pool)

    def test_explicit_types(self):
        types = ["T0", "T1"] * 5
        graph = random_task_graph(
            "g",
            random.Random(3),
            task_count=10,
            type_pool=[],
            task_types=types,
        )
        assert [t.task_type for t in graph] == types

    def test_explicit_types_length_checked(self):
        with pytest.raises(ValueError):
            random_task_graph(
                "g",
                random.Random(3),
                task_count=10,
                type_pool=[],
                task_types=["T0"],
            )

    def test_width_respected(self):
        graph = random_task_graph(
            "g",
            random.Random(4),
            task_count=40,
            type_pool=["A"],
            max_width=3,
        )
        # No topological "layer" wider than 3 at generation time means
        # at most 3 sources.
        assert len(graph.sources()) <= 3

    def test_payloads_in_range(self):
        graph = random_task_graph(
            "g",
            random.Random(5),
            task_count=20,
            type_pool=["A"],
            data_bits_range=(100.0, 200.0),
        )
        for edge in graph.edges:
            assert 100.0 <= edge.data_bits <= 200.0


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = random_task_graph(
            "g", random.Random(9), task_count=20, type_pool=["A", "B"]
        )
        b = random_task_graph(
            "g", random.Random(9), task_count=20, type_pool=["A", "B"]
        )
        assert [t.name for t in a] == [t.name for t in b]
        assert [t.task_type for t in a] == [t.task_type for t in b]
        assert [e.key for e in a.edges] == [e.key for e in b.edges]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            random_task_graph(
                "g", random.Random(0), task_count=0, type_pool=["A"]
            )
        with pytest.raises(ValueError):
            random_task_graph(
                "g", random.Random(0), task_count=5, type_pool=[]
            )
