"""Structural floors of the stress-tier instances.

The stress tier exists so PV-DVS kernel performance can be measured
where graph size dominates over fixed per-call overhead — the floors
asserted here (12+ modes, 200+ tasks per mode, 6+ PEs) are what
``benchmarks/bench_dvs.py`` relies on.  Generation must stay
deterministic per seed, like the paper suite.
"""

import pytest

from repro.benchgen import registry
from repro.benchgen.stress import STRESS_SPECS, stress_problem
from repro.problem import Problem

STRESS_NAMES = tuple(spec.name for spec in STRESS_SPECS)


def test_stress_instances_registered():
    names = registry.names()
    assert "stress1" in names
    assert "stress2" in names


@pytest.mark.parametrize("name", STRESS_NAMES)
def test_structural_floors(name):
    problem = registry.get(name)
    assert isinstance(problem, Problem)
    assert problem.name == name
    modes = problem.omsm.modes
    assert len(modes) >= 12
    for mode in modes:
        assert len(mode.task_graph.tasks) >= 200
    assert len(problem.architecture.pes) >= 6


def test_generation_is_deterministic():
    first = stress_problem("stress1")
    second = stress_problem("stress1")
    assert first is not second
    assert [m.name for m in first.omsm.modes] == [
        m.name for m in second.omsm.modes
    ]
    for a, b in zip(first.omsm.modes, second.omsm.modes):
        assert len(a.task_graph.tasks) == len(b.task_graph.tasks)
        assert len(a.task_graph.edges) == len(b.task_graph.edges)


def test_unknown_stress_name_lists_valid_ones():
    with pytest.raises(KeyError) as excinfo:
        stress_problem("stress99")
    message = excinfo.value.args[0]
    assert "stress99" in message
    assert "stress1" in message
