"""Tests for the TGFF-format reader/writer."""

import pytest

from repro.errors import SpecificationError
from repro.benchgen.tgff import (
    dump_tgff,
    load_tgff,
    parse_tgff,
    save_tgff,
)
from repro.specification import CommEdge, Task, TaskGraph

SAMPLE = """
# a sample in the classic dialect
@MSG_SIZES {
  0 512
  1 4096
}

@TASK_GRAPH 0 {
  PERIOD 0.025
  TASK t0_0  TYPE 2
  TASK t0_1  TYPE 7
  TASK t0_2  TYPE 2
  ARC a0_0   FROM t0_0 TO t0_1 TYPE 0
  ARC a0_1   FROM t0_1 TO t0_2 TYPE 1
}

@TASK_GRAPH 1 {
  TASK t1_0  TYPE 4
}
"""


class TestParsing:
    def test_graph_count_and_periods(self):
        graphs = parse_tgff(SAMPLE)
        assert len(graphs) == 2
        assert graphs[0][1] == pytest.approx(0.025)
        assert graphs[1][1] is None

    def test_tasks_and_types(self):
        graph, _ = parse_tgff(SAMPLE)[0]
        assert graph.task_names == ("t0_0", "t0_1", "t0_2")
        assert graph.task("t0_0").task_type == "T2"
        assert graph.task("t0_1").task_type == "T7"

    def test_arcs_resolve_message_sizes(self):
        graph, _ = parse_tgff(SAMPLE)[0]
        assert graph.edge("t0_0", "t0_1").data_bits == 512.0
        assert graph.edge("t0_1", "t0_2").data_bits == 4096.0

    def test_unknown_arc_type_uses_default(self):
        text = """@TASK_GRAPH 0 {
          TASK a TYPE 0
          TASK b TYPE 1
          ARC x FROM a TO b TYPE 9
        }"""
        graph, _ = parse_tgff(text, default_message_bits=777.0)[0]
        assert graph.edge("a", "b").data_bits == 777.0

    def test_comments_ignored(self):
        text = """@TASK_GRAPH 0 {  # trailing
          TASK a TYPE 0  # a task
          # full-line comment
        }"""
        graph, _ = parse_tgff(text)[0]
        assert len(graph) == 1

    def test_unknown_statement_rejected(self):
        text = """@TASK_GRAPH 0 {
          BANANA 7
        }"""
        with pytest.raises(SpecificationError, match="unrecognised"):
            parse_tgff(text)

    def test_unterminated_block_rejected(self):
        with pytest.raises(SpecificationError, match="unterminated"):
            parse_tgff("@TASK_GRAPH 0 {\n TASK a TYPE 0\n")

    def test_duplicate_graph_id_rejected(self):
        text = (
            "@TASK_GRAPH 0 {\n TASK a TYPE 0\n}\n"
            "@TASK_GRAPH 0 {\n TASK b TYPE 0\n}\n"
        )
        with pytest.raises(SpecificationError, match="duplicate"):
            parse_tgff(text)

    def test_arc_to_unknown_task_rejected(self):
        text = """@TASK_GRAPH 0 {
          TASK a TYPE 0
          ARC x FROM a TO ghost TYPE 0
        }"""
        with pytest.raises(SpecificationError):
            parse_tgff(text)


class TestRoundtrip:
    def make_graphs(self):
        graph = TaskGraph(
            "g",
            [Task("a", "T1"), Task("b", "T2"), Task("c", "T1")],
            [CommEdge("a", "b", 128.0), CommEdge("b", "c", 4096.0)],
        )
        single = TaskGraph("h", [Task("x", "T9")])
        return [(graph, 0.04), (single, None)]

    def test_dump_and_parse(self):
        rendered = dump_tgff(self.make_graphs())
        parsed = parse_tgff(rendered)
        assert len(parsed) == 2
        first, period = parsed[0]
        assert period == pytest.approx(0.04)
        assert first.task_names == ("a", "b", "c")
        assert first.task("a").task_type == "T1"
        assert first.edge("a", "b").data_bits == 128.0
        assert first.edge("b", "c").data_bits == 4096.0

    def test_non_numeric_types_rejected_on_export(self):
        graph = TaskGraph("g", [Task("a", "FFT")])
        with pytest.raises(SpecificationError, match="numeric"):
            dump_tgff([(graph, None)])

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "suite.tgff"
        save_tgff(self.make_graphs(), path)
        loaded = load_tgff(path)
        assert len(loaded) == 2
        assert loaded[0][0].task_names == ("a", "b", "c")

    def test_generated_suite_graph_exports(self, tmp_path):
        # Graphs from the random generator use pool types like 'S01' /
        # 'M0T03' which are not numeric -> export must refuse loudly
        # rather than write something other tools misread.
        import random

        from repro.benchgen.random_graphs import random_task_graph

        graph = random_task_graph(
            "g",
            random.Random(0),
            task_count=6,
            type_pool=["T0", "T1", "T2"],
        )
        save_tgff([(graph, 0.1)], tmp_path / "ok.tgff")
        loaded = load_tgff(tmp_path / "ok.tgff")
        assert loaded[0][0].task_names == graph.task_names
