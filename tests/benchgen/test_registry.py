"""The named problem registry shared by CLI, facade and runtime."""

import pytest

from repro.benchgen import registry
from repro.benchgen.suite import SUITE_SPECS
from repro.problem import Problem


class TestBuiltins:
    def test_suite_and_smartphone_registered(self):
        names = registry.names()
        for spec in SUITE_SPECS:
            assert spec.name in names
        assert "smartphone" in names

    def test_natural_sort_order(self):
        names = [n for n in registry.names() if n.startswith("mul")]
        # mul10 must come after mul9, not after mul1.
        assert names == [f"mul{i}" for i in range(1, len(names) + 1)]

    def test_get_loads_the_right_instance(self):
        problem = registry.get("mul3")
        assert isinstance(problem, Problem)
        assert problem.name == "mul3"

    def test_loaders_are_lazy_and_fresh(self):
        first = registry.get("mul1")
        second = registry.get("mul1")
        assert first is not second  # loader runs per call, no cache

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(KeyError) as excinfo:
            registry.get("mul99")
        message = excinfo.value.args[0]
        assert "mul99" in message
        assert "smartphone" in message  # message enumerates valid names


class TestRegistration:
    def test_register_and_unregister(self):
        sentinel = object()
        registry.register("t-custom", lambda: sentinel)
        try:
            assert registry.get("t-custom") is sentinel
            assert "t-custom" in registry.names()
        finally:
            registry.unregister("t-custom")
        assert "t-custom" not in registry.names()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register("mul1", lambda: None)

    def test_replace_allows_override(self):
        original = registry._LOADERS["mul1"]
        sentinel = object()
        registry.register("mul1", lambda: sentinel, replace=True)
        try:
            assert registry.get("mul1") is sentinel
        finally:
            registry.register("mul1", original, replace=True)

    def test_unregister_missing_is_noop(self):
        registry.unregister("never-registered")
