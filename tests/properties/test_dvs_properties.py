"""Property-based tests: DVS invariants over random problems.

The central guarantees of voltage selection, checked over randomly
generated problems and mappings:

* energy never increases;
* schedules stay valid (precedence, arrival, exclusivity);
* timing-feasible schedules stay timing-feasible;
* the Fig. 5 transformation preserves nominal energy and makespan.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dvs.pv_dvs import scale_schedule, uniform_scale_schedule
from repro.dvs.transform import transform_parallel_tasks
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.scheduling.list_scheduler import schedule_mode

from tests.properties.test_schedule_properties import (
    build_random_problem,
)


def scheduled_modes(seed: int):
    problem = build_random_problem(seed)
    genome = MappingString.random(problem, random.Random(seed + 17))
    cores = allocate_cores(problem, genome)
    for mode in problem.omsm.modes:
        schedule = schedule_mode(
            problem, mode, genome.mode_mapping(mode.name), cores
        )
        yield problem, mode, schedule


class TestGradientDvsProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_energy_never_increases(self, seed):
        for problem, mode, schedule in scheduled_modes(seed):
            scaled = scale_schedule(problem, mode, schedule)
            assert (
                scaled.total_dynamic_energy()
                <= schedule.total_dynamic_energy() + 1e-12
            )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_scaled_schedule_validates(self, seed):
        for problem, mode, schedule in scheduled_modes(seed):
            scaled = scale_schedule(problem, mode, schedule)
            scaled.validate(mode, problem.architecture)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_feasibility_preserved(self, seed):
        for problem, mode, schedule in scheduled_modes(seed):
            if schedule.is_timing_feasible(mode):
                scaled = scale_schedule(problem, mode, schedule)
                assert scaled.is_timing_feasible(mode)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_task_pieces_sum_to_duration(self, seed):
        for problem, mode, schedule in scheduled_modes(seed):
            scaled = scale_schedule(problem, mode, schedule)
            for task in scaled.tasks:
                if task.pieces:
                    total = sum(d for d, _ in task.pieces)
                    assert abs(total - task.duration) < 1e-9


class TestUniformDvsProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_uniform_never_increases_energy(self, seed):
        for problem, mode, schedule in scheduled_modes(seed):
            scaled = uniform_scale_schedule(problem, mode, schedule)
            assert (
                scaled.total_dynamic_energy()
                <= schedule.total_dynamic_energy() + 1e-12
            )
            scaled.validate(mode, problem.architecture)
            if schedule.is_timing_feasible(mode):
                assert scaled.is_timing_feasible(mode)


class TestTransformProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_transform_preserves_energy_and_makespan(self, seed):
        for problem, mode, schedule in scheduled_modes(seed):
            for pe in problem.architecture.hardware_pes():
                placed = schedule.tasks_on(pe.name)
                if not placed:
                    continue
                segments = transform_parallel_tasks(placed)
                task_energy = sum(t.energy for t in placed)
                segment_energy = sum(s.energy for s in segments)
                assert abs(task_energy - segment_energy) <= max(
                    1e-9, 1e-9 * task_energy
                )
                if segments:
                    assert max(s.end for s in segments) <= max(
                        t.end for t in placed
                    ) + 1e-12

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_segments_disjoint_and_ordered(self, seed):
        for problem, mode, schedule in scheduled_modes(seed):
            for pe in problem.architecture.hardware_pes():
                placed = schedule.tasks_on(pe.name)
                segments = transform_parallel_tasks(placed)
                for left, right in zip(segments, segments[1:]):
                    assert left.end <= right.start + 1e-12
