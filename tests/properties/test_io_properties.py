"""Property-based tests: serialisation round-trips over random problems."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import (
    mapping_from_dict,
    mapping_to_dict,
    problem_from_dict,
    problem_to_dict,
)
from repro.mapping.encoding import MappingString

from tests.properties.test_schedule_properties import (
    build_random_problem,
)


class TestRoundtripProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_problem_roundtrip_preserves_everything(self, seed):
        original = build_random_problem(seed)
        rebuilt = problem_from_dict(problem_to_dict(original))
        assert rebuilt.name == original.name
        assert (
            rebuilt.omsm.probability_vector()
            == original.omsm.probability_vector()
        )
        for mode in original.omsm.modes:
            twin = rebuilt.omsm.mode(mode.name)
            assert twin.period == mode.period
            assert (
                twin.task_graph.task_names
                == mode.task_graph.task_names
            )
            assert [e.key for e in twin.task_graph.edges] == [
                e.key for e in mode.task_graph.edges
            ]
        assert rebuilt.architecture.pe_names == (
            original.architecture.pe_names
        )
        assert len(rebuilt.technology) == len(original.technology)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_double_roundtrip_is_identity(self, seed):
        original = build_random_problem(seed)
        once = problem_to_dict(original)
        twice = problem_to_dict(problem_from_dict(once))
        assert once == twice

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_mapping_roundtrip(self, seed):
        problem = build_random_problem(seed)
        mapping = MappingString.random(
            problem, random.Random(seed + 3)
        )
        rebuilt = mapping_from_dict(
            problem, mapping_to_dict(mapping)
        )
        assert rebuilt == mapping

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_rebuilt_problem_evaluates_identically(self, seed):
        from repro.synthesis.config import SynthesisConfig
        from repro.synthesis.evaluator import evaluate_mapping

        original = build_random_problem(seed)
        rebuilt = problem_from_dict(problem_to_dict(original))
        genome_o = MappingString.random(
            original, random.Random(seed + 4)
        )
        genome_r = MappingString(rebuilt, list(genome_o.genes))
        config = SynthesisConfig()
        impl_o = evaluate_mapping(original, genome_o, config)
        impl_r = evaluate_mapping(rebuilt, genome_r, config)
        if impl_o is None:
            assert impl_r is None
        else:
            assert impl_r is not None
            assert impl_r.metrics.average_power == (
                impl_o.metrics.average_power
            )
            assert impl_r.metrics.fitness == impl_o.metrics.fitness
