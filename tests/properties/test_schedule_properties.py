"""Property-based tests: scheduling invariants over random inputs.

Random problems (graph shape, mapping, architecture flavours) are
generated from a seed, scheduled, and the full invariant checker is
run.  This is the library's main defence in depth: any violation of
precedence, data arrival or resource exclusivity raises.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.architecture import (
    Architecture,
    CommunicationLink,
    PEKind,
    ProcessingElement,
    TaskImplementation,
    TechnologyLibrary,
)
from repro.benchgen.random_graphs import random_task_graph
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.scheduling.list_scheduler import schedule_mode
from repro.specification import Mode, OMSM


def build_random_problem(seed: int) -> Problem:
    """A random 1-3 mode problem with a random architecture."""
    rng = random.Random(seed)
    mode_count = rng.randint(1, 3)
    type_pool = [f"T{i}" for i in range(rng.randint(2, 6))]
    modes = []
    for index in range(mode_count):
        graph = random_task_graph(
            f"g{index}",
            rng,
            task_count=rng.randint(2, 12),
            type_pool=type_pool,
            max_width=rng.randint(1, 4),
            task_prefix=f"m{index}_",
        )
        modes.append(
            Mode(
                f"mode{index}",
                graph,
                probability=1.0 / mode_count,
                period=rng.uniform(0.05, 0.5),
            )
        )
    omsm = OMSM(f"random{seed}", modes)

    levels = (1.2, 1.8, 2.4, 3.3)
    pes = [
        ProcessingElement(
            "CPU",
            PEKind.GPP,
            static_power=1e-3,
            voltage_levels=levels if rng.random() < 0.7 else None,
        )
    ]
    if rng.random() < 0.8:
        kind = PEKind.ASIC if rng.random() < 0.6 else PEKind.FPGA
        pes.append(
            ProcessingElement(
                "HW0",
                kind,
                area=rng.uniform(300, 2000),
                static_power=1e-3,
                voltage_levels=levels if rng.random() < 0.5 else None,
                reconfig_time_per_cell=(
                    rng.uniform(1e-7, 5e-6)
                    if kind is PEKind.FPGA
                    else 0.0
                ),
            )
        )
    links = []
    if len(pes) > 1:
        links.append(
            CommunicationLink(
                "BUS",
                [pe.name for pe in pes],
                bandwidth_bps=rng.uniform(1e5, 1e7),
                comm_power=1e-3,
            )
        )

    entries = []
    for task_type in type_pool:
        sw_time = rng.uniform(1e-3, 2e-2)
        entries.append(
            TaskImplementation(
                task_type, "CPU", exec_time=sw_time,
                power=rng.uniform(0.05, 0.4),
            )
        )
        if len(pes) > 1 and rng.random() < 0.8:
            entries.append(
                TaskImplementation(
                    task_type,
                    "HW0",
                    exec_time=sw_time / rng.uniform(5, 50),
                    power=rng.uniform(0.001, 0.05),
                    area=rng.uniform(50, 500),
                )
            )
    arch = Architecture("arch", pes, links)
    return Problem(omsm, arch, TechnologyLibrary(entries))


class TestSchedulingInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_problem_schedules_validate(self, seed):
        problem = build_random_problem(seed)
        genome = MappingString.random(problem, random.Random(seed + 1))
        cores = allocate_cores(problem, genome)
        for mode in problem.omsm.modes:
            schedule = schedule_mode(
                problem, mode, genome.mode_mapping(mode.name), cores
            )
            schedule.validate(mode, problem.architecture)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_all_tasks_scheduled_energy_positive(self, seed):
        problem = build_random_problem(seed)
        genome = MappingString.random(problem, random.Random(seed + 2))
        cores = allocate_cores(problem, genome)
        for mode in problem.omsm.modes:
            schedule = schedule_mode(
                problem, mode, genome.mode_mapping(mode.name), cores
            )
            assert len(schedule.tasks) == len(mode.task_graph)
            assert len(schedule.comms) == len(mode.task_graph.edges)
            assert schedule.total_dynamic_energy() >= 0.0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds(self, seed):
        # Makespan is at least the longest single task and at most the
        # serial sum of all activities.
        problem = build_random_problem(seed)
        genome = MappingString.random(problem, random.Random(seed + 3))
        cores = allocate_cores(problem, genome)
        for mode in problem.omsm.modes:
            schedule = schedule_mode(
                problem, mode, genome.mode_mapping(mode.name), cores
            )
            longest = max(t.duration for t in schedule.tasks)
            serial = sum(t.duration for t in schedule.tasks) + sum(
                c.duration for c in schedule.comms
            )
            assert schedule.makespan >= longest - 1e-12
            assert schedule.makespan <= serial + 1e-9
