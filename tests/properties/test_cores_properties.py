"""Property-based tests: core-allocation invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.architecture import PEKind
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString

from tests.properties.test_schedule_properties import (
    build_random_problem,
)


class TestAllocationInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_every_mapped_type_has_a_core(self, seed):
        problem = build_random_problem(seed)
        genome = MappingString.random(problem, random.Random(seed + 5))
        cores = allocate_cores(problem, genome)
        for mode in problem.omsm.modes:
            for task in mode.task_graph:
                pe_name = genome.pe_of(mode.name, task.name)
                if problem.architecture.pe(pe_name).is_hardware:
                    assert (
                        cores.available_cores(
                            pe_name, mode.name, task.task_type
                        )
                        >= 1
                    )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_asic_counts_static_across_modes(self, seed):
        problem = build_random_problem(seed)
        genome = MappingString.random(problem, random.Random(seed + 6))
        cores = allocate_cores(problem, genome)
        for pe in problem.architecture.hardware_pes():
            if pe.kind is not PEKind.ASIC:
                continue
            mode_counts = [
                cores.counts[pe.name][mode]
                for mode in problem.omsm.mode_names
            ]
            for counts in mode_counts[1:]:
                assert counts == mode_counts[0]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_area_used_consistent_with_counts(self, seed):
        problem = build_random_problem(seed)
        genome = MappingString.random(problem, random.Random(seed + 7))
        cores = allocate_cores(problem, genome)
        for pe in problem.architecture.hardware_pes():
            per_mode_areas = []
            for mode in problem.omsm.mode_names:
                area = sum(
                    count
                    * problem.technology.implementation(
                        task_type, pe.name
                    ).area
                    for task_type, count in cores.counts[pe.name][
                        mode
                    ].items()
                )
                per_mode_areas.append(area)
            if pe.kind is PEKind.ASIC:
                # Union config: the recorded area equals any mode's
                # (they are identical) config area.
                assert per_mode_areas[0] == cores.area_used[pe.name]
            else:
                assert max(
                    per_mode_areas, default=0.0
                ) == cores.area_used[pe.name]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_transition_times_non_negative_and_asymmetric_ok(
        self, seed
    ):
        problem = build_random_problem(seed)
        genome = MappingString.random(problem, random.Random(seed + 8))
        cores = allocate_cores(problem, genome)
        for transition in problem.omsm.transitions:
            time = cores.transition_time(
                transition.src, transition.dst
            )
            assert time >= 0.0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_violations_only_report_overshoot(self, seed):
        problem = build_random_problem(seed)
        genome = MappingString.random(problem, random.Random(seed + 9))
        cores = allocate_cores(problem, genome)
        for pe_name, overshoot in cores.area_violations().items():
            pe = problem.architecture.pe(pe_name)
            assert overshoot > 0
            assert cores.area_used[pe_name] > pe.area
        for ratio in cores.transition_violations().values():
            assert ratio > 1.0
