"""Property-based tests for the genome encoding."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.encoding import MappingString

from tests.conftest import make_two_mode_problem

PROBLEM = make_two_mode_problem()


@st.composite
def genomes(draw):
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return MappingString.random(PROBLEM, random.Random(seed))


class TestGenomeProperties:
    @given(genomes())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_through_mapping_dict(self, genome):
        rebuilt = MappingString.from_mapping(
            PROBLEM, genome.full_mapping()
        )
        assert rebuilt == genome

    @given(genomes(), genomes(), st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_crossover_children_valid_and_complementary(
        self, parent_a, parent_b, seed
    ):
        rng = random.Random(seed)
        child_a, child_b = parent_a.crossover_two_point(parent_b, rng)
        for index in range(len(parent_a)):
            parents = {parent_a.genes[index], parent_b.genes[index]}
            children = {child_a.genes[index], child_b.genes[index]}
            assert children == parents

    @given(
        genomes(),
        st.integers(0, 2**32 - 1),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_mutation_preserves_validity(self, genome, seed, rate):
        mutated = genome.mutate(random.Random(seed), rate)
        # Construction re-validates; reaching here means valid.
        assert len(mutated) == len(genome)

    @given(genomes())
    @settings(max_examples=30, deadline=None)
    def test_pe_of_agrees_with_mode_mapping(self, genome):
        for mode in PROBLEM.omsm.modes:
            mapping = genome.mode_mapping(mode.name)
            for task, pe in mapping.items():
                assert genome.pe_of(mode.name, task) == pe

    @given(genomes(), genomes())
    @settings(max_examples=30, deadline=None)
    def test_equality_iff_same_genes(self, a, b):
        assert (a == b) == (a.genes == b.genes)
        if a == b:
            assert hash(a) == hash(b)
