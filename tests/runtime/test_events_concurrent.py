"""Concurrent ``events.jsonl`` access: one writer, one live tailer.

The event stream's contract is append-only JSONL with monotonic
sequence numbers and atomic-enough line writes: a reader following the
file while another *process* appends must see every event exactly
once, in order, with no torn JSON — the torn-tail buffering in
:func:`repro.obs.status.tail_events` covers a line caught mid-write.
"""

import json
import os
import pathlib
import subprocess
import sys
import textwrap
import time

import repro
from repro.obs import tail_events
from repro.runtime.events import read_events

N_EVENTS = 200

WRITER_SCRIPT = textwrap.dedent(
    """
    import sys, time
    from repro.runtime.events import EventLog

    path, count = sys.argv[1], int(sys.argv[2])
    with EventLog(path) as log:
        for index in range(count):
            # A payload long enough that a torn write is observable.
            log.emit(
                "generation",
                job_id="writer",
                generation=index,
                note="x" * 200,
            )
            if index % 20 == 0:
                time.sleep(0.002)
        log.emit("campaign_finished", campaign="concurrent",
                 completed_jobs=1, failed_jobs=0)
    """
)


def repro_env():
    env = dict(os.environ)
    package_root = str(pathlib.Path(repro.__file__).parent.parent)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([existing] if existing else [])
    )
    return env


def run_writer(path, tmp_path):
    script = tmp_path / "writer.py"
    script.write_text(WRITER_SCRIPT)
    return subprocess.Popen(
        [sys.executable, str(script), str(path), str(N_EVENTS)],
        env=repro_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def test_follow_while_another_process_appends(tmp_path):
    path = tmp_path / "events.jsonl"
    path.touch()  # tail_events needs an existing file to attach to
    writer = run_writer(path, tmp_path)
    try:
        # follow=True buffers torn tails and stops at the terminal
        # campaign event the writer emits last.
        events = list(tail_events(path, follow=True, poll_interval=0.01))
    finally:
        stderr = writer.communicate(timeout=30)[1]
    assert writer.returncode == 0, stderr.decode()

    assert len(events) == N_EVENTS + 1
    assert events[-1]["event"] == "campaign_finished"
    # Exactly once, in order: seq is contiguous from 0.
    assert [event["seq"] for event in events] == list(
        range(N_EVENTS + 1)
    )
    # No torn reads: every generation payload arrived intact.
    for event in events[:-1]:
        assert event["event"] == "generation"
        assert event["note"] == "x" * 200


def test_read_events_midstream_never_sees_torn_json(tmp_path):
    # Repeatedly snapshot-read while the writer is mid-flight; the
    # non-following reader must only ever return complete records.
    path = tmp_path / "events.jsonl"
    path.touch()
    writer = run_writer(path, tmp_path)
    try:
        last = 0
        while writer.poll() is None:
            snapshot = list(read_events(path))
            assert len(snapshot) >= last  # append-only, no loss
            last = len(snapshot)
            for event in snapshot:
                assert isinstance(event, dict) and "seq" in event
            time.sleep(0.005)
    finally:
        stderr = writer.communicate(timeout=30)[1]
    assert writer.returncode == 0, stderr.decode()
    final = list(read_events(path))
    assert [event["seq"] for event in final] == list(
        range(N_EVENTS + 1)
    )
