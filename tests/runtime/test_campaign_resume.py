"""Acceptance: kill a campaign mid-job, resume, get bit-identical results.

The ISSUE acceptance criteria verified here:

* a campaign interrupted after N generations and resumed produces the
  same best fitness / history as an uninterrupted run with the same
  seeds (bit-identical, not just statistically close);
* the JSONL event log alone suffices to regenerate the Table-1 style
  comparison output.
"""

import pytest

from repro.analysis.experiments import comparison_from_job_results
from repro.analysis.reporting import results_from_events
from repro.runtime import runner as runner_mod
from repro.runtime.checkpoint import checkpoint_path
from repro.runtime.events import events_path, read_events
from repro.runtime.runner import resume_campaign, run_campaign
from repro.runtime.spec import CampaignSpec
from repro.synthesis.config import SynthesisConfig

from tests.conftest import make_two_mode_problem


class _Kill(KeyboardInterrupt):
    """Stand-in for Ctrl-C / OOM-kill mid-campaign."""


@pytest.fixture(scope="module")
def problem():
    return make_two_mode_problem()


def _spec():
    return CampaignSpec(
        name="resume-acceptance",
        instances=["two_mode"],
        runs=2,
        base_seed=11,
        config=SynthesisConfig(
            population_size=10,
            max_generations=12,
            convergence_generations=8,
        ),
        checkpoint_every=2,
        retry_backoff=0.0,
    )


def _interrupt_after(n_generations):
    seen = {"generations": 0}

    def on_event(event):
        if event["event"] == "generation":
            seen["generations"] += 1
            if seen["generations"] == n_generations:
                raise _Kill

    return on_event


@pytest.fixture(scope="module")
def reference(problem, tmp_path_factory):
    """The uninterrupted campaign every resumed run must match."""
    run_dir = tmp_path_factory.mktemp("reference")
    return run_campaign(
        _spec(), run_dir, problem_loader=lambda name: problem
    )


class TestKillResume:
    @pytest.mark.parametrize("kill_after", [3, 9])
    def test_resume_is_bit_identical(
        self, problem, tmp_path, reference, kill_after
    ):
        run_dir = tmp_path / "crashed"
        with pytest.raises(_Kill):
            run_campaign(
                _spec(),
                run_dir,
                problem_loader=lambda name: problem,
                on_event=_interrupt_after(kill_after),
            )
        events = read_events(events_path(run_dir))
        assert events[-1]["event"] == "campaign_interrupted"

        resumed = resume_campaign(
            run_dir, problem_loader=lambda name: problem
        )
        assert resumed.completed == reference.completed
        assert resumed.failed == 0
        for job_id, expected in reference.results.items():
            got = resumed.results[job_id]
            assert got.power == expected.power
            assert got.history == expected.history
            assert got.best_genes == expected.best_genes
            assert got.generations == expected.generations

    def test_interrupted_job_actually_resumes_mid_flight(
        self, problem, tmp_path
    ):
        """The resumed job continues from its checkpoint, not from gen 0."""
        run_dir = tmp_path / "crashed"
        with pytest.raises(_Kill):
            run_campaign(
                _spec(),
                run_dir,
                problem_loader=lambda name: problem,
                on_event=_interrupt_after(5),
            )
        # A checkpoint for some job must have survived the kill.
        spec = _spec()
        checkpointed = [
            job.job_id
            for job in spec.jobs()
            if checkpoint_path(run_dir, job.job_id).exists()
        ]
        assert checkpointed
        resume_campaign(run_dir, problem_loader=lambda name: problem)
        started = [
            e
            for e in read_events(events_path(run_dir))
            if e["event"] == "job_started"
            and e["job_id"] == checkpointed[0]
        ]
        assert started[-1]["resumed_from"] > 0
        # Checkpoints are cleared once their job completes.
        assert not checkpoint_path(run_dir, checkpointed[0]).exists()

    def test_crash_between_final_checkpoint_and_completion(
        self, problem, tmp_path, monkeypatch
    ):
        """Kill in the window after the GA ends, before the result lands.

        With checkpoint_every=3 and max_generations=8 the periodic
        cadence alone would last snapshot generation 6; the runner must
        also checkpoint the final generation 8, so a crash between that
        snapshot and ``job_finished`` resumes from 8 (a no-op replay of
        zero generations) instead of re-running 7-8 — and the result is
        bit-identical to an uninterrupted run either way.
        """
        spec = CampaignSpec(
            name="crash-window",
            instances=["two_mode"],
            probability_settings=[True],
            runs=1,
            base_seed=11,
            config=SynthesisConfig(
                population_size=10,
                max_generations=8,
                convergence_generations=100,
            ),
            checkpoint_every=3,
            retry_backoff=0.0,
        )
        reference = run_campaign(
            spec, tmp_path / "reference",
            problem_loader=lambda name: problem,
        )

        real_validate = runner_mod.validate_implementation
        calls = {"n": 0}

        def crash_once(implementation):
            calls["n"] += 1
            if calls["n"] == 1:
                raise _Kill
            return real_validate(implementation)

        monkeypatch.setattr(
            runner_mod, "validate_implementation", crash_once
        )
        run_dir = tmp_path / "crashed"
        with pytest.raises(_Kill):
            run_campaign(
                spec, run_dir, problem_loader=lambda name: problem
            )
        # The synthesis finished but the result never landed: the final
        # generation's snapshot must be on disk.
        (job,) = spec.jobs()
        assert checkpoint_path(run_dir, job.job_id).exists()

        resumed = resume_campaign(
            run_dir, problem_loader=lambda name: problem
        )
        restarts = [
            e
            for e in read_events(events_path(run_dir))
            if e["event"] == "job_started"
        ]
        assert restarts[-1]["resumed_from"] == 8
        expected = reference.results[job.job_id]
        got = resumed.results[job.job_id]
        assert got.power == expected.power
        assert got.history == expected.history
        assert got.best_genes == expected.best_genes
        assert got.generations == expected.generations

    def test_events_alone_rebuild_comparison(self, problem, tmp_path):
        run_dir = tmp_path / "crashed"
        with pytest.raises(_Kill):
            run_campaign(
                _spec(),
                run_dir,
                problem_loader=lambda name: problem,
                on_event=_interrupt_after(4),
            )
        resumed = resume_campaign(
            run_dir, problem_loader=lambda name: problem
        )
        (rebuilt,) = results_from_events(events_path(run_dir))
        live = comparison_from_job_results(resumed.job_results())
        assert rebuilt.example == live.example
        assert rebuilt.modes == live.modes
        assert rebuilt.runs == live.runs
        assert rebuilt.without.powers == live.without.powers
        assert (
            rebuilt.with_probabilities.powers
            == live.with_probabilities.powers
        )
        assert rebuilt.reduction_pct == live.reduction_pct
