"""Unit tests for campaign specifications."""

import pytest

from repro.errors import CampaignError
from repro.runtime.spec import CampaignSpec, JobSpec
from repro.synthesis.config import DvsMethod, SynthesisConfig


class TestJobSpec:
    def test_job_id_is_filesystem_safe_and_unique(self):
        job = JobSpec("mul3", DvsMethod.GRADIENT, True, 412)
        assert job.job_id == "mul3-gradient-prob-s412"
        other = JobSpec("mul3", DvsMethod.GRADIENT, False, 412)
        assert other.job_id != job.job_id

    def test_configure_overrides_cell_fields_only(self):
        base = SynthesisConfig(population_size=17, seed=1)
        job = JobSpec("mul1", DvsMethod.UNIFORM, False, 9)
        config = job.configure(base)
        assert config.population_size == 17
        assert config.dvs is DvsMethod.UNIFORM
        assert not config.use_probabilities
        assert config.seed == 9


class TestExpansion:
    def test_paired_seeds_per_policy(self):
        spec = CampaignSpec(
            name="t", instances=["mul1"], runs=3, base_seed=100
        )
        jobs = spec.jobs()
        assert len(jobs) == 6
        # Run i of both policies shares seed base_seed + i.
        by_seed = {}
        for job in jobs:
            by_seed.setdefault(job.seed, []).append(job.use_probabilities)
        assert by_seed == {
            100: [False, True],
            101: [False, True],
            102: [False, True],
        }

    def test_expansion_order_is_deterministic(self):
        spec = CampaignSpec(
            name="t",
            instances=["mul1", "mul2"],
            dvs_methods=[DvsMethod.NONE, DvsMethod.GRADIENT],
            runs=1,
        )
        ids = [job.job_id for job in spec.jobs()]
        assert ids == sorted(ids, key=ids.index)  # stable
        assert ids[0].startswith("mul1-none")
        assert ids[2].startswith("mul1-gradient")
        assert ids[4].startswith("mul2-none")


class TestValidation:
    def test_needs_instances(self):
        with pytest.raises(CampaignError, match="instance"):
            CampaignSpec(name="t", instances=[])

    def test_rejects_duplicate_instances(self):
        with pytest.raises(CampaignError, match="duplicate"):
            CampaignSpec(name="t", instances=["mul1", "mul1"])

    def test_rejects_bad_counts(self):
        with pytest.raises(CampaignError):
            CampaignSpec(name="t", instances=["mul1"], runs=0)
        with pytest.raises(CampaignError):
            CampaignSpec(
                name="t", instances=["mul1"], checkpoint_every=0
            )
        with pytest.raises(CampaignError):
            CampaignSpec(name="t", instances=["mul1"], max_retries=-1)

    def test_string_dvs_methods_are_coerced(self):
        spec = CampaignSpec(
            name="t", instances=["mul1"], dvs_methods=["gradient"]
        )
        assert spec.dvs_methods == [DvsMethod.GRADIENT]


class TestRoundTrip:
    def test_json_round_trip(self, tmp_path):
        spec = CampaignSpec(
            name="table2",
            instances=["mul1", "mul7"],
            dvs_methods=[DvsMethod.GRADIENT],
            probability_settings=[False, True],
            runs=4,
            base_seed=400,
            config=SynthesisConfig(population_size=24, jobs=2),
            checkpoint_every=3,
            max_retries=1,
            retry_backoff=0.5,
        )
        path = tmp_path / "spec.json"
        spec.save(path)
        loaded = CampaignSpec.load(path)
        assert loaded.to_dict() == spec.to_dict()
        assert loaded.config == spec.config
        assert [j.job_id for j in loaded.jobs()] == [
            j.job_id for j in spec.jobs()
        ]

    def test_unknown_keys_rejected(self):
        data = CampaignSpec(name="t", instances=["mul1"]).to_dict()
        data["retries"] = 3  # typo for max_retries
        with pytest.raises(CampaignError, match="retries"):
            CampaignSpec.from_dict(data)

    def test_unknown_config_keys_rejected(self):
        data = CampaignSpec(name="t", instances=["mul1"]).to_dict()
        data["config"]["poplation_size"] = 10
        with pytest.raises(Exception, match="poplation_size"):
            CampaignSpec.from_dict(data)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign spec"):
            CampaignSpec.load(tmp_path / "absent.json")
