"""CampaignRunner behaviour: queue execution, durability, retry, failure."""

import pytest

from repro.errors import CampaignError, SynthesisError, WorkerPoolError
from repro.obs.summary import load_run_summary, run_summary_path
from repro.runtime import runner as runner_mod
from repro.runtime.checkpoint import load_result, spec_path
from repro.runtime.events import events_path, read_events
from repro.runtime.runner import (
    CampaignRunner,
    JobResult,
    resume_campaign,
    run_campaign,
)
from repro.runtime.spec import CampaignSpec
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer

from tests.conftest import make_two_mode_problem


@pytest.fixture(scope="module")
def problem():
    return make_two_mode_problem()


def tiny_config(**overrides):
    values = dict(
        population_size=10,
        max_generations=10,
        convergence_generations=6,
    )
    values.update(overrides)
    return SynthesisConfig(**values)


def tiny_spec(**overrides):
    values = dict(
        name="smoke",
        instances=["two_mode"],
        runs=1,
        base_seed=3,
        config=tiny_config(),
        checkpoint_every=2,
        retry_backoff=0.0,
    )
    values.update(overrides)
    return CampaignSpec(**values)


def loader_for(problem):
    return lambda name: problem


class TestSmokeRun:
    def test_full_campaign(self, problem, tmp_path):
        spec = tiny_spec(runs=2)
        outcome = run_campaign(
            spec, tmp_path / "run", problem_loader=loader_for(problem)
        )
        assert outcome.completed == 4  # 2 runs x 2 policies
        assert outcome.failed == 0
        for job in spec.jobs():
            result = outcome.results[job.job_id]
            assert result.power > 0
            assert result.history
            assert result.attempts == 1
            assert result.perf  # SynthesisResult.perf counters present
            # Result record survives on disk and round-trips.
            stored = load_result(tmp_path / "run", job.job_id)
            assert JobResult.from_dict(stored).to_dict() == result.to_dict()
        events = read_events(events_path(tmp_path / "run"))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "campaign_started"
        assert kinds[-1] == "campaign_finished"
        assert kinds.count("job_finished") == 4
        assert "generation" in kinds and "checkpointed" in kinds

    def test_spec_is_persisted(self, problem, tmp_path):
        spec = tiny_spec()
        run_campaign(
            spec, tmp_path / "run", problem_loader=loader_for(problem)
        )
        assert CampaignSpec.load(
            spec_path(tmp_path / "run")
        ).to_dict() == spec.to_dict()

    def test_differing_spec_in_same_dir_rejected(self, problem, tmp_path):
        run_campaign(
            tiny_spec(), tmp_path / "run", problem_loader=loader_for(problem)
        )
        with pytest.raises(CampaignError, match="different campaign spec"):
            CampaignRunner(
                tiny_spec(base_seed=99),
                tmp_path / "run",
                problem_loader=loader_for(problem),
            )

    def test_rerun_skips_completed_jobs(self, problem, tmp_path):
        spec = tiny_spec()
        first = run_campaign(
            spec, tmp_path / "run", problem_loader=loader_for(problem)
        )
        again = run_campaign(
            spec, tmp_path / "run", problem_loader=loader_for(problem)
        )
        assert again.completed == first.completed
        for job_id, result in first.results.items():
            assert again.results[job_id].to_dict() == result.to_dict()
        skipped = [
            e
            for e in read_events(events_path(tmp_path / "run"))
            if e["event"] == "job_skipped"
        ]
        assert len(skipped) == first.completed


class TestRetry:
    def _flaky_synthesizer(self, monkeypatch, failures):
        """Make the first ``failures`` run() calls die like a dead pool."""
        calls = {"n": 0}

        class Flaky(MultiModeSynthesizer):
            def run(self, resume=None, on_generation=None):
                calls["n"] += 1
                if calls["n"] <= failures:
                    raise WorkerPoolError("worker pool died")
                return super().run(
                    resume=resume, on_generation=on_generation
                )

        monkeypatch.setattr(runner_mod, "MultiModeSynthesizer", Flaky)
        return calls

    def test_pool_death_is_retried_with_backoff(
        self, problem, tmp_path, monkeypatch
    ):
        self._flaky_synthesizer(monkeypatch, failures=1)
        sleeps = []
        spec = tiny_spec(
            probability_settings=[True], max_retries=2, retry_backoff=0.5
        )
        outcome = CampaignRunner(
            spec,
            tmp_path / "run",
            problem_loader=loader_for(problem),
            sleep=sleeps.append,
        ).run()
        assert outcome.failed == 0
        (result,) = outcome.job_results()
        assert result.attempts == 2
        assert sleeps == [0.5]  # retry_backoff * 2**0
        retried = [
            e
            for e in read_events(events_path(tmp_path / "run"))
            if e["event"] == "job_retried"
        ]
        assert len(retried) == 1
        assert retried[0]["backoff_seconds"] == 0.5

    def test_retries_exhausted_fails_job_not_campaign(
        self, problem, tmp_path, monkeypatch
    ):
        self._flaky_synthesizer(monkeypatch, failures=100)
        spec = tiny_spec(max_retries=1)
        outcome = run_campaign(
            spec, tmp_path / "run", problem_loader=loader_for(problem)
        )
        assert outcome.completed == 0
        assert outcome.failed == 2
        kinds = [
            e["event"]
            for e in read_events(events_path(tmp_path / "run"))
        ]
        assert kinds.count("job_failed") == 2
        assert kinds[-1] == "campaign_finished"

    def test_jobs_run_in_raise_mode(self, problem, tmp_path, monkeypatch):
        seen = []
        original = MultiModeSynthesizer.__init__

        def spy(self, prob, config):
            seen.append(config.pool_failure_mode)
            original(self, prob, config)

        monkeypatch.setattr(MultiModeSynthesizer, "__init__", spy)
        run_campaign(
            tiny_spec(probability_settings=[False]),
            tmp_path / "run",
            problem_loader=loader_for(problem),
        )
        assert seen == ["raise"]


class TestFailureIsolation:
    def test_job_failure_does_not_abort_campaign(
        self, problem, tmp_path, monkeypatch
    ):
        calls = {"n": 0}

        class FailsFirst(MultiModeSynthesizer):
            def run(self, resume=None, on_generation=None):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise SynthesisError("no feasible mapping")
                return super().run(
                    resume=resume, on_generation=on_generation
                )

        monkeypatch.setattr(
            runner_mod, "MultiModeSynthesizer", FailsFirst
        )
        spec = tiny_spec()
        outcome = run_campaign(
            spec, tmp_path / "run", problem_loader=loader_for(problem)
        )
        assert outcome.completed == 1
        assert outcome.failed == 1
        (failure,) = outcome.failures.values()
        assert "no feasible mapping" in failure

    def test_unknown_instance_fails_that_job_only(self, tmp_path):
        problem = make_two_mode_problem()

        def loader(name):
            if name == "bogus":
                raise KeyError(f"unknown problem {name!r}")
            return problem

        spec = tiny_spec(
            instances=["two_mode", "bogus"],
            probability_settings=[False],
        )
        outcome = run_campaign(
            spec, tmp_path / "run", problem_loader=loader
        )
        assert outcome.completed == 1
        assert list(outcome.failures) == ["bogus-none-noprob-s3"]
        assert "unknown instance" in outcome.failures["bogus-none-noprob-s3"]

    def test_resume_campaign_requires_spec(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign spec"):
            resume_campaign(tmp_path)


class TestFinalCheckpoint:
    def test_last_generation_is_always_checkpointed(
        self, problem, tmp_path
    ):
        # Regression: with checkpoint_every=4 and max_generations=6 the
        # cadence alone would last snapshot generation 4, leaving
        # generations 5-6 unprotected against a crash landing between
        # the final snapshot and job completion.
        spec = tiny_spec(
            probability_settings=[True],
            checkpoint_every=4,
            config=tiny_config(
                max_generations=6, convergence_generations=100
            ),
        )
        run_campaign(
            spec, tmp_path / "run", problem_loader=loader_for(problem)
        )
        checkpointed = [
            e["generation"]
            for e in read_events(events_path(tmp_path / "run"))
            if e["event"] == "checkpointed"
        ]
        assert 4 in checkpointed
        assert checkpointed[-1] == 6


class TestRunSummary:
    def test_summary_exported_on_finish(self, problem, tmp_path):
        spec = tiny_spec()
        outcome = run_campaign(
            spec, tmp_path / "run", problem_loader=loader_for(problem)
        )
        summary = load_run_summary(tmp_path / "run")
        assert summary["version"] == 1
        assert summary["campaign"] == "smoke"
        assert summary["interrupted"] is False
        assert summary["jobs"] == {
            "total": 2,
            "completed": 2,
            "failed": 0,
            "pending": 0,
        }
        assert set(summary["job_results"]) == set(outcome.results)
        for job_id, row in summary["job_results"].items():
            assert row["power"] == outcome.results[job_id].power
            assert row["feasible"] is True
        # The aggregate engine perf counters made it into the document.
        assert summary["perf"]["evaluations"] > 0
        assert summary["perf"]["phase_seconds"]
        for phase, modes in summary["perf"][
            "mode_phase_seconds"
        ].items():
            assert sum(modes.values()) == pytest.approx(
                summary["perf"]["phase_seconds"][phase]
            )
        # Campaign metrics are dumped alongside (process-global
        # registry, so only lower bounds are stable across a test run).
        counters = summary["metrics"]["counters"]
        assert counters["campaign_jobs_finished_total"] >= 2
        assert counters["ga_generations_total"] >= 2

    def test_summary_includes_failures(self, problem, tmp_path):
        def loader(name):
            if name == "bogus":
                raise KeyError(f"unknown problem {name!r}")
            return problem

        spec = tiny_spec(
            instances=["two_mode", "bogus"],
            probability_settings=[False],
        )
        run_campaign(spec, tmp_path / "run", problem_loader=loader)
        summary = load_run_summary(tmp_path / "run")
        assert summary["jobs"]["completed"] == 1
        assert summary["jobs"]["failed"] == 1
        assert "bogus-none-noprob-s3" in summary["failures"]

    def test_summary_written_on_interrupt(self, problem, tmp_path):
        def explode(event):
            if event["event"] == "generation":
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                tiny_spec(),
                tmp_path / "run",
                problem_loader=loader_for(problem),
                on_event=explode,
            )
        summary = load_run_summary(tmp_path / "run")
        assert summary["interrupted"] is True
        assert summary["jobs"]["completed"] == 0
        # The finished run overwrites the interrupted snapshot.
        resume_campaign(
            tmp_path / "run", problem_loader=loader_for(problem)
        )
        final = load_run_summary(tmp_path / "run")
        assert final["interrupted"] is False
        assert final["jobs"]["completed"] == 2

    def test_summary_roundtrips_through_json_load(self, problem, tmp_path):
        import json

        run_campaign(
            tiny_spec(probability_settings=[True]),
            tmp_path / "run",
            problem_loader=loader_for(problem),
        )
        with open(run_summary_path(tmp_path / "run")) as handle:
            assert json.load(handle)["version"] == 1
