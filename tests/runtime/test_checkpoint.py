"""Durable checkpoint/result storage in the run directory."""

import random

import pytest

from repro.errors import CampaignError
from repro.runtime.checkpoint import (
    checkpoint_path,
    clear_checkpoint,
    load_checkpoint,
    load_result,
    prepare_run_dir,
    result_path,
    write_checkpoint,
    write_result,
)
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.state import GAState


def _state(generation=3):
    rng = random.Random(7)
    return GAState(
        generation=generation,
        rng_state=rng.getstate(),
        population=[(0, 1), (1, 0)],
        best_genes=(0, 1),
        best_fitness=42.5,
        stagnant=1,
        area_stall=0,
        timing_stall=2,
        transition_stall=0,
        history=[50.0, 45.0, 42.5],
        evaluations=30,
    )


@pytest.fixture
def run_dir(tmp_path):
    return prepare_run_dir(tmp_path / "run")


class TestLayout:
    def test_prepare_is_idempotent(self, run_dir):
        again = prepare_run_dir(run_dir)
        assert again == run_dir
        assert (run_dir / "checkpoints").is_dir()
        assert (run_dir / "results").is_dir()


class TestCheckpoints:
    def test_round_trip(self, run_dir):
        config = SynthesisConfig(population_size=12, seed=5)
        state = _state()
        write_checkpoint(run_dir, "job-a", state, config)
        loaded = load_checkpoint(run_dir, "job-a", config)
        assert loaded is not None
        assert loaded.to_dict() == state.to_dict()
        assert loaded.rng_state == state.rng_state

    def test_missing_returns_none(self, run_dir):
        assert load_checkpoint(run_dir, "absent") is None

    def test_no_tmp_file_left_behind(self, run_dir):
        write_checkpoint(run_dir, "job-a", _state(), SynthesisConfig())
        leftovers = list((run_dir / "checkpoints").glob("*.tmp"))
        assert leftovers == []

    def test_config_mismatch_raises(self, run_dir):
        write_checkpoint(
            run_dir, "job-a", _state(), SynthesisConfig(seed=5)
        )
        with pytest.raises(CampaignError, match="different synthesis"):
            load_checkpoint(run_dir, "job-a", SynthesisConfig(seed=6))

    def test_job_id_mismatch_raises(self, run_dir):
        write_checkpoint(run_dir, "job-a", _state(), SynthesisConfig())
        # Simulate a file copied/renamed into the wrong slot.
        checkpoint_path(run_dir, "job-a").rename(
            checkpoint_path(run_dir, "job-b")
        )
        with pytest.raises(CampaignError, match="belongs to job"):
            load_checkpoint(run_dir, "job-b")

    def test_corrupt_checkpoint_raises(self, run_dir):
        path = checkpoint_path(run_dir, "job-a")
        path.write_text("{ torn")
        with pytest.raises(CampaignError, match="corrupt checkpoint"):
            load_checkpoint(run_dir, "job-a")

    def test_clear_is_idempotent(self, run_dir):
        write_checkpoint(run_dir, "job-a", _state(), SynthesisConfig())
        clear_checkpoint(run_dir, "job-a")
        clear_checkpoint(run_dir, "job-a")
        assert load_checkpoint(run_dir, "job-a") is None


class TestResults:
    def test_round_trip(self, run_dir):
        record = {"job_id": "job-a", "power": 1.25, "history": [2.0, 1.25]}
        write_result(run_dir, "job-a", record)
        assert load_result(run_dir, "job-a") == record
        assert result_path(run_dir, "job-a").exists()

    def test_missing_returns_none(self, run_dir):
        assert load_result(run_dir, "absent") is None
