"""EventLog / event stream behaviour."""

import json

import pytest

from repro.errors import CampaignError
from repro.runtime.events import (
    EventLog,
    events_path,
    iter_events,
    read_events,
)


@pytest.fixture
def log_path(tmp_path):
    return tmp_path / "events.jsonl"


class TestEmit:
    def test_records_carry_seq_ts_and_fields(self, log_path):
        clock = iter([10.0, 11.5]).__next__
        with EventLog(log_path, clock=clock) as log:
            first = log.emit("campaign_started", name="t", jobs=4)
            second = log.emit("job_started", job_id="a")
        assert first == {
            "seq": 0,
            "ts": 10.0,
            "event": "campaign_started",
            "name": "t",
            "jobs": 4,
        }
        assert second["seq"] == 1 and second["ts"] == 11.5
        assert read_events(log_path) == [first, second]

    def test_lines_are_flushed_immediately(self, log_path):
        # The stream must be readable while the writer is still open —
        # that's what lets a kill -9 lose at most the torn final line.
        with EventLog(log_path) as log:
            log.emit("generation", generation=1)
            assert len(read_events(log_path)) == 1

    def test_seq_continues_across_reopen(self, log_path):
        with EventLog(log_path) as log:
            log.emit("a")
            log.emit("b")
        with EventLog(log_path) as log:
            record = log.emit("c")
        assert record["seq"] == 2
        assert [e["seq"] for e in read_events(log_path)] == [0, 1, 2]

    def test_seq_continues_past_torn_tail(self, log_path):
        # A kill -9 can leave a partially written final line; reopening
        # must number from the last *complete* event, and the appended
        # line must start on a fresh line of its own.
        with EventLog(log_path) as log:
            log.emit("a")
            log.emit("b")
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "event": "tru')
        with EventLog(log_path) as log:
            record = log.emit("c")
        assert record["seq"] == 2
        # The torn tail was trimmed, so the stream stays fully readable.
        assert [e["event"] for e in read_events(log_path)] == [
            "a", "b", "c",
        ]

    def test_seq_reopen_tolerates_early_corruption(self, log_path):
        # Regression: _next_seq used to JSON-parse the entire stream,
        # so one corrupt line anywhere made the log un-reopenable (and
        # reopening cost O(file size) on every retry/resume).  The
        # tail-read only ever looks at the last complete line.
        with open(log_path, "w", encoding="utf-8") as handle:
            handle.write("corrupt garbage not json\n")
            for seq in range(50):
                handle.write(
                    json.dumps({"seq": seq, "event": "generation"}) + "\n"
                )
        with EventLog(log_path) as log:
            record = log.emit("resumed")
        assert record["seq"] == 50

    def test_seq_reopen_scans_back_past_large_lines(self, log_path):
        # The last line can exceed the initial 8 KiB read chunk (e.g. a
        # job_finished event with a big perf payload); the backwards
        # scan must keep widening until it holds a complete line.
        with EventLog(log_path) as log:
            log.emit("small")
            log.emit("big", payload="x" * 50_000)
        with EventLog(log_path) as log:
            record = log.emit("next")
        assert record["seq"] == 2

    def test_seq_reopen_with_only_torn_content(self, log_path):
        log_path.write_text('{"seq": 0, "event": "tru')
        with EventLog(log_path) as log:
            record = log.emit("a")
        assert record["seq"] == 0
        assert [e["event"] for e in read_events(log_path)] == ["a"]


class TestReading:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no event stream"):
            read_events(tmp_path / "absent.jsonl")

    def test_torn_final_line_is_skipped(self, log_path):
        with EventLog(log_path) as log:
            log.emit("a")
            log.emit("b")
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "event": "tru')  # kill -9 mid-write
        events = read_events(log_path)
        assert [e["event"] for e in events] == ["a", "b"]

    def test_corruption_mid_file_raises(self, log_path):
        with open(log_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"seq": 0, "event": "a"}) + "\n")
            handle.write("not json\n")
            handle.write(json.dumps({"seq": 2, "event": "b"}) + "\n")
        with pytest.raises(CampaignError, match="corrupt event"):
            read_events(log_path)

    def test_blank_lines_ignored(self, log_path):
        with open(log_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"seq": 0, "event": "a"}) + "\n\n")
        assert len(list(iter_events(log_path))) == 1

    def test_torn_line_followed_by_blank_is_still_readable(self, log_path):
        # Regression: a dying writer can flush a torn record and then a
        # bare newline (or the next writer can start with one).  That
        # trailing whitespace used to count as a "line after the torn
        # one" and turned the recoverable torn-tail skip into a hard
        # corruption error, making the whole stream unreadable.
        with open(log_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"seq": 0, "event": "a"}) + "\n")
            handle.write('{"seq": 1, "event": "tru\n')
            handle.write("\n")
        events = read_events(log_path)
        assert [e["event"] for e in events] == ["a"]

    def test_torn_line_followed_by_whitespace_lines_is_readable(
        self, log_path
    ):
        with open(log_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"seq": 0, "event": "a"}) + "\n")
            handle.write('{"seq": 1, "ev\n')
            handle.write("   \n\n  \n")
        assert [e["event"] for e in read_events(log_path)] == ["a"]

    def test_torn_line_followed_by_real_event_still_raises(self, log_path):
        # The blank-line tolerance must not weaken the corruption check:
        # a non-empty line after a torn one means the file is damaged.
        with open(log_path, "w", encoding="utf-8") as handle:
            handle.write('{"seq": 0, "ev\n')
            handle.write("\n")  # blanks in between change nothing
            handle.write(json.dumps({"seq": 1, "event": "b"}) + "\n")
        with pytest.raises(CampaignError, match="corrupt event"):
            read_events(log_path)


def test_events_path_layout(tmp_path):
    assert events_path(tmp_path) == tmp_path / "events.jsonl"
