"""EventLog / event stream behaviour."""

import json

import pytest

from repro.errors import CampaignError
from repro.runtime.events import (
    EventLog,
    events_path,
    iter_events,
    read_events,
)


@pytest.fixture
def log_path(tmp_path):
    return tmp_path / "events.jsonl"


class TestEmit:
    def test_records_carry_seq_ts_and_fields(self, log_path):
        clock = iter([10.0, 11.5]).__next__
        with EventLog(log_path, clock=clock) as log:
            first = log.emit("campaign_started", name="t", jobs=4)
            second = log.emit("job_started", job_id="a")
        assert first == {
            "seq": 0,
            "ts": 10.0,
            "event": "campaign_started",
            "name": "t",
            "jobs": 4,
        }
        assert second["seq"] == 1 and second["ts"] == 11.5
        assert read_events(log_path) == [first, second]

    def test_lines_are_flushed_immediately(self, log_path):
        # The stream must be readable while the writer is still open —
        # that's what lets a kill -9 lose at most the torn final line.
        with EventLog(log_path) as log:
            log.emit("generation", generation=1)
            assert len(read_events(log_path)) == 1

    def test_seq_continues_across_reopen(self, log_path):
        with EventLog(log_path) as log:
            log.emit("a")
            log.emit("b")
        with EventLog(log_path) as log:
            record = log.emit("c")
        assert record["seq"] == 2
        assert [e["seq"] for e in read_events(log_path)] == [0, 1, 2]


class TestReading:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no event stream"):
            read_events(tmp_path / "absent.jsonl")

    def test_torn_final_line_is_skipped(self, log_path):
        with EventLog(log_path) as log:
            log.emit("a")
            log.emit("b")
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "event": "tru')  # kill -9 mid-write
        events = read_events(log_path)
        assert [e["event"] for e in events] == ["a", "b"]

    def test_corruption_mid_file_raises(self, log_path):
        with open(log_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"seq": 0, "event": "a"}) + "\n")
            handle.write("not json\n")
            handle.write(json.dumps({"seq": 2, "event": "b"}) + "\n")
        with pytest.raises(CampaignError, match="corrupt event"):
            read_events(log_path)

    def test_blank_lines_ignored(self, log_path):
        with open(log_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"seq": 0, "event": "a"}) + "\n\n")
        assert len(list(iter_events(log_path))) == 1


def test_events_path_layout(tmp_path):
    assert events_path(tmp_path) == tmp_path / "events.jsonl"
