"""SIGTERM must take the same graceful path as Ctrl-C.

A supervised campaign (server worker subprocess, systemd unit,
container stop) is told to go away with SIGTERM.  The regression
pinned here: the ``run_summary.json`` export and the
``campaign_interrupted`` event — long wired to ``KeyboardInterrupt`` —
must also fire on SIGTERM, and the interrupted campaign must resume
bit-identically afterwards.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import textwrap
import time

import pytest

import repro


def repro_env():
    env = dict(os.environ)
    package_root = str(pathlib.Path(repro.__file__).parent.parent)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([existing] if existing else [])
    )
    return env


SPEC = {
    "name": "sigterm-victim",
    "instances": ["mul1"],
    "runs": 1,
    "base_seed": 5,
    "checkpoint_every": 1,
    "config": {
        "population_size": 10,
        "max_generations": 500,
        "convergence_generations": 500,
    },
}

CHILD_SCRIPT = textwrap.dedent(
    """
    import json, sys
    from repro.api import run_campaign

    spec = json.loads(sys.argv[1])
    run_campaign(spec, run_dir=sys.argv[2])
    """
)


def wait_for_event(events, kind, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if events.exists():
            for line in events.read_text().splitlines():
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if event.get("event") == kind:
                    return event
        time.sleep(0.05)
    raise AssertionError(f"no {kind!r} event appeared in time")


def read_event_kinds(events):
    kinds = []
    for line in events.read_text().splitlines():
        try:
            kinds.append(json.loads(line).get("event"))
        except json.JSONDecodeError:
            continue
    return kinds


class TestSigtermContextmanager:
    def test_sigterm_becomes_keyboard_interrupt(self):
        from repro.runtime.runner import _sigterm_as_interrupt

        with pytest.raises(KeyboardInterrupt):
            with _sigterm_as_interrupt():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)  # the signal interrupts this

    def test_previous_handler_is_restored(self):
        from repro.runtime.runner import _sigterm_as_interrupt

        before = signal.getsignal(signal.SIGTERM)
        with _sigterm_as_interrupt():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before


@pytest.mark.slow
def test_sigterm_exports_summary_like_ctrl_c(tmp_path):
    script = tmp_path / "victim.py"
    script.write_text(CHILD_SCRIPT)
    run_dir = tmp_path / "run"
    child = subprocess.Popen(
        [sys.executable, str(script), json.dumps(SPEC), str(run_dir)],
        env=repro_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        events = run_dir / "events.jsonl"
        # Interrupt only once real work (and a durable snapshot) exists.
        wait_for_event(events, "checkpointed")
        child.send_signal(signal.SIGTERM)
        assert child.wait(timeout=30) != 0
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()

    kinds = read_event_kinds(events)
    assert "campaign_interrupted" in kinds
    assert "campaign_finished" not in kinds

    summary = json.loads((run_dir / "run_summary.json").read_text())
    assert summary["interrupted"] is True
    assert summary["campaign"] == "sigterm-victim"

    # The interrupted campaign is still resumable state, not wreckage:
    # the spec and at least one checkpoint survived.
    assert (run_dir / "spec.json").exists()
    checkpoints = list((run_dir / "checkpoints").glob("*.json"))
    assert checkpoints
