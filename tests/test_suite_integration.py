"""End-to-end integration on regenerated suite instances.

Slower than unit tests (whole synthesis runs) but the closest thing to
the paper's actual experiments that still fits a test budget.
"""

import pytest

from repro.benchgen.suite import suite_problem
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.cosynthesis import synthesize
from repro.validation import validate_implementation

SMALL = SynthesisConfig(
    population_size=16,
    max_generations=30,
    convergence_generations=8,
)


@pytest.mark.slow
class TestSuiteSynthesis:
    @pytest.mark.parametrize("name", ["mul2", "mul9", "mul11"])
    def test_synthesis_produces_valid_feasible_solutions(self, name):
        problem = suite_problem(name)
        result = synthesize(problem, SMALL.with_updates(seed=5))
        validate_implementation(result.best)
        assert result.is_feasible

    def test_dvs_improves_on_dvs_capable_instance(self):
        problem = suite_problem("mul11")  # GPP+ASIC1+ASIC2, all DVS
        nominal = synthesize(problem, SMALL.with_updates(seed=6))
        scaled = synthesize(
            problem,
            SMALL.with_updates(seed=6, dvs=DvsMethod.GRADIENT),
        )
        validate_implementation(scaled.best)
        assert scaled.average_power < nominal.average_power

    def test_probability_policies_land_in_the_same_ballpark(self):
        """Loose regression guard on the policy comparison.

        Single GA runs are noisy (the paper averages 40); a strict
        "aware wins per seed" assertion would be a seed lottery.  What
        must always hold: the aware policy's *reported* power (its own
        objective when feasible) stays within ~10 % of the neglecting
        policy's across a few paired seeds — i.e. the aware search is
        never catastrophically worse on its own objective, while the
        benchmark harness measures the actual (averaged) margins.
        """
        import statistics

        config = SynthesisConfig(
            population_size=32,
            max_generations=80,
            convergence_generations=16,
        )
        problem = suite_problem("mul11")
        aware, neglect = [], []
        for seed in (11, 12, 13):
            aware.append(
                synthesize(
                    problem,
                    config.with_updates(
                        seed=seed, use_probabilities=True
                    ),
                ).average_power
            )
            neglect.append(
                synthesize(
                    problem,
                    config.with_updates(
                        seed=seed, use_probabilities=False
                    ),
                ).average_power
            )
        assert statistics.mean(aware) <= statistics.mean(neglect) * 1.10

    def test_cpu_time_reported(self):
        problem = suite_problem("mul9")
        result = synthesize(problem, SMALL.with_updates(seed=7))
        assert result.cpu_time > 0
        assert result.evaluations >= SMALL.population_size
