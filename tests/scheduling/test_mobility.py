"""Unit tests for ASAP/ALAP mobility analysis."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling.mobility import (
    compute_mobilities,
    critical_path_length,
)
from repro.specification import CommEdge, Mode, Task, TaskGraph


def diamond_mode(period=1.0, deadlines=None):
    deadlines = deadlines or {}
    graph = TaskGraph(
        "g",
        [
            Task("a", "X", deadline=deadlines.get("a")),
            Task("b", "Y", deadline=deadlines.get("b")),
            Task("c", "Y", deadline=deadlines.get("c")),
            Task("d", "Z", deadline=deadlines.get("d")),
        ],
        [
            CommEdge("a", "b"),
            CommEdge("a", "c"),
            CommEdge("b", "d"),
            CommEdge("c", "d"),
        ],
    )
    return Mode("m", graph, probability=1.0, period=period)


DURATIONS = {"a": 1.0, "b": 2.0, "c": 1.0, "d": 1.0}


class TestAsapAlap:
    def test_asap_values(self):
        mode = diamond_mode(period=10.0)
        info = compute_mobilities(mode, DURATIONS.__getitem__)
        assert info["a"].asap == 0.0
        assert info["b"].asap == 1.0
        assert info["c"].asap == 1.0
        assert info["d"].asap == 3.0

    def test_alap_values(self):
        mode = diamond_mode(period=10.0)
        info = compute_mobilities(mode, DURATIONS.__getitem__)
        # d must finish by 10 -> starts by 9; b by 9-2=7; c by 9-1=8.
        assert info["d"].alap == 9.0
        assert info["b"].alap == 7.0
        assert info["c"].alap == 8.0
        assert info["a"].alap == 6.0

    def test_mobility(self):
        mode = diamond_mode(period=4.0)
        info = compute_mobilities(mode, DURATIONS.__getitem__)
        # Critical path a-b-d takes 4 = period: zero mobility there.
        assert info["a"].mobility == pytest.approx(0.0)
        assert info["b"].mobility == pytest.approx(0.0)
        assert info["d"].mobility == pytest.approx(0.0)
        assert info["c"].mobility == pytest.approx(1.0)

    def test_task_deadline_tightens_alap(self):
        mode = diamond_mode(period=10.0, deadlines={"b": 4.0})
        info = compute_mobilities(mode, DURATIONS.__getitem__)
        assert info["b"].alap == 2.0
        assert info["a"].alap == 1.0  # pulled in through b

    def test_infeasible_gives_negative_mobility(self):
        mode = diamond_mode(period=3.0)  # CP is 4 > 3
        info = compute_mobilities(mode, DURATIONS.__getitem__)
        assert info["a"].mobility < 0

    def test_negative_duration_rejected(self):
        mode = diamond_mode()
        with pytest.raises(SchedulingError):
            compute_mobilities(mode, lambda name: -1.0)


class TestCriticalPath:
    def test_diamond(self):
        mode = diamond_mode()
        assert critical_path_length(
            mode, DURATIONS.__getitem__
        ) == pytest.approx(4.0)

    def test_single_task(self):
        graph = TaskGraph("g", [Task("a", "X")])
        mode = Mode("m", graph, 1.0, 1.0)
        assert critical_path_length(mode, lambda n: 2.5) == 2.5

    def test_parallel_tasks_take_max(self):
        graph = TaskGraph("g", [Task("a", "X"), Task("b", "Y")])
        mode = Mode("m", graph, 1.0, 1.0)
        durations = {"a": 1.0, "b": 3.0}
        assert critical_path_length(
            mode, durations.__getitem__
        ) == pytest.approx(3.0)
