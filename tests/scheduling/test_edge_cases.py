"""Edge cases of the scheduling substrate."""

import pytest

from repro.architecture import (
    Architecture,
    CommunicationLink,
    PEKind,
    ProcessingElement,
    TaskImplementation,
    TechnologyLibrary,
)
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.scheduling.list_scheduler import schedule_mode
from repro.specification import CommEdge, Mode, OMSM, Task, TaskGraph


def single_task_problem():
    graph = TaskGraph("g", [Task("only", "X")])
    omsm = OMSM("single", [Mode("M", graph, 1.0, 1.0)])
    cpu = ProcessingElement("CPU", PEKind.GPP, static_power=1e-3)
    arch = Architecture("arch", [cpu])
    tech = TechnologyLibrary(
        [TaskImplementation("X", "CPU", exec_time=0.01, power=0.1)]
    )
    return Problem(omsm, arch, tech)


class TestDegenerateGraphs:
    def test_single_task_mode(self):
        problem = single_task_problem()
        genome = MappingString(problem, ["CPU"])
        cores = allocate_cores(problem, genome)
        mode = problem.omsm.mode("M")
        schedule = schedule_mode(
            problem, mode, genome.mode_mapping("M"), cores
        )
        schedule.validate(mode, problem.architecture)
        assert schedule.makespan == pytest.approx(0.01)
        assert schedule.comms == ()

    def test_edgeless_graph_runs_fully_parallel_on_hw(self):
        graph = TaskGraph(
            "g", [Task(f"t{i}", "X") for i in range(4)]
        )
        omsm = OMSM("flat", [Mode("M", graph, 1.0, 0.011)])
        cpu = ProcessingElement("CPU", PEKind.GPP)
        hw = ProcessingElement("HW", PEKind.ASIC, area=4000.0)
        bus = CommunicationLink("BUS", ["CPU", "HW"], 1e6)
        arch = Architecture("arch", [cpu, hw], [bus])
        tech = TechnologyLibrary(
            [
                TaskImplementation("X", "CPU", exec_time=0.02, power=0.1),
                TaskImplementation(
                    "X", "HW", exec_time=0.01, power=0.01, area=500.0
                ),
            ]
        )
        problem = Problem(omsm, arch, tech)
        genome = MappingString(problem, ["HW"] * 4)
        cores = allocate_cores(problem, genome)
        # Zero mobility (period 11 ms vs 10 ms execution): every task
        # urgent and independent -> four cores.
        assert cores.available_cores("HW", "M", "X") == 4
        mode = problem.omsm.mode("M")
        schedule = schedule_mode(
            problem, mode, genome.mode_mapping("M"), cores
        )
        schedule.validate(mode, arch)
        assert schedule.makespan == pytest.approx(0.01)

    def test_zero_payload_edges_cost_nothing_on_bus(self):
        graph = TaskGraph(
            "g",
            [Task("a", "X"), Task("b", "Y")],
            [CommEdge("a", "b", 0.0)],
        )
        omsm = OMSM("zp", [Mode("M", graph, 1.0, 1.0)])
        cpu = ProcessingElement("CPU", PEKind.GPP)
        cpu2 = ProcessingElement("CPU2", PEKind.ASIP)
        bus = CommunicationLink(
            "BUS", ["CPU", "CPU2"], 1e6, comm_power=1e-3
        )
        arch = Architecture("arch", [cpu, cpu2], [bus])
        tech = TechnologyLibrary(
            [
                TaskImplementation("X", "CPU", exec_time=0.01, power=0.1),
                TaskImplementation(
                    "Y", "CPU2", exec_time=0.01, power=0.1
                ),
            ]
        )
        problem = Problem(omsm, arch, tech)
        genome = MappingString.from_mapping(
            problem, {"M": {"a": "CPU", "b": "CPU2"}}
        )
        cores = allocate_cores(problem, genome)
        mode = problem.omsm.mode("M")
        schedule = schedule_mode(
            problem, mode, genome.mode_mapping("M"), cores
        )
        message = schedule.comm("a", "b")
        assert message.link == "BUS"
        assert message.duration == 0.0
        assert message.energy == 0.0


class TestManyModes:
    def test_five_modes_schedule_independently(self):
        modes = []
        for index in range(5):
            graph = TaskGraph(
                f"g{index}",
                [Task(f"m{index}_a", "X"), Task(f"m{index}_b", "Y")],
                [CommEdge(f"m{index}_a", f"m{index}_b", 100.0)],
            )
            modes.append(Mode(f"mode{index}", graph, 0.2, 1.0))
        omsm = OMSM("five", modes)
        cpu = ProcessingElement("CPU", PEKind.GPP)
        arch = Architecture("arch", [cpu])
        tech = TechnologyLibrary(
            [
                TaskImplementation("X", "CPU", exec_time=0.01, power=0.1),
                TaskImplementation("Y", "CPU", exec_time=0.01, power=0.1),
            ]
        )
        problem = Problem(omsm, arch, tech)
        genome = MappingString(
            problem, ["CPU"] * problem.genome_length()
        )
        cores = allocate_cores(problem, genome)
        for mode in problem.omsm.modes:
            schedule = schedule_mode(
                problem, mode, genome.mode_mapping(mode.name), cores
            )
            schedule.validate(mode, arch)
            # Each mode schedules in isolation: identical makespans.
            assert schedule.makespan == pytest.approx(0.02)
