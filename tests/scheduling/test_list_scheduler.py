"""Unit and integration tests for the list scheduler (inner loop)."""

import random

import pytest

from repro.architecture import (
    Architecture,
    CommunicationLink,
    PEKind,
    ProcessingElement,
    TaskImplementation,
    TechnologyLibrary,
)
from repro.errors import SchedulingError
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.scheduling.list_scheduler import schedule_mode
from repro.specification import CommEdge, Mode, OMSM, Task, TaskGraph

from tests.conftest import make_parallel_hw_problem


def schedule_with(problem, mode_name, mapping_dict):
    genome = MappingString.from_mapping(problem, mapping_dict)
    cores = allocate_cores(problem, genome)
    mode = problem.omsm.mode(mode_name)
    schedule = schedule_mode(
        problem, mode, genome.mode_mapping(mode_name), cores
    )
    schedule.validate(mode, problem.architecture)
    return schedule


class TestBasicScheduling:
    def test_all_software_serialises(self, two_mode_problem):
        schedule = schedule_with(
            two_mode_problem,
            "O1",
            {
                "O1": {t: "PE0" for t in ["t1", "t2", "t3", "t4"]},
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        tasks = schedule.tasks_on("PE0")
        assert len(tasks) == 4
        for earlier, later in zip(tasks, tasks[1:]):
            assert later.start >= earlier.end - 1e-12

    def test_internal_comms_free(self, two_mode_problem):
        schedule = schedule_with(
            two_mode_problem,
            "O1",
            {
                "O1": {t: "PE0" for t in ["t1", "t2", "t3", "t4"]},
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        for entry in schedule.comms:
            assert entry.link is None
            assert entry.duration == 0.0
            assert entry.energy == 0.0

    def test_cross_pe_comm_on_bus(self, two_mode_problem):
        schedule = schedule_with(
            two_mode_problem,
            "O1",
            {
                "O1": {
                    "t1": "PE0",
                    "t2": "PE1",
                    "t3": "PE0",
                    "t4": "PE0",
                },
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        message = schedule.comm("t1", "t2")
        assert message.link == "CL0"
        # 1000 bits over 1 Mbit/s = 1 ms
        assert message.duration == pytest.approx(1e-3)
        assert message.energy == pytest.approx(1e-3 * 1e-3)
        assert message.start >= schedule.task("t1").end - 1e-12
        assert schedule.task("t2").start >= message.end - 1e-12

    def test_energy_is_nominal_power_times_time(self, two_mode_problem):
        schedule = schedule_with(
            two_mode_problem,
            "O1",
            {
                "O1": {t: "PE0" for t in ["t1", "t2", "t3", "t4"]},
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        entry = schedule.task("t1")
        assert entry.energy == pytest.approx(0.5 * 0.02)


class TestHardwareParallelism:
    def test_parallel_cores_overlap(self):
        problem = make_parallel_hw_problem(period=0.012)
        schedule = schedule_with(
            problem,
            "M",
            {
                "M": {
                    "src": "CPU",
                    "p0": "HW",
                    "p1": "HW",
                    "p2": "HW",
                    "p3": "HW",
                    "join": "CPU",
                }
            },
        )
        placed = schedule.tasks_on("HW")
        cores_used = {t.core_index for t in placed}
        assert len(cores_used) > 1
        # With several cores the four 4 ms tasks must overlap somewhere.
        overlapping = any(
            a.start < b.end and b.start < a.end
            for i, a in enumerate(placed)
            for b in placed[i + 1:]
        )
        assert overlapping

    def test_single_core_serialises_same_type(self):
        problem = make_parallel_hw_problem(period=10.0)  # ample slack
        schedule = schedule_with(
            problem,
            "M",
            {
                "M": {
                    "src": "CPU",
                    "p0": "HW",
                    "p1": "HW",
                    "p2": "HW",
                    "p3": "HW",
                    "join": "CPU",
                }
            },
        )
        placed = schedule.tasks_on("HW")
        assert {t.core_index for t in placed} == {0}
        ordered = sorted(placed, key=lambda t: t.start)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.start >= earlier.end - 1e-12


class TestLinkContention:
    def test_bus_serialises_transfers(self, two_mode_problem):
        # t2 and t3 both feed t4 across the bus; transfers must not
        # overlap on CL0.
        schedule = schedule_with(
            two_mode_problem,
            "O1",
            {
                "O1": {
                    "t1": "PE1",
                    "t2": "PE0",
                    "t3": "PE0",
                    "t4": "PE1",
                },
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        transfers = schedule.comms_on("CL0")
        assert len(transfers) >= 2
        for earlier, later in zip(transfers, transfers[1:]):
            assert later.start >= earlier.end - 1e-12


class TestRoutingErrors:
    def test_unconnected_pes_raise(self):
        graph = TaskGraph(
            "g",
            [Task("a", "X"), Task("b", "Y")],
            [CommEdge("a", "b", 100.0)],
        )
        omsm = OMSM("app", [Mode("M", graph, 1.0, 1.0)])
        pe0 = ProcessingElement("PE0", PEKind.GPP)
        pe1 = ProcessingElement("PE1", PEKind.GPP)
        # No link between the two PEs at all.
        arch = Architecture("arch", [pe0, pe1])
        tech = TechnologyLibrary(
            [
                TaskImplementation("X", "PE0", exec_time=0.01, power=0.1),
                TaskImplementation("X", "PE1", exec_time=0.01, power=0.1),
                TaskImplementation("Y", "PE0", exec_time=0.01, power=0.1),
                TaskImplementation("Y", "PE1", exec_time=0.01, power=0.1),
            ]
        )
        problem = Problem(omsm, arch, tech)
        genome = MappingString.from_mapping(
            problem, {"M": {"a": "PE0", "b": "PE1"}}
        )
        cores = allocate_cores(problem, genome)
        with pytest.raises(SchedulingError, match="no communication link"):
            schedule_mode(
                problem,
                problem.omsm.mode("M"),
                genome.mode_mapping("M"),
                cores,
            )

    def test_missing_mapping_raises(self, two_mode_problem):
        genome = MappingString(
            two_mode_problem, ["PE0"] * two_mode_problem.genome_length()
        )
        cores = allocate_cores(two_mode_problem, genome)
        with pytest.raises(SchedulingError, match="no mapping"):
            schedule_mode(
                two_mode_problem,
                two_mode_problem.omsm.mode("O1"),
                {"t1": "PE0"},
                cores,
            )


class TestDeterminismAndValidity:
    def test_same_inputs_same_schedule(self, two_mode_problem):
        rng = random.Random(3)
        genome = MappingString.random(two_mode_problem, rng)
        cores = allocate_cores(two_mode_problem, genome)
        mode = two_mode_problem.omsm.mode("O1")
        first = schedule_mode(
            two_mode_problem, mode, genome.mode_mapping("O1"), cores
        )
        second = schedule_mode(
            two_mode_problem, mode, genome.mode_mapping("O1"), cores
        )
        assert [
            (t.name, t.start, t.end, t.pe) for t in first.tasks
        ] == [(t.name, t.start, t.end, t.pe) for t in second.tasks]

    def test_random_mappings_always_validate(self, two_mode_problem):
        for seed in range(30):
            rng = random.Random(seed)
            genome = MappingString.random(two_mode_problem, rng)
            cores = allocate_cores(two_mode_problem, genome)
            for mode in two_mode_problem.omsm.modes:
                schedule = schedule_mode(
                    two_mode_problem,
                    mode,
                    genome.mode_mapping(mode.name),
                    cores,
                )
                schedule.validate(mode, two_mode_problem.architecture)

    def test_multiple_links_usable(self):
        # Two buses between the PEs: contention should spread across
        # both, and the result must stay valid.
        graph = TaskGraph(
            "g",
            [Task("a", "X"), Task("b", "Y"), Task("c", "Y")],
            [CommEdge("a", "b", 5000.0), CommEdge("a", "c", 5000.0)],
        )
        omsm = OMSM("app", [Mode("M", graph, 1.0, 1.0)])
        pe0 = ProcessingElement("PE0", PEKind.GPP)
        pe1 = ProcessingElement("PE1", PEKind.GPP)
        links = [
            CommunicationLink("CL0", ["PE0", "PE1"], 1e5),
            CommunicationLink("CL1", ["PE0", "PE1"], 1e5),
        ]
        arch = Architecture("arch", [pe0, pe1], links)
        tech = TechnologyLibrary(
            [
                TaskImplementation("X", "PE0", exec_time=0.01, power=0.1),
                TaskImplementation("Y", "PE1", exec_time=0.01, power=0.1),
            ]
        )
        problem = Problem(omsm, arch, tech)
        genome = MappingString.from_mapping(
            problem, {"M": {"a": "PE0", "b": "PE1", "c": "PE1"}}
        )
        cores = allocate_cores(problem, genome)
        mode = problem.omsm.mode("M")
        schedule = schedule_mode(
            problem, mode, genome.mode_mapping("M"), cores
        )
        schedule.validate(mode, arch)
        used_links = {c.link for c in schedule.comms}
        assert used_links == {"CL0", "CL1"}
