"""Unit tests for the serial-resource timeline."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling.schedule import ResourceTimeline


class TestEarliestSlot:
    def test_empty_resource(self):
        timeline = ResourceTimeline("r")
        assert timeline.earliest_slot(0.0, 5.0) == 0.0
        assert timeline.earliest_slot(3.0, 5.0) == 3.0

    def test_after_existing_booking(self):
        timeline = ResourceTimeline("r")
        timeline.book(0.0, 10.0)
        assert timeline.earliest_slot(0.0, 5.0) == 10.0

    def test_gap_insertion(self):
        timeline = ResourceTimeline("r")
        timeline.book(0.0, 2.0)
        timeline.book(10.0, 2.0)
        assert timeline.earliest_slot(0.0, 5.0) == 2.0
        assert timeline.earliest_slot(0.0, 8.0) == 2.0
        assert timeline.earliest_slot(0.0, 9.0) == 12.0

    def test_gap_too_small_skipped(self):
        timeline = ResourceTimeline("r")
        timeline.book(0.0, 2.0)
        timeline.book(4.0, 2.0)
        assert timeline.earliest_slot(0.0, 3.0) == 6.0

    def test_ready_inside_gap(self):
        timeline = ResourceTimeline("r")
        timeline.book(0.0, 2.0)
        timeline.book(10.0, 2.0)
        assert timeline.earliest_slot(5.0, 3.0) == 5.0
        assert timeline.earliest_slot(9.0, 3.0) == 12.0

    def test_zero_duration(self):
        timeline = ResourceTimeline("r")
        timeline.book(0.0, 2.0)
        assert timeline.earliest_slot(1.0, 0.0) >= 1.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SchedulingError):
            ResourceTimeline("r").earliest_slot(0.0, -1.0)


class TestBooking:
    def test_overlap_rejected(self):
        timeline = ResourceTimeline("r")
        timeline.book(0.0, 5.0)
        with pytest.raises(SchedulingError, match="overlap"):
            timeline.book(4.0, 2.0)
        with pytest.raises(SchedulingError, match="overlap"):
            timeline.book(-1.0, 2.0)

    def test_adjacent_bookings_allowed(self):
        timeline = ResourceTimeline("r")
        timeline.book(0.0, 5.0)
        timeline.book(5.0, 5.0)
        assert len(timeline) == 2
        assert timeline.intervals == ((0.0, 5.0), (5.0, 10.0))

    def test_next_free(self):
        timeline = ResourceTimeline("r")
        assert timeline.next_free() == 0.0
        timeline.book(0.0, 3.0)
        assert timeline.next_free() == 3.0

    def test_book_in_gap(self):
        timeline = ResourceTimeline("r")
        timeline.book(0.0, 2.0)
        timeline.book(10.0, 2.0)
        timeline.book(4.0, 3.0)
        assert timeline.intervals == (
            (0.0, 2.0),
            (4.0, 7.0),
            (10.0, 12.0),
        )

    def test_slot_then_book_never_conflicts(self):
        import random

        rng = random.Random(7)
        timeline = ResourceTimeline("r")
        for _ in range(200):
            ready = rng.uniform(0, 50)
            duration = rng.uniform(0, 5)
            start = timeline.earliest_slot(ready, duration)
            assert start >= ready
            timeline.book(start, duration)
