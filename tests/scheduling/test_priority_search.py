"""Tests for the priority-refinement inner-loop search."""

import random

import pytest

from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.scheduling.list_scheduler import schedule_mode
from repro.scheduling.priority_search import refine_schedule

from tests.conftest import make_parallel_hw_problem


def setup_case(problem, mode_name, mapping):
    genome = MappingString.from_mapping(problem, mapping)
    cores = allocate_cores(problem, genome)
    mode = problem.omsm.mode(mode_name)
    baseline = schedule_mode(
        problem, mode, genome.mode_mapping(mode_name), cores
    )
    return mode, genome, cores, baseline


class TestRefineSchedule:
    def test_never_worse_than_baseline(self, two_mode_problem):
        mode, genome, cores, baseline = setup_case(
            two_mode_problem,
            "O1",
            {
                "O1": {
                    "t1": "PE0",
                    "t2": "PE1",
                    "t3": "PE0",
                    "t4": "PE1",
                },
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        refined = refine_schedule(
            two_mode_problem,
            mode,
            genome.mode_mapping("O1"),
            cores,
            iterations=30,
        )
        assert refined.makespan <= baseline.makespan + 1e-12

    def test_zero_iterations_returns_alap_schedule(
        self, two_mode_problem
    ):
        mode, genome, cores, baseline = setup_case(
            two_mode_problem,
            "O1",
            {
                "O1": {t: "PE0" for t in ["t1", "t2", "t3", "t4"]},
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        refined = refine_schedule(
            two_mode_problem,
            mode,
            genome.mode_mapping("O1"),
            cores,
            iterations=0,
        )
        assert refined.makespan == pytest.approx(baseline.makespan)

    def test_result_validates(self, two_mode_problem):
        for seed in range(5):
            genome = MappingString.random(
                two_mode_problem, random.Random(seed)
            )
            cores = allocate_cores(two_mode_problem, genome)
            for mode in two_mode_problem.omsm.modes:
                refined = refine_schedule(
                    two_mode_problem,
                    mode,
                    genome.mode_mapping(mode.name),
                    cores,
                    iterations=10,
                    rng=random.Random(seed),
                )
                refined.validate(mode, two_mode_problem.architecture)

    def test_custom_objective(self, two_mode_problem):
        mode, genome, cores, _ = setup_case(
            two_mode_problem,
            "O1",
            {
                "O1": {
                    "t1": "PE0",
                    "t2": "PE1",
                    "t3": "PE0",
                    "t4": "PE1",
                },
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        # Objective: earliest finish of t3 specifically.
        refined = refine_schedule(
            two_mode_problem,
            mode,
            genome.mode_mapping("O1"),
            cores,
            iterations=20,
            objective=lambda s: s.task("t3").end,
        )
        refined.validate(mode, two_mode_problem.architecture)

    def test_deterministic_default(self, two_mode_problem):
        mode, genome, cores, _ = setup_case(
            two_mode_problem,
            "O1",
            {
                "O1": {
                    "t1": "PE0",
                    "t2": "PE1",
                    "t3": "PE0",
                    "t4": "PE1",
                },
                "O2": {t: "PE0" for t in ["u1", "u2", "u3"]},
            },
        )
        first = refine_schedule(
            two_mode_problem,
            mode,
            genome.mode_mapping("O1"),
            cores,
            iterations=15,
        )
        second = refine_schedule(
            two_mode_problem,
            mode,
            genome.mode_mapping("O1"),
            cores,
            iterations=15,
        )
        assert first.makespan == pytest.approx(second.makespan)

    def test_contended_hardware_benefits(self):
        # Four same-type tasks on two cores: ALAP ties are arbitrary,
        # refinement may reorder; at minimum it must not regress.
        problem = make_parallel_hw_problem(period=0.012)
        mode, genome, cores, baseline = setup_case(
            problem,
            "M",
            {
                "M": {
                    "src": "CPU",
                    "p0": "HW",
                    "p1": "HW",
                    "p2": "HW",
                    "p3": "HW",
                    "join": "CPU",
                }
            },
        )
        refined = refine_schedule(
            problem,
            mode,
            genome.mode_mapping("M"),
            cores,
            iterations=40,
        )
        assert refined.makespan <= baseline.makespan + 1e-12
