"""Unit tests for schedule containers and invariant validation."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling.schedule import (
    ModeSchedule,
    ScheduledComm,
    ScheduledTask,
)

from tests.conftest import make_two_mode_problem


def task(name, task_type, pe, start, end, core=None, power=0.1):
    return ScheduledTask(
        name=name,
        task_type=task_type,
        pe=pe,
        start=start,
        end=end,
        energy=power * (end - start),
        power=power,
        core_index=core,
    )


def comm(src, dst, link, start, end, energy=0.0):
    return ScheduledComm(
        src=src, dst=dst, link=link, start=start, end=end, energy=energy
    )


def valid_o1_schedule():
    """A correct schedule of mode O1 of the two-mode fixture.

    t1 (A) and t2 (B) on PE0 (software, serialised), t3 (C) and t4 (A)
    on PE1 (hardware cores), with bus transfers in between.
    """
    tasks = [
        task("t1", "A", "PE0", 0.000, 0.020),
        task("t2", "B", "PE0", 0.021, 0.043),
        task("t3", "C", "PE1", 0.0205, 0.0225, core=0),
        task("t4", "A", "PE1", 0.0432, 0.0452, core=0),
    ]
    comms = [
        comm("t1", "t2", None, 0.020, 0.020),
        comm("t1", "t3", "CL0", 0.020, 0.0205),
        comm("t2", "t4", "CL0", 0.043, 0.0431),
        comm("t3", "t4", "CL0", 0.0301, 0.0302),
    ]
    return ModeSchedule("O1", tasks, comms)


class TestScheduledActivities:
    def test_task_duration(self):
        entry = task("t", "T", "PE0", 1.0, 3.0)
        assert entry.duration == 2.0

    def test_task_end_before_start_rejected(self):
        with pytest.raises(SchedulingError):
            task("t", "T", "PE0", 3.0, 1.0)

    def test_internal_comm_must_be_instant(self):
        with pytest.raises(SchedulingError):
            comm("a", "b", None, 0.0, 1.0)

    def test_comm_key(self):
        assert comm("a", "b", "CL0", 0, 0).key == ("a", "b")


class TestContainers:
    def test_duplicate_task_rejected(self):
        with pytest.raises(SchedulingError):
            ModeSchedule(
                "m",
                [
                    task("t", "T", "PE0", 0, 1),
                    task("t", "T", "PE0", 2, 3),
                ],
                [],
            )

    def test_duplicate_comm_rejected(self):
        with pytest.raises(SchedulingError):
            ModeSchedule(
                "m",
                [],
                [
                    comm("a", "b", "CL0", 0, 1),
                    comm("a", "b", "CL0", 2, 3),
                ],
            )

    def test_makespan(self):
        schedule = valid_o1_schedule()
        assert schedule.makespan == pytest.approx(0.0452)

    def test_total_dynamic_energy(self):
        schedule = ModeSchedule(
            "m",
            [task("t", "T", "PE0", 0, 2, power=0.5)],
            [comm("x", "y", "CL0", 0, 1, energy=0.25)],
        )
        assert schedule.total_dynamic_energy() == pytest.approx(1.25)

    def test_tasks_on_sorted_by_start(self):
        schedule = valid_o1_schedule()
        names = [t.name for t in schedule.tasks_on("PE0")]
        assert names == ["t1", "t2"]

    def test_comms_on(self):
        schedule = valid_o1_schedule()
        keys = [c.key for c in schedule.comms_on("CL0")]
        assert keys[0] == ("t1", "t3")
        assert len(keys) == 3

    def test_active_components(self):
        schedule = valid_o1_schedule()
        assert schedule.active_pes() == ("PE0", "PE1")
        assert schedule.active_links() == ("CL0",)

    def test_lookups_raise_on_missing(self):
        schedule = valid_o1_schedule()
        with pytest.raises(SchedulingError):
            schedule.task("ghost")
        with pytest.raises(SchedulingError):
            schedule.comm("t1", "t4")


class TestValidation:
    def setup_method(self):
        self.problem = make_two_mode_problem()
        self.mode = self.problem.omsm.mode("O1")
        self.arch = self.problem.architecture

    def test_valid_schedule_passes(self):
        valid_o1_schedule().validate(self.mode, self.arch)

    def test_missing_task_detected(self):
        schedule = ModeSchedule("O1", [], [])
        with pytest.raises(SchedulingError):
            schedule.validate(self.mode, self.arch)

    def test_unknown_task_detected(self):
        base = valid_o1_schedule()
        schedule = ModeSchedule(
            "O1",
            list(base.tasks) + [task("ghost", "A", "PE0", 9, 10)],
            base.comms,
        )
        with pytest.raises(SchedulingError, match="unknown"):
            schedule.validate(self.mode, self.arch)

    def test_precedence_violation_detected(self):
        base = valid_o1_schedule()
        tasks = [
            t if t.name != "t2" else task("t2", "B", "PE0", 0.0, 0.019)
            for t in base.tasks
        ]
        # t2 now starts before t1's data arrives (and overlaps t1 on
        # PE0) - both are violations; validation must catch it.
        schedule = ModeSchedule("O1", tasks, base.comms)
        with pytest.raises(SchedulingError):
            schedule.validate(self.mode, self.arch)

    def test_comm_before_producer_detected(self):
        base = valid_o1_schedule()
        comms = [
            c
            if c.key != ("t1", "t3")
            else comm("t1", "t3", "CL0", 0.001, 0.0015)
            for c in base.comms
        ]
        schedule = ModeSchedule("O1", base.tasks, comms)
        with pytest.raises(SchedulingError, match="before producer"):
            schedule.validate(self.mode, self.arch)

    def test_internal_comm_with_split_endpoints_detected(self):
        base = valid_o1_schedule()
        comms = [
            c
            if c.key != ("t1", "t3")
            else comm("t1", "t3", None, 0.020, 0.020)
            for c in base.comms
        ]
        schedule = ModeSchedule("O1", base.tasks, comms)
        with pytest.raises(SchedulingError, match="internal"):
            schedule.validate(self.mode, self.arch)

    def test_software_overlap_detected(self):
        # t2 and t3 are data-independent; overlap them on PE0 while
        # keeping all arrival constraints satisfied.
        tasks = [
            task("t1", "A", "PE0", 0.000, 0.020),
            task("t2", "B", "PE0", 0.021, 0.043),
            task("t3", "C", "PE0", 0.030, 0.032),
            task("t4", "A", "PE1", 0.0445, 0.0465, core=0),
        ]
        comms = [
            comm("t1", "t2", None, 0.020, 0.020),
            comm("t1", "t3", None, 0.020, 0.020),
            comm("t2", "t4", "CL0", 0.043, 0.0431),
            comm("t3", "t4", "CL0", 0.0432, 0.0433),
        ]
        schedule = ModeSchedule("O1", tasks, comms)
        with pytest.raises(SchedulingError, match="overlap"):
            schedule.validate(self.mode, self.arch)

    def test_hardware_core_contention_detected(self):
        base = valid_o1_schedule()
        # Put t4 on the same core as t3, overlapping in time.
        tasks = [
            t
            if t.name != "t4"
            else task("t4", "A", "PE1", 0.021, 0.023, core=0)
            for t in base.tasks
        ]
        # Type differs (A vs C), so cores differ; force same type
        # contention instead by overlapping two A-tasks.
        tasks = [
            t
            if t.name != "t3"
            else task("t3", "A", "PE1", 0.0215, 0.0235, core=0)
            for t in tasks
        ]
        comms = base.comms
        schedule = ModeSchedule("O1", tasks, comms)
        with pytest.raises(SchedulingError):
            schedule.validate(self.mode, self.arch)

    def test_hardware_task_needs_core_index(self):
        base = valid_o1_schedule()
        tasks = [
            t
            if t.name != "t3"
            else task("t3", "C", "PE1", 0.0205, 0.0225, core=None)
            for t in base.tasks
        ]
        schedule = ModeSchedule("O1", tasks, base.comms)
        with pytest.raises(SchedulingError, match="core"):
            schedule.validate(self.mode, self.arch)

    def test_link_not_connecting_endpoints_detected(self):
        # Add a second link that does not reach PE1.
        from repro.architecture import (
            Architecture,
            CommunicationLink,
            PEKind,
            ProcessingElement,
        )

        pe0 = ProcessingElement("PE0", PEKind.GPP)
        pe1 = ProcessingElement("PE1", PEKind.ASIC, area=600.0)
        pe2 = ProcessingElement("PE2", PEKind.GPP)
        cl0 = CommunicationLink("CL0", ["PE0", "PE1"], 1e6)
        cl1 = CommunicationLink("CL1", ["PE0", "PE2"], 1e6)
        arch = Architecture("a", [pe0, pe1, pe2], [cl0, cl1])
        base = valid_o1_schedule()
        comms = [
            c
            if c.key != ("t1", "t3")
            else comm("t1", "t3", "CL1", 0.020, 0.0205)
            for c in base.comms
        ]
        schedule = ModeSchedule("O1", base.tasks, comms)
        with pytest.raises(SchedulingError, match="does not connect"):
            schedule.validate(self.mode, arch)


class TestTimingChecks:
    def test_feasible(self):
        problem = make_two_mode_problem(period=0.2)
        mode = problem.omsm.mode("O1")
        schedule = valid_o1_schedule()
        assert schedule.is_timing_feasible(mode)
        assert schedule.timing_violations(mode) == {}

    def test_violations_reported(self):
        problem = make_two_mode_problem(period=0.04)
        mode = problem.omsm.mode("O1")
        schedule = valid_o1_schedule()  # t4 ends at 0.0452 > 0.04
        violations = schedule.timing_violations(mode)
        assert "t4" in violations
        assert violations["t4"] == pytest.approx(0.0052)
        assert not schedule.is_timing_feasible(mode)
