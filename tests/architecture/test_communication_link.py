"""Unit tests for communication links."""

import pytest

from repro.architecture import CommunicationLink
from repro.errors import ArchitectureError


class TestConstruction:
    def test_basic(self):
        link = CommunicationLink(
            "bus",
            ["a", "b", "c"],
            bandwidth_bps=1e6,
            comm_power=1e-3,
            static_power=1e-4,
        )
        assert link.connects == frozenset({"a", "b", "c"})
        assert link.bandwidth_bps == 1e6

    def test_needs_two_distinct_pes(self):
        with pytest.raises(ArchitectureError):
            CommunicationLink("bus", ["a"], bandwidth_bps=1.0)
        with pytest.raises(ArchitectureError):
            CommunicationLink("bus", ["a", "a"], bandwidth_bps=1.0)

    def test_positive_bandwidth_required(self):
        with pytest.raises(ArchitectureError):
            CommunicationLink("bus", ["a", "b"], bandwidth_bps=0.0)

    def test_non_negative_power_required(self):
        with pytest.raises(ArchitectureError):
            CommunicationLink(
                "bus", ["a", "b"], bandwidth_bps=1.0, comm_power=-1.0
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ArchitectureError):
            CommunicationLink("", ["a", "b"], bandwidth_bps=1.0)


class TestQueries:
    def test_attaches(self):
        link = CommunicationLink("bus", ["a", "b"], bandwidth_bps=1.0)
        assert link.attaches("a")
        assert not link.attaches("c")

    def test_links_pair(self):
        link = CommunicationLink("bus", ["a", "b", "c"], bandwidth_bps=1.0)
        assert link.links_pair("a", "c")
        assert not link.links_pair("a", "d")


class TestTransfers:
    def test_transfer_time(self):
        link = CommunicationLink("bus", ["a", "b"], bandwidth_bps=1e6)
        assert link.transfer_time(1e6) == pytest.approx(1.0)
        assert link.transfer_time(0.0) == 0.0

    def test_transfer_energy(self):
        link = CommunicationLink(
            "bus", ["a", "b"], bandwidth_bps=1e6, comm_power=2e-3
        )
        # 0.5 s transfer at 2 mW -> 1 mJ
        assert link.transfer_energy(5e5) == pytest.approx(1e-3)

    def test_negative_transfer_rejected(self):
        link = CommunicationLink("bus", ["a", "b"], bandwidth_bps=1e6)
        with pytest.raises(ArchitectureError):
            link.transfer_time(-1.0)
