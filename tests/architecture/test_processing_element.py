"""Unit tests for processing elements."""

import pytest

from repro.architecture import PEKind, ProcessingElement
from repro.errors import ArchitectureError


class TestPEKind:
    def test_software_kinds(self):
        assert PEKind.GPP.is_software
        assert PEKind.ASIP.is_software
        assert not PEKind.ASIC.is_software
        assert not PEKind.FPGA.is_software

    def test_hardware_kinds(self):
        assert PEKind.ASIC.is_hardware
        assert PEKind.FPGA.is_hardware
        assert not PEKind.GPP.is_hardware
        assert not PEKind.ASIP.is_hardware


class TestConstruction:
    def test_software_pe(self):
        pe = ProcessingElement("cpu", PEKind.GPP, static_power=1e-3)
        assert pe.is_software
        assert not pe.is_hardware
        assert pe.area == 0.0
        assert not pe.dvs_enabled
        assert pe.nominal_voltage is None

    def test_hardware_pe_needs_area(self):
        with pytest.raises(ArchitectureError, match="area"):
            ProcessingElement("asic", PEKind.ASIC)
        with pytest.raises(ArchitectureError, match="area"):
            ProcessingElement("asic", PEKind.ASIC, area=-5.0)

    def test_hardware_pe(self):
        pe = ProcessingElement("asic", PEKind.ASIC, area=1000.0)
        assert pe.is_hardware
        assert pe.area == 1000.0

    def test_software_area_ignored(self):
        pe = ProcessingElement("cpu", PEKind.GPP, area=500.0)
        assert pe.area == 0.0

    def test_empty_name_rejected(self):
        with pytest.raises(ArchitectureError):
            ProcessingElement("", PEKind.GPP)

    def test_kind_type_checked(self):
        with pytest.raises(ArchitectureError):
            ProcessingElement("x", "gpp")

    def test_negative_static_power_rejected(self):
        with pytest.raises(ArchitectureError):
            ProcessingElement("cpu", PEKind.GPP, static_power=-1.0)


class TestDvs:
    def test_voltage_levels_sorted_and_deduplicated(self):
        pe = ProcessingElement(
            "cpu", PEKind.GPP, voltage_levels=[3.3, 1.2, 2.4, 1.2]
        )
        assert pe.voltage_levels == (1.2, 2.4, 3.3)
        assert pe.dvs_enabled
        assert pe.nominal_voltage == 3.3

    def test_single_level_is_not_dvs(self):
        pe = ProcessingElement("cpu", PEKind.GPP, voltage_levels=[3.3])
        assert not pe.dvs_enabled
        assert pe.nominal_voltage == 3.3

    def test_non_positive_level_rejected(self):
        with pytest.raises(ArchitectureError):
            ProcessingElement("cpu", PEKind.GPP, voltage_levels=[0.0, 1.2])

    def test_threshold_must_be_below_lowest_level(self):
        with pytest.raises(ArchitectureError, match="threshold"):
            ProcessingElement(
                "cpu",
                PEKind.GPP,
                voltage_levels=[1.2, 3.3],
                threshold_voltage=1.2,
            )

    def test_threshold_must_be_positive(self):
        with pytest.raises(ArchitectureError):
            ProcessingElement("cpu", PEKind.GPP, threshold_voltage=0.0)


class TestReconfiguration:
    def test_only_fpga_reconfigures(self):
        with pytest.raises(ArchitectureError, match="FPGA"):
            ProcessingElement(
                "asic",
                PEKind.ASIC,
                area=100.0,
                reconfig_time_per_cell=1e-6,
            )

    def test_fpga_reconfig_time(self):
        pe = ProcessingElement(
            "fpga",
            PEKind.FPGA,
            area=100.0,
            reconfig_time_per_cell=2e-6,
        )
        assert pe.reconfig_time_per_cell == 2e-6

    def test_negative_reconfig_rejected(self):
        with pytest.raises(ArchitectureError):
            ProcessingElement(
                "fpga",
                PEKind.FPGA,
                area=100.0,
                reconfig_time_per_cell=-1e-6,
            )
