"""Unit tests for the architecture graph."""

import pytest

from repro.architecture import (
    Architecture,
    CommunicationLink,
    PEKind,
    ProcessingElement,
)
from repro.errors import ArchitectureError


def pes():
    return [
        ProcessingElement("cpu", PEKind.GPP, voltage_levels=[1.2, 3.3]),
        ProcessingElement("dsp", PEKind.ASIP),
        ProcessingElement("asic", PEKind.ASIC, area=500.0),
        ProcessingElement("fpga", PEKind.FPGA, area=800.0),
    ]


def links():
    return [
        CommunicationLink("bus0", ["cpu", "dsp", "asic"], bandwidth_bps=1e6),
        CommunicationLink("bus1", ["cpu", "fpga"], bandwidth_bps=2e6),
    ]


class TestConstruction:
    def test_basic(self):
        arch = Architecture("arch", pes(), links())
        assert arch.pe_names == ("cpu", "dsp", "asic", "fpga")
        assert arch.link_names == ("bus0", "bus1")

    def test_needs_a_pe(self):
        with pytest.raises(ArchitectureError):
            Architecture("arch", [])

    def test_duplicate_pe_rejected(self):
        with pytest.raises(ArchitectureError):
            Architecture(
                "arch",
                [
                    ProcessingElement("x", PEKind.GPP),
                    ProcessingElement("x", PEKind.ASIP),
                ],
            )

    def test_link_with_unknown_pe_rejected(self):
        with pytest.raises(ArchitectureError, match="unknown"):
            Architecture(
                "arch",
                pes()[:2],
                [CommunicationLink("bus", ["cpu", "ghost"], 1e6)],
            )

    def test_link_name_colliding_with_pe_rejected(self):
        with pytest.raises(ArchitectureError):
            Architecture(
                "arch",
                pes()[:2],
                [CommunicationLink("cpu", ["cpu", "dsp"], 1e6)],
            )


class TestLookups:
    def test_pe_and_link(self):
        arch = Architecture("arch", pes(), links())
        assert arch.pe("asic").area == 500.0
        assert arch.link("bus1").bandwidth_bps == 2e6
        with pytest.raises(ArchitectureError):
            arch.pe("ghost")
        with pytest.raises(ArchitectureError):
            arch.link("ghost")

    def test_kind_views(self):
        arch = Architecture("arch", pes(), links())
        assert [p.name for p in arch.software_pes()] == ["cpu", "dsp"]
        assert [p.name for p in arch.hardware_pes()] == ["asic", "fpga"]
        assert [p.name for p in arch.dvs_pes()] == ["cpu"]

    def test_iteration(self):
        arch = Architecture("arch", pes(), links())
        assert [p.name for p in arch] == ["cpu", "dsp", "asic", "fpga"]


class TestConnectivity:
    def test_links_between(self):
        arch = Architecture("arch", pes(), links())
        assert [l.name for l in arch.links_between("cpu", "asic")] == [
            "bus0"
        ]
        assert arch.links_between("asic", "fpga") == ()

    def test_links_of(self):
        arch = Architecture("arch", pes(), links())
        assert [l.name for l in arch.links_of("cpu")] == ["bus0", "bus1"]
        assert [l.name for l in arch.links_of("fpga")] == ["bus1"]

    def test_is_fully_connected(self):
        arch = Architecture("arch", pes(), links())
        assert not arch.is_fully_connected()
        full = Architecture(
            "full",
            pes(),
            [
                CommunicationLink(
                    "bus", ["cpu", "dsp", "asic", "fpga"], 1e6
                )
            ],
        )
        assert full.is_fully_connected()

    def test_single_pe_is_fully_connected(self):
        arch = Architecture("one", [ProcessingElement("cpu", PEKind.GPP)])
        assert arch.is_fully_connected()
