"""Unit tests for the technology library."""

import pytest

from repro.architecture import (
    Architecture,
    PEKind,
    ProcessingElement,
    TaskImplementation,
    TechnologyLibrary,
)
from repro.errors import TechnologyError


def library():
    return TechnologyLibrary(
        [
            TaskImplementation("FFT", "cpu", exec_time=0.01, power=0.1),
            TaskImplementation(
                "FFT", "asic", exec_time=0.001, power=0.01, area=100.0
            ),
            TaskImplementation("IDCT", "cpu", exec_time=0.02, power=0.2),
        ]
    )


class TestTaskImplementation:
    def test_energy(self):
        entry = TaskImplementation("FFT", "cpu", exec_time=0.01, power=0.5)
        assert entry.energy == pytest.approx(0.005)

    @pytest.mark.parametrize("exec_time", [0.0, -1.0])
    def test_non_positive_time_rejected(self, exec_time):
        with pytest.raises(TechnologyError):
            TaskImplementation("FFT", "cpu", exec_time=exec_time, power=0.1)

    def test_negative_power_rejected(self):
        with pytest.raises(TechnologyError):
            TaskImplementation("FFT", "cpu", exec_time=0.01, power=-0.1)

    def test_negative_area_rejected(self):
        with pytest.raises(TechnologyError):
            TaskImplementation(
                "FFT", "cpu", exec_time=0.01, power=0.1, area=-1.0
            )

    def test_empty_fields_rejected(self):
        with pytest.raises(TechnologyError):
            TaskImplementation("", "cpu", exec_time=0.01, power=0.1)
        with pytest.raises(TechnologyError):
            TaskImplementation("FFT", "", exec_time=0.01, power=0.1)


class TestLibrary:
    def test_lookup(self):
        lib = library()
        assert lib.implementation("FFT", "asic").area == 100.0
        assert lib.supports("FFT", "cpu")
        assert not lib.supports("IDCT", "asic")

    def test_missing_entry_raises(self):
        with pytest.raises(TechnologyError):
            library().implementation("IDCT", "asic")

    def test_duplicate_entry_rejected(self):
        with pytest.raises(TechnologyError):
            TechnologyLibrary(
                [
                    TaskImplementation("A", "cpu", exec_time=1, power=1),
                    TaskImplementation("A", "cpu", exec_time=2, power=2),
                ]
            )

    def test_alternatives(self):
        lib = library()
        assert {e.pe for e in lib.alternatives("FFT")} == {"cpu", "asic"}
        assert lib.candidate_pes("IDCT") == ("cpu",)
        with pytest.raises(TechnologyError):
            lib.alternatives("GHOST")

    def test_task_types_and_len(self):
        lib = library()
        assert set(lib.task_types()) == {"FFT", "IDCT"}
        assert len(lib) == 3
        assert len(list(lib)) == 3


class TestValidation:
    def make_arch(self):
        return Architecture(
            "arch",
            [
                ProcessingElement("cpu", PEKind.GPP),
                ProcessingElement("asic", PEKind.ASIC, area=500.0),
            ],
        )

    def test_valid_library_passes(self):
        library().validate_against(self.make_arch(), ["FFT", "IDCT"])

    def test_unknown_pe_rejected(self):
        lib = TechnologyLibrary(
            [TaskImplementation("A", "ghost", exec_time=1, power=1)]
        )
        with pytest.raises(TechnologyError, match="unknown PE"):
            lib.validate_against(self.make_arch(), ["A"])

    def test_hardware_entry_needs_area(self):
        lib = TechnologyLibrary(
            [TaskImplementation("A", "asic", exec_time=1, power=1)]
        )
        with pytest.raises(TechnologyError, match="area"):
            lib.validate_against(self.make_arch(), [])

    def test_software_entry_must_not_have_area(self):
        lib = TechnologyLibrary(
            [TaskImplementation("A", "cpu", exec_time=1, power=1, area=10)]
        )
        with pytest.raises(TechnologyError, match="area"):
            lib.validate_against(self.make_arch(), [])

    def test_unimplementable_type_rejected(self):
        with pytest.raises(TechnologyError, match="no implementation"):
            library().validate_against(self.make_arch(), ["GHOST"])
