#!/usr/bin/env python3
"""Campaign runtime demo: durable runs, a kill, and a bit-identical resume.

Runs a small two-instance campaign through the public facade
(`repro.run_campaign`), simulates a crash partway through (the kind a
multi-hour Table-1 sweep used to lose everything to), then resumes the
same run directory and shows that

* already-finished jobs are skipped, not recomputed,
* the interrupted job continues from its last checkpoint,
* the final numbers are bit-identical to an uninterrupted campaign,
* the JSONL event stream alone reproduces the comparison table.

Run it::

    python examples/campaign_resume.py
"""

import tempfile
from pathlib import Path

from repro import CampaignSpec, SynthesisConfig, resume_campaign, run_campaign
from repro.analysis.reporting import format_comparison_table, results_from_events
from repro.runtime import events_path, read_events

SPEC = CampaignSpec(
    name="demo",
    instances=["mul9", "mul11"],
    runs=1,
    base_seed=400,
    config=SynthesisConfig(
        population_size=12,
        max_generations=12,
        convergence_generations=8,
    ),
    checkpoint_every=2,
)


class SimulatedCrash(KeyboardInterrupt):
    """Stands in for a Ctrl-C / OOM-kill / node failure."""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        reference_dir = Path(tmp) / "reference"
        crashed_dir = Path(tmp) / "crashed"

        # The uninterrupted campaign: four jobs, straight through.
        reference = run_campaign(SPEC, reference_dir)
        print(f"reference campaign: {reference.completed} jobs completed")

        # The same campaign, killed mid-flight on the third job.
        generations = [0]

        def crash_late(event):
            if event["event"] == "generation":
                generations[0] += 1
                if generations[0] == 30:
                    raise SimulatedCrash

        try:
            run_campaign(SPEC, crashed_dir, on_event=crash_late)
        except SimulatedCrash:
            print("campaign killed mid-job (simulated crash)")

        # Resume: completed jobs skip, the rest continue from their
        # checkpoints.  Equivalent CLI: repro-mm campaign --resume DIR
        resumed = resume_campaign(crashed_dir)
        skipped = sum(
            1
            for event in read_events(events_path(crashed_dir))
            if event["event"] == "job_skipped"
        )
        print(
            f"resumed campaign: {resumed.completed} jobs completed, "
            f"{skipped} skipped as already done"
        )

        identical = all(
            resumed.results[job_id].power == reference.results[job_id].power
            and resumed.results[job_id].history
            == reference.results[job_id].history
            for job_id in reference.results
        )
        print(f"bit-identical to the uninterrupted campaign: {identical}")

        # Reporting needs only the event stream — no re-runs, no
        # pickles, just the JSONL record of what happened.
        print()
        print(
            format_comparison_table(
                results_from_events(events_path(crashed_dir)),
                title="Recovered from events.jsonl",
            )
        )


if __name__ == "__main__":
    main()
