#!/usr/bin/env python3
"""Design-space exploration: how much hardware is worth buying?

The paper's savings come at unchanged hardware cost; the natural
follow-up during platform definition is to sweep the hardware budget.
This example scales the ASIC area of a suite instance from 40 % to
250 %, synthesises at every point and prints the area/power trade-off
curve with the Pareto-optimal points marked.  Run it::

    python examples/explore_area_tradeoff.py
"""

from repro import SynthesisConfig, load_problem
from repro.synthesis.pareto import (
    area_power_tradeoff,
    format_tradeoff,
    pareto_front,
)


def main() -> None:
    problem = load_problem("mul11")
    print(f"instance: {problem.name}")
    for pe in problem.architecture.hardware_pes():
        print(
            f"  {pe.name}: {pe.kind.value}, "
            f"{pe.area:.0f} cells at scale 1.0"
        )
    print()

    config = SynthesisConfig(
        population_size=24,
        max_generations=60,
        convergence_generations=15,
    )
    points = area_power_tradeoff(
        problem,
        scales=(0.4, 0.7, 1.0, 1.5, 2.5),
        config=config,
        runs=2,
        base_seed=77,
    )
    print(format_tradeoff(points))
    print()

    front = pareto_front(points)
    knee = min(
        front,
        key=lambda p: p.average_power * p.total_hw_area,
    )
    print(
        f"{len(front)} Pareto-optimal points; a balanced choice is "
        f"scale {knee.area_scale:.2f} "
        f"({knee.total_hw_area:.0f} cells, "
        f"{knee.average_power * 1e3:.3f} mW)"
    )


if __name__ == "__main__":
    main()
