#!/usr/bin/env python3
"""Validating Equation (1) by trace-driven simulation.

The synthesis trusts the analytical average-power model: dynamic power
weighted by mode execution probabilities plus static power of the
powered components.  This example closes the loop dynamically — it
synthesises an implementation, builds a semi-Markov mode process whose
long-run time fractions equal the specified Ψ vector, replays the
implementation over sampled mode traces of growing length and shows
the simulated average power converging onto the Equation-(1) estimate.

It also demonstrates what the static estimate deliberately ignores:
with fast mode switching (short dwell times), FPGA reconfiguration
overheads inflate the real power beyond the analytical value.

Run it::

    python examples/simulation_validation.py
"""

from repro import PEKind, SynthesisConfig, load_problem, synthesize
from repro.simulation import ModeProcess, simulate


def main() -> None:
    problem = load_problem("mul9")
    result = synthesize(
        problem,
        SynthesisConfig(
            seed=1,
            population_size=24,
            max_generations=50,
            convergence_generations=12,
        ),
    )
    implementation = result.best
    print(implementation.summary())
    print()

    print("convergence of simulated power onto Equation (1):")
    print(f"{'horizon (s)':>12}{'simulated (mW)':>17}{'error':>9}")
    for horizon in (50.0, 200.0, 1000.0, 5000.0, 20000.0):
        report = simulate(implementation, horizon=horizon, seed=42)
        print(
            f"{horizon:>12.0f}{report.average_power * 1e3:>17.4f}"
            f"{report.relative_error * 100:>8.2f}%"
        )
    print(
        f"{'Eq. (1)':>12}"
        f"{report.analytical_power * 1e3:>17.4f}"
    )
    print()

    has_fpga = any(
        pe.kind is PEKind.FPGA
        for pe in problem.architecture.hardware_pes()
    )
    print(
        "mode-change overheads vs dwell time "
        f"(architecture {'has' if has_fpga else 'has no'} FPGA):"
    )
    print(f"{'mean dwell':>12}{'changes':>9}{'reconfig ms':>13}{'error':>9}")
    for dwell_periods in (200.0, 50.0, 10.0, 3.0):
        process = ModeProcess(
            problem.omsm,
            mean_dwell={
                mode.name: dwell_periods * mode.period
                for mode in problem.omsm.modes
            },
        )
        report = simulate(
            implementation, horizon=2000.0, seed=7, process=process
        )
        print(
            f"{dwell_periods:>9.0f} φ  {report.transitions:>7}"
            f"{report.reconfiguration_time * 1e3:>13.1f}"
            f"{report.relative_error * 100:>8.2f}%"
        )


if __name__ == "__main__":
    main()
