#!/usr/bin/env python3
"""Quickstart: specify, synthesise and inspect a multi-mode system.

Builds a small two-mode device from scratch — a data-logger that spends
90 % of its time in a low-rate *monitor* mode and 10 % in a heavy
*burst-processing* mode — then synthesises an energy-minimal
implementation twice: once ignoring the mode execution probabilities
(the classic approach) and once considering them (the paper's
contribution).  Run it::

    python examples/quickstart.py
"""

from repro import (
    Architecture,
    CommEdge,
    CommunicationLink,
    DvsMethod,
    Mode,
    ModeTransition,
    OMSM,
    PEKind,
    Problem,
    ProcessingElement,
    SynthesisConfig,
    Task,
    TaskGraph,
    TaskImplementation,
    TechnologyLibrary,
    synthesize,
)


def build_problem() -> Problem:
    """A two-mode data-logger on a GPP + ASIC architecture."""
    # --- functionality ------------------------------------------------
    monitor = TaskGraph(
        "monitor",
        [
            Task("sample", "ADC"),
            Task("filter", "FIR"),
            Task("threshold", "CMP"),
            Task("log", "LOG"),
        ],
        [
            CommEdge("sample", "filter", 512),
            CommEdge("filter", "threshold", 512),
            CommEdge("threshold", "log", 64),
        ],
    )
    burst = TaskGraph(
        "burst",
        [
            Task("fetch", "LOG"),
            Task("fft", "FFT"),
            Task("features", "FEX"),
            Task("classify", "MLP"),
            Task("report", "TX"),
        ],
        [
            CommEdge("fetch", "fft", 4096),
            CommEdge("fft", "features", 4096),
            CommEdge("fetch", "classify", 1024),
            CommEdge("features", "classify", 1024),
            CommEdge("classify", "report", 256),
        ],
    )

    omsm = OMSM(
        "datalogger",
        [
            Mode("monitor", monitor, probability=0.9, period=0.050),
            Mode("burst", burst, probability=0.1, period=0.040),
        ],
        [
            ModeTransition("monitor", "burst", max_time=0.005),
            ModeTransition("burst", "monitor", max_time=0.005),
        ],
    )

    # --- architecture ---------------------------------------------------
    cpu = ProcessingElement(
        "CPU",
        PEKind.GPP,
        static_power=3e-3,
        voltage_levels=(1.2, 1.8, 2.4, 3.3),
    )
    # The accelerator's area fits only two of the three big cores
    # (FFT 420 + MLP 380 vs FIR 300 + FFT): the two synthesis policies
    # resolve this contention differently.
    accel = ProcessingElement(
        "ACCEL", PEKind.ASIC, area=800.0, static_power=2e-3
    )
    bus = CommunicationLink(
        "BUS",
        ["CPU", "ACCEL"],
        bandwidth_bps=2e6,
        comm_power=1e-3,
        static_power=5e-4,
    )
    architecture = Architecture("logger_arch", [cpu, accel], [bus])

    # --- technology library ---------------------------------------------
    # (type, software ms / mW, optional hardware ms / mW / cells)
    table = {
        "ADC": (1.0, 40.0, None),
        "FIR": (6.0, 60.0, (0.4, 1.5, 300.0)),
        "CMP": (0.5, 35.0, None),
        "LOG": (1.5, 40.0, None),
        "FFT": (12.0, 80.0, (0.5, 2.0, 420.0)),
        "FEX": (5.0, 55.0, (0.6, 2.0, 350.0)),
        "MLP": (9.0, 70.0, (0.8, 2.5, 380.0)),
        "TX": (2.0, 45.0, None),
    }
    entries = []
    for task_type, (sw_ms, sw_mw, hw) in table.items():
        entries.append(
            TaskImplementation(
                task_type,
                "CPU",
                exec_time=sw_ms * 1e-3,
                power=sw_mw * 1e-3,
            )
        )
        if hw is not None:
            hw_ms, hw_mw, cells = hw
            entries.append(
                TaskImplementation(
                    task_type,
                    "ACCEL",
                    exec_time=hw_ms * 1e-3,
                    power=hw_mw * 1e-3,
                    area=cells,
                )
            )
    return Problem(omsm, architecture, TechnologyLibrary(entries))


def main() -> None:
    problem = build_problem()
    print(f"problem: {problem}")
    print(f"shared task types: {sorted(problem.omsm.shared_task_types())}")
    print()

    config = SynthesisConfig(
        seed=1,
        population_size=24,
        max_generations=60,
        convergence_generations=15,
    )

    print("=== probability-neglecting synthesis (baseline) ===")
    baseline = synthesize(
        problem, config.with_updates(use_probabilities=False)
    )
    print(baseline.best.summary())
    print()

    print("=== probability-aware synthesis (proposed) ===")
    proposed = synthesize(
        problem, config.with_updates(use_probabilities=True)
    )
    print(proposed.best.summary())
    print()

    print("=== probability-aware synthesis + DVS ===")
    with_dvs = synthesize(
        problem,
        config.with_updates(
            use_probabilities=True, dvs=DvsMethod.GRADIENT
        ),
    )
    print(with_dvs.best.summary())
    print()

    saving = 100.0 * (
        1.0 - proposed.average_power / baseline.average_power
    )
    combined = 100.0 * (
        1.0 - with_dvs.average_power / baseline.average_power
    )
    print(
        f"considering mode execution probabilities saves "
        f"{saving:.1f}% average power;\n"
        f"adding dynamic voltage scaling brings the total saving to "
        f"{combined:.1f}%"
    )


if __name__ == "__main__":
    main()
