#!/usr/bin/env python3
"""The smart phone case study (paper Section 5, Table 3).

Synthesises the eight-mode smart phone — GSM telephony, MP3 playback
and digital camera on one DVS-capable GPP plus two ASICs — four times:

====================  =========================  ==================
row                   probability policy          voltage scaling
====================  =========================  ==================
fixed voltage         neglected (baseline)        none
fixed voltage         considered (proposed)       none
DVS                   neglected                   PV-DVS gradient
DVS                   considered (proposed)       PV-DVS gradient
====================  =========================  ==================

and reports the Table-3 style summary, ending with the combined saving
(the paper reports ~67 % from 2.602 mW down to 0.859 mW on its
instance).  Runtime is a few minutes; reduce ``RUNS`` or the GA sizes
for a quicker look.  Run it::

    python examples/smartphone_case_study.py
"""

import statistics

from repro import DvsMethod, SynthesisConfig, load_problem, synthesize

#: Optimisation repetitions per configuration (the paper averages 40).
RUNS = 2

CONFIG = SynthesisConfig(
    population_size=30,
    max_generations=80,
    convergence_generations=16,
)


def run_policy(problem, use_probabilities, dvs):
    powers = []
    times = []
    for run in range(RUNS):
        result = synthesize(
            problem,
            CONFIG.with_updates(
                use_probabilities=use_probabilities,
                dvs=dvs,
                seed=100 + run,
            ),
        )
        powers.append(result.average_power)
        times.append(result.cpu_time)
    return statistics.mean(powers), statistics.mean(times)


def main() -> None:
    problem = load_problem("smartphone")
    print("smart phone OMSM:")
    for mode in problem.omsm.modes:
        print(
            f"  {mode.name:<24} Ψ={mode.probability:5.2f} "
            f"φ={mode.period * 1e3:5.1f} ms  "
            f"{len(mode.task_graph):3d} tasks"
        )
    print()

    rows = {}
    for dvs, dvs_label in (
        (DvsMethod.NONE, "w/o DVS"),
        (DvsMethod.GRADIENT, "with DVS"),
    ):
        p_without, t_without = run_policy(problem, False, dvs)
        p_with, t_with = run_policy(problem, True, dvs)
        rows[dvs_label] = (p_without, t_without, p_with, t_with)
        reduction = 100.0 * (1.0 - p_with / p_without)
        print(
            f"{dvs_label:<9} | without Ψ: {p_without * 1e3:7.3f} mW "
            f"({t_without:5.1f} s) | with Ψ: {p_with * 1e3:7.3f} mW "
            f"({t_with:5.1f} s) | reduction {reduction:5.2f} %"
        )

    overall = 100.0 * (
        1.0 - rows["with DVS"][2] / rows["w/o DVS"][0]
    )
    print()
    print(
        f"overall: fixed-voltage/no-Ψ -> DVS+Ψ reduces average power "
        f"by {overall:.1f} % (paper: ~67 %)"
    )


if __name__ == "__main__":
    main()
