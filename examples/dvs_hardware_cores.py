#!/usr/bin/env python3
"""DVS on hardware components: the Fig. 5 transformation in action.

The paper's Section 4.2 observes that a hardware core can serve very
different performance needs across modes — its IDCT example must run
flat-out for JPEG decoding but only at the 25 ms audio sampling rate
for MP3 — and proposes voltage-scaling hardware components too.  All
cores on one component share a supply rail, so parallel execution is
first transformed into an equivalent sequential power profile.

This example builds one mode with four parallel filter tasks on a
two-core DVS-capable ASIC, shows the transformation's segments, runs
the gradient voltage selection and compares against the naive uniform
stretch.  Run it::

    python examples/dvs_hardware_cores.py
"""

from repro import (
    MappingString,
    allocate_cores,
    scale_schedule,
    schedule_mode,
    transform_parallel_tasks,
)
from repro.dvs.pv_dvs import uniform_scale_schedule

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
from tests.conftest import make_parallel_hw_problem  # noqa: E402


def show_schedule(schedule, label):
    print(f"  {label}: makespan {schedule.makespan * 1e3:.2f} ms, "
          f"energy {schedule.total_dynamic_energy() * 1e3:.4f} mJ")
    for task in sorted(schedule.tasks, key=lambda t: t.start):
        pieces = ""
        if task.pieces:
            pieces = "  @ " + ", ".join(
                f"{duration * 1e3:.2f}ms/{voltage:.1f}V"
                for duration, voltage in task.pieces
            )
        core = (
            f" core {task.core_index}" if task.core_index is not None else ""
        )
        print(
            f"    {task.name:<5} on {task.pe}{core}: "
            f"[{task.start * 1e3:6.2f}, {task.end * 1e3:6.2f}] ms, "
            f"{task.energy * 1e6:8.2f} µJ{pieces}"
        )


def main() -> None:
    # A period tight enough that the core allocator provisions several
    # parallel cores (mobility below execution time), yet with slack
    # left for voltage scaling.
    problem = make_parallel_hw_problem(dvs_hw=True, period=0.020)
    mode = problem.omsm.mode("M")
    genome = MappingString.from_mapping(
        problem,
        {
            "M": {
                "src": "CPU",
                "p0": "HW",
                "p1": "HW",
                "p2": "HW",
                "p3": "HW",
                "join": "CPU",
            }
        },
    )
    cores = allocate_cores(problem, genome)
    print(
        f"core allocation on HW: "
        f"{cores.counts['HW']['M']} (area {cores.area_used['HW']:.0f} "
        f"of {problem.architecture.pe('HW').area:.0f} cells)"
    )
    print()

    schedule = schedule_mode(
        problem, mode, genome.mode_mapping("M"), cores
    )
    show_schedule(schedule, "nominal schedule")
    print()

    segments = transform_parallel_tasks(schedule.tasks_on("HW"))
    print("  Fig. 5 transformation of the HW component:")
    for segment in segments:
        print(
            f"    segment {segment.index}: "
            f"[{segment.start * 1e3:6.2f}, {segment.end * 1e3:6.2f}] ms, "
            f"combined power {segment.power * 1e3:6.2f} mW, "
            f"active: {', '.join(segment.active)}"
        )
    print()

    scaled = scale_schedule(problem, mode, schedule)
    show_schedule(scaled, "after gradient DVS (shared rail)")
    print()

    uniform = uniform_scale_schedule(problem, mode, schedule)
    show_schedule(uniform, "after naive uniform DVS (ablation)")
    print()

    nominal_energy = schedule.total_dynamic_energy()
    for label, result in (
        ("gradient", scaled),
        ("uniform", uniform),
    ):
        saving = 100.0 * (
            1.0 - result.total_dynamic_energy() / nominal_energy
        )
        print(
            f"  {label:<9} saves {saving:5.1f} % dynamic energy "
            f"(deadline {mode.period * 1e3:.0f} ms, "
            f"makespan {result.makespan * 1e3:.2f} ms)"
        )


if __name__ == "__main__":
    main()
