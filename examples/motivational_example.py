#!/usr/bin/env python3
"""The paper's motivational examples (Section 2.3), reproduced exactly.

Example 1 (Fig. 2) quantifies the value of mode execution
probabilities: the same two-mode system has Ψ-weighted energy
26.7158 mW·s under the mapping that ignores probabilities and
15.7423 mW·s under the probability-aware mapping — 41 % lower.

Example 2 (Fig. 3) shows why implementing a task type *twice* (in
hardware and in software) can pay: giving up hardware sharing lets an
entire component be shut down during one mode.

Run it::

    python examples/motivational_example.py
"""

from repro import SynthesisConfig, evaluate_mapping, synthesize
from repro.examples_support import (
    FIG2_TABLE,
    fig2_mapping_with_probabilities,
    fig2_mapping_without_probabilities,
    fig2_problem,
    fig3_mapping_multiple_implementations,
    fig3_mapping_shared_core,
    fig3_problem,
    weighted_task_energy,
)


def print_mapping(problem, mapping, label):
    print(f"  {label}:")
    for mode in problem.omsm.modes:
        assignment = mapping.mode_mapping(mode.name)
        rendered = ", ".join(
            f"{task}->{pe}" for task, pe in assignment.items()
        )
        print(f"    {mode.name} (Ψ={mode.probability}): {rendered}")


def example_1() -> None:
    print("=" * 64)
    print("Example 1 (Fig. 2): mode execution probabilities matter")
    print("=" * 64)
    problem = fig2_problem()

    print("implementation table (type: SW ms/mW·s | HW ms/mW·s/cells):")
    for task_type, row in sorted(FIG2_TABLE.items()):
        sw_ms, sw_mws, hw_ms, hw_mws, cells = row
        print(
            f"  {task_type}: {sw_ms:5.1f} ms /{sw_mws:5.1f} mW·s | "
            f"{hw_ms:4.1f} ms / {hw_mws:6.3f} mW·s / {cells:3.0f} cells"
        )
    print()

    without = fig2_mapping_without_probabilities(problem)
    with_p = fig2_mapping_with_probabilities(problem)
    print_mapping(problem, without, "mapping optimised WITHOUT Ψ (Fig. 2b)")
    print_mapping(problem, with_p, "mapping optimised WITH Ψ (Fig. 2c)")

    energy_without = weighted_task_energy(problem, without)
    energy_with = weighted_task_energy(problem, with_p)
    print()
    print(
        f"  Ψ-weighted energy, Fig. 2b: {energy_without * 1e3:.4f} mW·s "
        f"(paper: 26.7158)"
    )
    print(
        f"  Ψ-weighted energy, Fig. 2c: {energy_with * 1e3:.4f} mW·s "
        f"(paper: 15.7423)"
    )
    reduction = 100.0 * (energy_without - energy_with) / energy_without
    print(f"  reduction: {reduction:.1f} % (paper: 41 %)")

    impl = evaluate_mapping(problem, with_p, SynthesisConfig())
    off = ", ".join(impl.shut_down_components("O1"))
    print(
        f"  bonus of Fig. 2c: during O1 the components [{off}] can be "
        f"switched off entirely"
    )

    result = synthesize(
        problem,
        SynthesisConfig(
            seed=1,
            population_size=20,
            max_generations=40,
            convergence_generations=10,
        ),
    )
    print(
        f"  the GA rediscovers the optimum: "
        f"{result.average_power * 1e3:.4f} mW·s"
    )
    print()


def example_2() -> None:
    print("=" * 64)
    print("Example 2 (Fig. 3): multiple task implementations")
    print("=" * 64)
    problem = fig3_problem()
    shared = fig3_mapping_shared_core(problem)
    multiple = fig3_mapping_multiple_implementations(problem)

    config = SynthesisConfig()
    impl_shared = evaluate_mapping(problem, shared, config)
    impl_multiple = evaluate_mapping(problem, multiple, config)

    print(
        "  Fig. 3b - τ1 and τ4 share one hardware core of type A:"
    )
    print(
        f"    components off during O2: "
        f"{impl_shared.shut_down_components('O2') or '(none)'}"
    )
    print(
        f"    average power: "
        f"{impl_shared.metrics.average_power * 1e3:.3f} mW"
    )
    print(
        "  Fig. 3c - τ4 implemented in software as well "
        "(no sharing, but shut-down):"
    )
    print(
        f"    components off during O2: "
        f"{impl_multiple.shut_down_components('O2')}"
    )
    print(
        f"    average power: "
        f"{impl_multiple.metrics.average_power * 1e3:.3f} mW"
    )
    saving = 100.0 * (
        1.0
        - impl_multiple.metrics.average_power
        / impl_shared.metrics.average_power
    )
    print(
        f"  duplicating the implementation of type A saves "
        f"{saving:.1f} % here"
    )
    print()


if __name__ == "__main__":
    example_1()
    example_2()
