#!/usr/bin/env python3
"""Closed-loop Ψ-adaptation demo on the smart phone case study.

The paper synthesises the smart phone for a *given* probability vector
Ψ (Table 3), but a deployed phone only reveals its true usage at run
time — and usage shifts.  This demo plays that scenario end to end:

1. A design-time design is synthesised for the paper's Ψ (standby/RLC
   dominated) and deployed.
2. The phone runs; mid-trace the user's behaviour changes — dwell
   times shift towards MP3 playback (a commuter starts streaming
   music), so the observed mode-time fractions drift away from the
   design-time Ψ.
3. The streaming estimator tracks the shift, the drift detector fires,
   and — the library holding no better design — the controller
   launches a *warm-started* re-synthesis at the estimated Ψ (initial
   GA population seeded from the deployed design), admits the result
   and swaps to it, charging the OMSM mode-transition time as
   switching cost.
4. The closed loop ends with measurably less energy than the static
   design-time deployment, and every decision is on the obs metrics
   and the event log.

Run it::

    python examples/online_adaptation.py
"""

import random

from repro import SynthesisConfig, smartphone_problem
from repro.adaptive import (
    AdaptationConfig,
    AdaptationController,
    DesignLibrary,
    DesignRecord,
    DriftConfig,
)
from repro.adaptive.controller import trace_energy
from repro.simulation.markov import ModeProcess
from repro.simulation.trace import generate_trace
from repro.synthesis.cosynthesis import MultiModeSynthesizer

#: Design-time synthesis budget (calibrated: feasible in ~1 s).
DESIGN_CONFIG = SynthesisConfig(
    population_size=16,
    max_generations=25,
    convergence_generations=8,
    local_search_budget_factor=0.5,
    seed=1,
)

#: Re-synthesis budget — smaller: it starts from a warm population.
RESYNTHESIS_CONFIG = SynthesisConfig(
    population_size=16,
    max_generations=15,
    convergence_generations=6,
    local_search_budget_factor=0.5,
    seed=1,
)

#: The usage shift: MP3 playback dominates, standby shrinks.
SHIFTED_PSI = {
    "rlc": 0.15,
    "mp3_rlc": 0.55,
    "mp3_network_search": 0.10,
    "gsm_codec_rlc": 0.05,
    "network_search": 0.02,
    "photo_rlc": 0.05,
    "photo_network_search": 0.02,
    "take_photo": 0.06,
}

#: Simulated seconds before / after the behaviour change.
PHASE1_HORIZON = 60.0
PHASE2_HORIZON = 240.0

ADAPTATION_CONFIG = AdaptationConfig(
    half_life=20.0,
    prior_weight=5.0,
    drift=DriftConfig(
        regret_threshold=0.05,
        # Estimator noise during phase 1 peaks near TV ≈ 0.28; the true
        # shift drives the distance past 0.5 — 0.35 separates the two.
        distance_threshold=0.35,
        hysteresis=0.5,
        cooldown=30.0,
        min_confidence=0.6,
    ),
    resynthesis_regret=0.05,
    resynthesis_novelty=0.10,
    synthesis=RESYNTHESIS_CONFIG,
    max_resyntheses=1,
    seed=1,
)


def make_trace(problem, seed=1):
    """A mode trace whose dwell statistics shift mid-stream."""
    rng = random.Random(seed)
    design_process = ModeProcess(problem.omsm)
    phase1 = generate_trace(design_process, PHASE1_HORIZON, rng)
    shifted_process = ModeProcess(
        problem.with_probabilities(SHIFTED_PSI).omsm
    )
    phase2 = generate_trace(shifted_process, PHASE2_HORIZON, rng)
    return [(v.mode, v.duration) for v in phase1 + phase2]


def main(seed=1):
    problem = smartphone_problem()
    print("1. design-time synthesis at the paper's Ψ ...")
    result = MultiModeSynthesizer(problem, DESIGN_CONFIG).run()
    print(
        f"   deployed: {result.average_power * 1e3:.3f} mW "
        f"({'feasible' if result.is_feasible else 'INFEASIBLE'}, "
        f"{result.generations} generations)"
    )
    library = DesignLibrary(
        [DesignRecord.from_result("design-time", result)]
    )

    trace = make_trace(problem, seed=seed)
    print(
        f"2. simulating {sum(d for _, d in trace):.0f} s of operation; "
        f"usage shifts to MP3-heavy after {PHASE1_HORIZON:.0f} s ..."
    )
    controller = AdaptationController(
        problem, library, ADAPTATION_CONFIG
    )
    report = controller.run(trace)

    static_energy = trace_energy(library.get("design-time"), trace)
    print("3. adaptation decisions:")
    for decision in report.decisions:
        print(
            f"   t={decision.time:7.1f} s  {decision.kind:<12} "
            f"-> {decision.design!r} ({decision.reason})"
        )
    print(
        f"   drift events: {report.drift_events}, swaps: "
        f"{report.swaps}, re-syntheses: {report.resyntheses}"
    )
    print(
        f"4. final Ψ estimate (top 3): "
        + ", ".join(
            f"{m}={v:.2f}"
            for m, v in sorted(
                report.psi_estimate.items(), key=lambda kv: -kv[1]
            )[:3]
        )
    )
    saved = static_energy - report.energy
    print(
        f"   static deployment : {static_energy:8.4f} J\n"
        f"   closed-loop       : {report.energy:8.4f} J "
        f"(saves {saved / static_energy:.1%})"
    )
    return {
        "report": report,
        "static_energy": static_energy,
        "adaptive_energy": report.energy,
        "library": library,
    }


if __name__ == "__main__":
    main()
