#!/usr/bin/env python3
"""Persistence, trace simulation and battery lifetime in one flow.

Builds a small wearable-style two-mode system, writes it to JSON,
reloads it (the round-trip a team would use to keep specifications
under version control), synthesises an implementation, validates the
analytical power by trace-driven simulation and finally translates the
saving into battery lifetime.  Run it::

    python examples/persist_simulate_battery.py
"""

import tempfile
from pathlib import Path

from repro import (
    Architecture,
    CommEdge,
    CommunicationLink,
    Mode,
    ModeTransition,
    OMSM,
    PEKind,
    Problem,
    ProcessingElement,
    SynthesisConfig,
    Task,
    TaskGraph,
    TaskImplementation,
    TechnologyLibrary,
    synthesize,
)
from repro.analysis.battery import Battery
from repro.io import load_problem, save_problem
from repro.simulation import simulate


def build_problem() -> Problem:
    """A wearable: 95 % heart-rate monitoring, 5 % workout analytics."""
    monitor = TaskGraph(
        "monitor",
        [
            Task("ppg_sample", "ADC"),
            Task("hr_filter", "FIR"),
            Task("hr_detect", "PEAK"),
            Task("store", "LOG"),
        ],
        [
            CommEdge("ppg_sample", "hr_filter", 256),
            CommEdge("hr_filter", "hr_detect", 256),
            CommEdge("hr_detect", "store", 64),
        ],
    )
    workout = TaskGraph(
        "workout",
        [
            Task("imu_sample", "ADC"),
            Task("fft", "FFT"),
            Task("features", "FIR"),
            Task("classify", "MLP"),
            Task("sync_ble", "TX"),
        ],
        [
            CommEdge("imu_sample", "fft", 2048),
            CommEdge("fft", "features", 2048),
            CommEdge("features", "classify", 512),
            CommEdge("classify", "sync_ble", 128),
        ],
    )
    omsm = OMSM(
        "wearable",
        [
            Mode("monitor", monitor, probability=0.95, period=0.040),
            Mode("workout", workout, probability=0.05, period=0.050),
        ],
        [
            ModeTransition("monitor", "workout", max_time=0.01),
            ModeTransition("workout", "monitor", max_time=0.01),
        ],
    )
    mcu = ProcessingElement(
        "MCU",
        PEKind.GPP,
        static_power=0.5e-3,
        voltage_levels=(1.2, 1.8, 2.4, 3.3),
    )
    dsp = ProcessingElement(
        "DSP", PEKind.ASIC, area=720.0, static_power=0.4e-3
    )
    bus = CommunicationLink(
        "SPI",
        ["MCU", "DSP"],
        bandwidth_bps=4e6,
        comm_power=0.3e-3,
        static_power=0.1e-3,
    )
    table = {
        "ADC": (0.8, 8.0, None),
        "FIR": (4.0, 12.0, (0.3, 0.4, 260.0)),
        "PEAK": (1.0, 9.0, None),
        "LOG": (0.6, 8.0, None),
        "FFT": (9.0, 16.0, (0.4, 0.5, 380.0)),
        "MLP": (7.0, 14.0, (0.7, 0.6, 330.0)),
        "TX": (2.5, 10.0, None),
    }
    entries = []
    for task_type, (sw_ms, sw_mw, hw) in table.items():
        entries.append(
            TaskImplementation(
                task_type,
                "MCU",
                exec_time=sw_ms * 1e-3,
                power=sw_mw * 1e-3,
            )
        )
        if hw:
            hw_ms, hw_mw, cells = hw
            entries.append(
                TaskImplementation(
                    task_type,
                    "DSP",
                    exec_time=hw_ms * 1e-3,
                    power=hw_mw * 1e-3,
                    area=cells,
                )
            )
    return Problem(
        omsm, Architecture("wearable_arch", [mcu, dsp], [bus]),
        TechnologyLibrary(entries),
    )


def main() -> None:
    problem = build_problem()

    # --- persistence round-trip ---------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "wearable.json"
        save_problem(problem, path)
        reloaded = load_problem(path)
        print(
            f"saved and reloaded {reloaded.name!r} "
            f"({path.stat().st_size} bytes of JSON)"
        )

    # --- synthesis ------------------------------------------------------
    config = SynthesisConfig(
        seed=2,
        population_size=24,
        max_generations=60,
        convergence_generations=15,
    )
    baseline = synthesize(
        reloaded, config.with_updates(use_probabilities=False)
    )
    proposed = synthesize(
        reloaded, config.with_updates(use_probabilities=True)
    )
    print()
    print(proposed.best.summary())
    saving = 1.0 - proposed.average_power / baseline.average_power
    print(f"\nprobability-aware saving: {saving * 100:.1f} %")

    # --- trace-driven validation ---------------------------------------
    report = simulate(proposed.best, horizon=20_000.0, seed=11)
    print()
    print(report.summary())

    # --- battery lifetime -----------------------------------------------
    battery = Battery(capacity_mah=180.0, voltage=3.8)
    base_life = battery.lifetime_hours_peukert(baseline.average_power)
    new_life = battery.lifetime_hours_peukert(proposed.average_power)
    print()
    print(
        f"180 mAh battery: {base_life:.0f} h -> {new_life:.0f} h "
        f"({battery.lifetime_gain(baseline.average_power, proposed.average_power) * 100:+.0f} %)"
    )


if __name__ == "__main__":
    main()
