# Convenience targets for the multi-mode co-synthesis reproduction.

PYTHON ?= python

# Floor for the async work-stealing arm's mean pool utilisation in
# `make bench-smoke`.  `auto` (default) derives it from os.cpu_count()
# vs --jobs: 0.85 with >= `--jobs` free cores, scaled down (floor 0.25)
# on smaller machines (e.g. a 1-CPU container) where the OS serialises
# the workers and the honest figure is lower.  Override per machine
# with a number, or disable with `off`:
#     make bench-smoke MIN_ASYNC_UTILISATION=0.40
MIN_ASYNC_UTILISATION ?= auto

.PHONY: install test test-fast lint typecheck bench bench-fast bench-smoke serve-smoke tables examples verify clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Static lint over the sources and tests.  ruff is pinned in the
# `dev` optional-dependency group; environments without it (e.g. the
# hermetic test container) skip the check instead of failing.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
	    ruff check src tests; \
	else \
	    echo "ruff not installed (pip install -e '.[dev]'); skipping lint"; \
	fi

# Static type check.  mypy is pinned in the `dev` optional-dependency
# group; environments without it skip the check instead of failing.
# Scope: the strictly annotated subsystems ([tool.mypy] in
# pyproject.toml) — currently the adaptive, dvs, engine and eval
# packages.
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
	    mypy --config-file pyproject.toml; \
	else \
	    echo "mypy not installed (pip install -e '.[dev]'); skipping typecheck"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick look: motivational figures + micro benches only.
bench-fast:
	$(PYTHON) -m pytest benchmarks/test_fig2_fig3.py \
	    benchmarks/test_micro.py --benchmark-only

# Evaluation-engine smoke benchmark: verifies the decode-cache/pool
# engine stays bit-identical to the legacy path, fails on a >20%
# speedup regression against the committed baseline, and gates the
# async work-stealing arm on mean pool utilisation >= 0.85 at jobs=4;
# then the PV-DVS kernel microbench (bit-identity + warm-start
# never-worse gates).
bench-smoke:
	$(PYTHON) benchmarks/bench_engine.py --quick --jobs 4 \
	    --check benchmarks/results/bench_engine_quick_baseline.json \
	    --min-async-utilisation $(MIN_ASYNC_UTILISATION)
	$(PYTHON) benchmarks/bench_dvs.py --quick

# Campaign job server smoke: boot a real server through the CLI,
# submit a quick campaign, and require the served result to be
# identical to a direct in-process run of the same spec.
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.server.smoke

# The full pre-merge gate: lint + typecheck (when available), tier-1
# test suite, the engine smoke benchmark (bit-identity + performance
# regression check), plus the job-server equivalence smoke.  Runs
# from a bare checkout — no `make install` needed.
verify: lint typecheck
	PYTHONPATH=src $(PYTHON) -m pytest tests/
	$(PYTHON) benchmarks/bench_engine.py --quick \
	    --check benchmarks/results/bench_engine_quick_baseline.json
	PYTHONPATH=src $(PYTHON) -m repro.server.smoke

tables:
	$(PYTHON) -m repro.cli table1 --runs 5
	$(PYTHON) -m repro.cli table2 --runs 2
	$(PYTHON) -m repro.cli table3 --runs 2

examples:
	$(PYTHON) examples/motivational_example.py
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/dvs_hardware_cores.py
	$(PYTHON) examples/simulation_validation.py
	$(PYTHON) examples/persist_simulate_battery.py
	$(PYTHON) examples/explore_area_tradeoff.py
	$(PYTHON) examples/campaign_resume.py
	$(PYTHON) examples/online_adaptation.py
	$(PYTHON) examples/smartphone_case_study.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
