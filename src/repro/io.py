"""JSON (de)serialisation of problems and synthesis results.

Lets users keep multi-mode specifications under version control,
exchange generated benchmark instances, and archive the mapping the
synthesis produced::

    from repro.io import problem_to_dict, problem_from_dict, save_problem

    save_problem(problem, "phone.json")
    problem = load_problem("phone.json")

The schema is versioned; loading validates through the normal model
constructors, so a tampered file fails with the library's usual
exceptions rather than producing an inconsistent instance.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Dict, Union

from repro.architecture.communication_link import CommunicationLink
from repro.architecture.platform import Architecture
from repro.architecture.processing_element import PEKind, ProcessingElement
from repro.architecture.technology import TaskImplementation, TechnologyLibrary
from repro.errors import SpecificationError
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.specification.mode import Mode
from repro.specification.omsm import OMSM, ModeTransition
from repro.specification.task_graph import CommEdge, Task, TaskGraph

#: Format identifier written into every file.
SCHEMA_VERSION = 1


def problem_to_dict(problem: Problem) -> Dict[str, Any]:
    """Serialise a complete problem instance to plain data."""
    omsm = problem.omsm
    architecture = problem.architecture
    return {
        "schema": SCHEMA_VERSION,
        "name": omsm.name,
        "modes": [
            {
                "name": mode.name,
                "probability": mode.probability,
                "period": mode.period,
                "tasks": [
                    {
                        "name": task.name,
                        "type": task.task_type,
                        "deadline": task.deadline,
                    }
                    for task in mode.task_graph
                ],
                "edges": [
                    {
                        "src": edge.src,
                        "dst": edge.dst,
                        "data_bits": edge.data_bits,
                    }
                    for edge in mode.task_graph.edges
                ],
            }
            for mode in omsm.modes
        ],
        "transitions": [
            {
                "src": transition.src,
                "dst": transition.dst,
                "max_time": (
                    None
                    if math.isinf(transition.max_time)
                    else transition.max_time
                ),
            }
            for transition in omsm.transitions
        ],
        "pes": [
            {
                "name": pe.name,
                "kind": pe.kind.value,
                "area": pe.area,
                "static_power": pe.static_power,
                "voltage_levels": list(pe.voltage_levels),
                "threshold_voltage": pe.threshold_voltage,
                "reconfig_time_per_cell": pe.reconfig_time_per_cell,
            }
            for pe in architecture.pes
        ],
        "links": [
            {
                "name": link.name,
                "connects": sorted(link.connects),
                "bandwidth_bps": link.bandwidth_bps,
                "comm_power": link.comm_power,
                "static_power": link.static_power,
            }
            for link in architecture.links
        ],
        "technology": [
            {
                "type": entry.task_type,
                "pe": entry.pe,
                "exec_time": entry.exec_time,
                "power": entry.power,
                "area": entry.area,
            }
            for entry in problem.technology
        ],
    }


def problem_from_dict(data: Dict[str, Any]) -> Problem:
    """Rebuild a problem instance from :func:`problem_to_dict` data."""
    if data.get("schema") != SCHEMA_VERSION:
        raise SpecificationError(
            f"unsupported schema version {data.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    modes = []
    for entry in data["modes"]:
        graph = TaskGraph(
            f"{entry['name']}_graph",
            [
                Task(
                    name=t["name"],
                    task_type=t["type"],
                    deadline=t.get("deadline"),
                )
                for t in entry["tasks"]
            ],
            [
                CommEdge(
                    src=e["src"],
                    dst=e["dst"],
                    data_bits=e.get("data_bits", 0.0),
                )
                for e in entry["edges"]
            ],
        )
        modes.append(
            Mode(
                name=entry["name"],
                task_graph=graph,
                probability=entry["probability"],
                period=entry["period"],
            )
        )
    transitions = [
        ModeTransition(
            src=t["src"],
            dst=t["dst"],
            max_time=(
                math.inf if t.get("max_time") is None else t["max_time"]
            ),
        )
        for t in data.get("transitions", [])
    ]
    omsm = OMSM(data["name"], modes, transitions)

    pes = [
        ProcessingElement(
            name=p["name"],
            kind=PEKind(p["kind"]),
            area=p.get("area", 0.0),
            static_power=p.get("static_power", 0.0),
            voltage_levels=p.get("voltage_levels") or None,
            threshold_voltage=p.get("threshold_voltage", 0.4),
            reconfig_time_per_cell=p.get("reconfig_time_per_cell", 0.0),
        )
        for p in data["pes"]
    ]
    links = [
        CommunicationLink(
            name=l["name"],
            connects=l["connects"],
            bandwidth_bps=l["bandwidth_bps"],
            comm_power=l.get("comm_power", 0.0),
            static_power=l.get("static_power", 0.0),
        )
        for l in data.get("links", [])
    ]
    architecture = Architecture(f"{data['name']}_arch", pes, links)
    technology = TechnologyLibrary(
        TaskImplementation(
            task_type=t["type"],
            pe=t["pe"],
            exec_time=t["exec_time"],
            power=t["power"],
            area=t.get("area", 0.0),
        )
        for t in data["technology"]
    )
    return Problem(omsm, architecture, technology)


def save_problem(
    problem: Problem, path: Union[str, pathlib.Path]
) -> None:
    """Write a problem instance to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(problem_to_dict(problem), indent=2, sort_keys=True)
    )


def load_problem(path: Union[str, pathlib.Path]) -> Problem:
    """Read a problem instance from a JSON file."""
    return problem_from_dict(
        json.loads(pathlib.Path(path).read_text())
    )


def mapping_to_dict(mapping: MappingString) -> Dict[str, Any]:
    """Serialise a mapping string (per-mode task → PE assignments)."""
    return {
        "schema": SCHEMA_VERSION,
        "problem": mapping.problem.name,
        "mapping": mapping.full_mapping(),
    }


def mapping_from_dict(
    problem: Problem, data: Dict[str, Any]
) -> MappingString:
    """Rebuild a mapping string against an existing problem."""
    if data.get("schema") != SCHEMA_VERSION:
        raise SpecificationError(
            f"unsupported schema version {data.get('schema')!r}"
        )
    if data.get("problem") != problem.name:
        raise SpecificationError(
            f"mapping was saved for problem {data.get('problem')!r}, "
            f"not {problem.name!r}"
        )
    return MappingString.from_mapping(problem, data["mapping"])
