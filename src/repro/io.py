"""JSON (de)serialisation of problems and synthesis results.

Lets users keep multi-mode specifications under version control,
exchange generated benchmark instances, and archive the mapping the
synthesis produced::

    from repro.io import problem_to_dict, problem_from_dict, save_problem

    save_problem(problem, "phone.json")
    problem = load_problem("phone.json")

The schema is versioned; loading validates through the normal model
constructors, so a tampered file fails with the library's usual
exceptions rather than producing an inconsistent instance.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.synthesis.config import SynthesisConfig
    from repro.synthesis.cosynthesis import SynthesisResult

from repro.architecture.communication_link import CommunicationLink
from repro.architecture.platform import Architecture
from repro.architecture.processing_element import PEKind, ProcessingElement
from repro.architecture.technology import TaskImplementation, TechnologyLibrary
from repro.errors import SpecificationError
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.specification.mode import Mode
from repro.specification.omsm import OMSM, ModeTransition
from repro.specification.task_graph import CommEdge, Task, TaskGraph

#: Format identifier written into every file.
SCHEMA_VERSION = 1


def problem_to_dict(problem: Problem) -> Dict[str, Any]:
    """Serialise a complete problem instance to plain data."""
    omsm = problem.omsm
    architecture = problem.architecture
    return {
        "schema": SCHEMA_VERSION,
        "name": omsm.name,
        "modes": [
            {
                "name": mode.name,
                "probability": mode.probability,
                "period": mode.period,
                "tasks": [
                    {
                        "name": task.name,
                        "type": task.task_type,
                        "deadline": task.deadline,
                    }
                    for task in mode.task_graph
                ],
                "edges": [
                    {
                        "src": edge.src,
                        "dst": edge.dst,
                        "data_bits": edge.data_bits,
                    }
                    for edge in mode.task_graph.edges
                ],
            }
            for mode in omsm.modes
        ],
        "transitions": [
            {
                "src": transition.src,
                "dst": transition.dst,
                "max_time": (
                    None
                    if math.isinf(transition.max_time)
                    else transition.max_time
                ),
            }
            for transition in omsm.transitions
        ],
        "pes": [
            {
                "name": pe.name,
                "kind": pe.kind.value,
                "area": pe.area,
                "static_power": pe.static_power,
                "voltage_levels": list(pe.voltage_levels),
                "threshold_voltage": pe.threshold_voltage,
                "reconfig_time_per_cell": pe.reconfig_time_per_cell,
            }
            for pe in architecture.pes
        ],
        "links": [
            {
                "name": link.name,
                "connects": sorted(link.connects),
                "bandwidth_bps": link.bandwidth_bps,
                "comm_power": link.comm_power,
                "static_power": link.static_power,
            }
            for link in architecture.links
        ],
        "technology": [
            {
                "type": entry.task_type,
                "pe": entry.pe,
                "exec_time": entry.exec_time,
                "power": entry.power,
                "area": entry.area,
            }
            for entry in problem.technology
        ],
    }


def problem_from_dict(data: Dict[str, Any]) -> Problem:
    """Rebuild a problem instance from :func:`problem_to_dict` data."""
    if data.get("schema") != SCHEMA_VERSION:
        raise SpecificationError(
            f"unsupported schema version {data.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    modes = []
    for entry in data["modes"]:
        graph = TaskGraph(
            f"{entry['name']}_graph",
            [
                Task(
                    name=t["name"],
                    task_type=t["type"],
                    deadline=t.get("deadline"),
                )
                for t in entry["tasks"]
            ],
            [
                CommEdge(
                    src=e["src"],
                    dst=e["dst"],
                    data_bits=e.get("data_bits", 0.0),
                )
                for e in entry["edges"]
            ],
        )
        modes.append(
            Mode(
                name=entry["name"],
                task_graph=graph,
                probability=entry["probability"],
                period=entry["period"],
            )
        )
    transitions = [
        ModeTransition(
            src=t["src"],
            dst=t["dst"],
            max_time=(
                math.inf if t.get("max_time") is None else t["max_time"]
            ),
        )
        for t in data.get("transitions", [])
    ]
    omsm = OMSM(data["name"], modes, transitions)

    pes = [
        ProcessingElement(
            name=p["name"],
            kind=PEKind(p["kind"]),
            area=p.get("area", 0.0),
            static_power=p.get("static_power", 0.0),
            voltage_levels=p.get("voltage_levels") or None,
            threshold_voltage=p.get("threshold_voltage", 0.4),
            reconfig_time_per_cell=p.get("reconfig_time_per_cell", 0.0),
        )
        for p in data["pes"]
    ]
    links = [
        CommunicationLink(
            name=l["name"],
            connects=l["connects"],
            bandwidth_bps=l["bandwidth_bps"],
            comm_power=l.get("comm_power", 0.0),
            static_power=l.get("static_power", 0.0),
        )
        for l in data.get("links", [])
    ]
    architecture = Architecture(f"{data['name']}_arch", pes, links)
    technology = TechnologyLibrary(
        TaskImplementation(
            task_type=t["type"],
            pe=t["pe"],
            exec_time=t["exec_time"],
            power=t["power"],
            area=t.get("area", 0.0),
        )
        for t in data["technology"]
    )
    return Problem(omsm, architecture, technology)


def save_problem(
    problem: Problem, path: Union[str, pathlib.Path]
) -> None:
    """Write a problem instance to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(problem_to_dict(problem), indent=2, sort_keys=True)
    )


def load_problem(path: Union[str, pathlib.Path]) -> Problem:
    """Read a problem instance from a JSON file."""
    return problem_from_dict(
        json.loads(pathlib.Path(path).read_text())
    )


def result_to_dict(result: "SynthesisResult") -> Dict[str, Any]:
    """Serialise a synthesis result (mapping + stable quality figures).

    Besides the aggregate Equation (1) power, the **per-mode** power
    breakdown is a stable part of the schema: it is the vector the
    adaptive design library needs to re-score the design exactly under
    any probability vector (p̄ is linear in Ψ), and it survives the
    round-trip bit-exactly because evaluation is a pure function of the
    genes.
    """
    best = result.best
    return {
        "schema": SCHEMA_VERSION,
        "problem": best.problem.name,
        "mapping": best.mapping.full_mapping(),
        "psi": best.problem.omsm.probability_vector(),
        "average_power": best.metrics.average_power,
        "mode_powers": {
            mode: dict(entry)
            for mode, entry in result.mode_powers.items()
        },
        "feasible": best.metrics.is_feasible,
        "generations": result.generations,
        "evaluations": result.evaluations,
        "cpu_time": result.cpu_time,
        "history": list(result.history),
    }


def result_from_dict(
    problem: Problem,
    data: Dict[str, Any],
    config: "Optional[SynthesisConfig]" = None,
) -> "SynthesisResult":
    """Rebuild a synthesis result against an existing problem.

    The stored mapping is re-evaluated (evaluation is pure, so this is
    an exact reconstruction, not an approximation); the recomputed
    per-mode powers are validated against the stored vector to within
    1e-9, so a result file quietly diverging from the problem it is
    loaded against fails loudly instead of mis-scoring designs.
    """
    from repro.synthesis.config import SynthesisConfig
    from repro.synthesis.cosynthesis import SynthesisResult
    from repro.synthesis.evaluator import evaluate_mapping

    if data.get("schema") != SCHEMA_VERSION:
        raise SpecificationError(
            f"unsupported schema version {data.get('schema')!r}"
        )
    if data.get("problem") != problem.name:
        raise SpecificationError(
            f"result was saved for problem {data.get('problem')!r}, "
            f"not {problem.name!r}"
        )
    mapping = MappingString.from_mapping(problem, data["mapping"])
    implementation = evaluate_mapping(
        problem, mapping, config or SynthesisConfig()
    )
    if implementation is None:
        raise SpecificationError(
            f"stored mapping for {problem.name!r} is no longer "
            f"evaluable against this problem"
        )
    stored = data.get("mode_powers", {})
    for mode in problem.omsm.mode_names:
        entry = stored.get(mode)
        if entry is None:
            raise SpecificationError(
                f"stored result misses mode_powers[{mode!r}]"
            )
        recomputed = (
            implementation.metrics.dynamic_power[mode],
            implementation.metrics.static_power[mode],
        )
        if (
            abs(entry["dynamic"] - recomputed[0]) > 1e-9
            or abs(entry["static"] - recomputed[1]) > 1e-9
        ):
            raise SpecificationError(
                f"stored mode_powers[{mode!r}] disagree with the "
                f"re-evaluated mapping (stored {entry}, recomputed "
                f"dynamic={recomputed[0]!r}, static={recomputed[1]!r})"
            )
    return SynthesisResult(
        best=implementation,
        generations=int(data.get("generations", 0)),
        evaluations=int(data.get("evaluations", 0)),
        cpu_time=float(data.get("cpu_time", 0.0)),
        history=[float(v) for v in data.get("history", [])],
    )


def save_result(
    result: "SynthesisResult", path: Union[str, pathlib.Path]
) -> None:
    """Write a synthesis result to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2, sort_keys=True)
    )


def load_result(
    problem: Problem,
    path: Union[str, pathlib.Path],
    config: "Optional[SynthesisConfig]" = None,
) -> "SynthesisResult":
    """Read a synthesis result from a JSON file."""
    return result_from_dict(
        problem,
        json.loads(pathlib.Path(path).read_text()),
        config,
    )


def mapping_to_dict(mapping: MappingString) -> Dict[str, Any]:
    """Serialise a mapping string (per-mode task → PE assignments)."""
    return {
        "schema": SCHEMA_VERSION,
        "problem": mapping.problem.name,
        "mapping": mapping.full_mapping(),
    }


def mapping_from_dict(
    problem: Problem, data: Dict[str, Any]
) -> MappingString:
    """Rebuild a mapping string against an existing problem."""
    if data.get("schema") != SCHEMA_VERSION:
        raise SpecificationError(
            f"unsupported schema version {data.get('schema')!r}"
        )
    if data.get("problem") != problem.name:
        raise SpecificationError(
            f"mapping was saved for problem {data.get('problem')!r}, "
            f"not {problem.name!r}"
        )
    return MappingString.from_mapping(problem, data["mapping"])
