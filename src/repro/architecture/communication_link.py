"""Communication links (buses) connecting processing elements.

A communication link ``λ`` carries data between the processing elements
attached to it.  Transfers on a link are serialised (single-master bus).
A transfer of ``b`` bits takes ``b / bandwidth_bps`` seconds and draws
``comm_power`` watts of dynamic power for its duration — matching the
paper's communication energy term ``E(ε) = P_C(ε) · t_C(ε)``.  Like
processing elements, links have a static power that is only paid in
modes where at least one communication is mapped onto them (links with
no traffic in a mode are switched off).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.errors import ArchitectureError


class CommunicationLink:
    """One edge ``λ`` of the architecture graph.

    Parameters
    ----------
    name:
        Identifier, unique within the architecture.
    connects:
        Names of the processing elements attached to this link (at
        least two).
    bandwidth_bps:
        Usable bandwidth in bits per second.
    comm_power:
        Dynamic power ``P_C`` in watts drawn while a transfer is active.
    static_power:
        Static power in watts drawn whenever the link is powered.
    """

    def __init__(
        self,
        name: str,
        connects: Iterable[str],
        bandwidth_bps: float,
        comm_power: float = 0.0,
        static_power: float = 0.0,
    ) -> None:
        if not name:
            raise ArchitectureError("communication link name must be non-empty")
        attached = frozenset(connects)
        if len(attached) < 2:
            raise ArchitectureError(
                f"link {name!r}: must connect at least two distinct PEs"
            )
        if bandwidth_bps <= 0:
            raise ArchitectureError(
                f"link {name!r}: bandwidth must be positive, "
                f"got {bandwidth_bps}"
            )
        if comm_power < 0 or static_power < 0:
            raise ArchitectureError(
                f"link {name!r}: power figures must be non-negative"
            )
        self.name = name
        self.connects: FrozenSet[str] = attached
        self.bandwidth_bps = float(bandwidth_bps)
        self.comm_power = float(comm_power)
        self.static_power = float(static_power)

    def attaches(self, pe_name: str) -> bool:
        """True if the processing element is on this link."""
        return pe_name in self.connects

    def links_pair(self, first: str, second: str) -> bool:
        """True if both processing elements are attached to this link."""
        return first in self.connects and second in self.connects

    def transfer_time(self, data_bits: float) -> float:
        """Seconds needed to move ``data_bits`` over this link."""
        if data_bits < 0:
            raise ArchitectureError(
                f"link {self.name!r}: negative transfer size {data_bits}"
            )
        return data_bits / self.bandwidth_bps

    def transfer_energy(self, data_bits: float) -> float:
        """Dynamic energy ``P_C · t_C`` of one transfer, in joules."""
        return self.comm_power * self.transfer_time(data_bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommunicationLink({self.name!r}, connects={sorted(self.connects)},"
            f" bw={self.bandwidth_bps})"
        )
