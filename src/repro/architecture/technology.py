"""Technology library: implementation alternatives per task type and PE.

Each entry describes how one task type executes on one processing
element: the nominal (worst-case) execution time ``t_min`` at maximal
supply voltage, the dynamic power ``P_max`` drawn while executing at
nominal voltage, and — for hardware components — the core area consumed
when the type is instantiated there.  A task type may have entries for
several processing elements; those are its *implementation alternatives*
(paper Section 2.2), and the mapping genome picks one per task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.errors import TechnologyError
from repro.architecture.platform import Architecture


@dataclass(frozen=True)
class TaskImplementation:
    """Execution properties of one task type on one processing element.

    Parameters
    ----------
    task_type:
        The functional type ``η`` this entry implements.
    pe:
        Name of the processing element.
    exec_time:
        Nominal execution time ``t_min`` in seconds (at ``V_max``).
    power:
        Dynamic power ``P_max`` in watts at nominal voltage.  The
        nominal dynamic energy of one execution is ``P_max · t_min``.
    area:
        Core area in cells when instantiated on a hardware component;
        must be zero for software processors.
    """

    task_type: str
    pe: str
    exec_time: float
    power: float
    area: float = 0.0

    def __post_init__(self) -> None:
        if not self.task_type or not self.pe:
            raise TechnologyError(
                "implementation entry needs non-empty task type and PE name"
            )
        if self.exec_time <= 0:
            raise TechnologyError(
                f"implementation {self.task_type!r}@{self.pe!r}: execution "
                f"time must be positive, got {self.exec_time}"
            )
        if self.power < 0:
            raise TechnologyError(
                f"implementation {self.task_type!r}@{self.pe!r}: power must "
                f"be non-negative"
            )
        if self.area < 0:
            raise TechnologyError(
                f"implementation {self.task_type!r}@{self.pe!r}: area must "
                f"be non-negative"
            )

    @property
    def energy(self) -> float:
        """Nominal dynamic energy ``P_max · t_min`` in joules."""
        return self.power * self.exec_time


class TechnologyLibrary:
    """All implementation alternatives for an application/architecture pair.

    Parameters
    ----------
    entries:
        The implementation table.  At most one entry per
        ``(task_type, pe)`` pair.
    """

    def __init__(self, entries: Iterable[TaskImplementation]) -> None:
        self._entries: Dict[Tuple[str, str], TaskImplementation] = {}
        for entry in entries:
            key = (entry.task_type, entry.pe)
            if key in self._entries:
                raise TechnologyError(
                    f"duplicate implementation entry for type "
                    f"{entry.task_type!r} on PE {entry.pe!r}"
                )
            self._entries[key] = entry
        self._by_type: Dict[str, List[TaskImplementation]] = {}
        for entry in self._entries.values():
            self._by_type.setdefault(entry.task_type, []).append(entry)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def implementation(self, task_type: str, pe: str) -> TaskImplementation:
        """The entry for ``task_type`` on ``pe``; raises if unsupported."""
        try:
            return self._entries[(task_type, pe)]
        except KeyError:
            raise TechnologyError(
                f"task type {task_type!r} has no implementation on PE {pe!r}"
            ) from None

    def supports(self, task_type: str, pe: str) -> bool:
        """True if ``task_type`` can execute on ``pe``."""
        return (task_type, pe) in self._entries

    def alternatives(self, task_type: str) -> Tuple[TaskImplementation, ...]:
        """All implementation alternatives of a task type."""
        try:
            return tuple(self._by_type[task_type])
        except KeyError:
            raise TechnologyError(
                f"task type {task_type!r} has no implementation alternatives"
            ) from None

    def candidate_pes(self, task_type: str) -> Tuple[str, ...]:
        """Names of the PEs able to execute ``task_type``."""
        return tuple(entry.pe for entry in self.alternatives(task_type))

    def task_types(self) -> Tuple[str, ...]:
        """All task types known to the library."""
        return tuple(self._by_type)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TaskImplementation]:
        return iter(self._entries.values())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate_against(
        self, architecture: Architecture, task_types: Iterable[str]
    ) -> None:
        """Check that the library is usable for a given problem.

        Raises :class:`~repro.errors.TechnologyError` if an entry names a
        PE that does not exist, if a hardware entry has zero area, if a
        software entry has non-zero area, or if any of the given task
        types has no implementation at all.
        """
        known_pes = set(architecture.pe_names)
        for entry in self._entries.values():
            if entry.pe not in known_pes:
                raise TechnologyError(
                    f"implementation {entry.task_type!r}@{entry.pe!r}: "
                    f"unknown PE"
                )
            pe = architecture.pe(entry.pe)
            if pe.is_hardware and entry.area <= 0:
                raise TechnologyError(
                    f"implementation {entry.task_type!r}@{entry.pe!r}: "
                    f"hardware core must have positive area"
                )
            if pe.is_software and entry.area != 0:
                raise TechnologyError(
                    f"implementation {entry.task_type!r}@{entry.pe!r}: "
                    f"software implementation must not consume area"
                )
        for task_type in task_types:
            if task_type not in self._by_type:
                raise TechnologyError(
                    f"task type {task_type!r} has no implementation on any PE"
                )
