"""The allocated architecture: processing elements plus links.

The synthesis in this library (as in the paper) assumes a pre-allocated
architecture — component selection is an input, not a decision variable.
:class:`Architecture` validates connectivity and answers the routing
question the inner loop needs: *which links can carry a message between
two given processing elements?*  Only single-hop routes are modelled,
which matches the bus-based target architectures of the paper (a message
between unconnected PEs makes a mapping infeasible).
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence, Tuple

from repro.errors import ArchitectureError
from repro.architecture.communication_link import CommunicationLink
from repro.architecture.processing_element import ProcessingElement


class Architecture:
    """A heterogeneous distributed architecture ``G_A(P, L)``.

    Parameters
    ----------
    name:
        Identifier of the architecture.
    pes:
        Processing elements ``P``.  Names must be unique.
    links:
        Communication links ``L``.  Each link must attach only known
        processing elements.
    """

    def __init__(
        self,
        name: str,
        pes: Sequence[ProcessingElement],
        links: Sequence[CommunicationLink] = (),
    ) -> None:
        if not name:
            raise ArchitectureError("architecture name must be non-empty")
        if not pes:
            raise ArchitectureError(
                f"architecture {name!r}: needs at least one PE"
            )
        self.name = name
        self._pes: Dict[str, ProcessingElement] = {}
        for pe in pes:
            if pe.name in self._pes:
                raise ArchitectureError(
                    f"architecture {name!r}: duplicate PE name {pe.name!r}"
                )
            self._pes[pe.name] = pe
        self._links: Dict[str, CommunicationLink] = {}
        for link in links:
            if link.name in self._links or link.name in self._pes:
                raise ArchitectureError(
                    f"architecture {name!r}: duplicate component name "
                    f"{link.name!r}"
                )
            unknown = link.connects - set(self._pes)
            if unknown:
                raise ArchitectureError(
                    f"architecture {name!r}: link {link.name!r} attaches "
                    f"unknown PEs {sorted(unknown)}"
                )
            self._links[link.name] = link

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def pes(self) -> Tuple[ProcessingElement, ...]:
        """All processing elements, in insertion order."""
        return tuple(self._pes.values())

    @property
    def links(self) -> Tuple[CommunicationLink, ...]:
        """All communication links, in insertion order."""
        return tuple(self._links.values())

    @property
    def pe_names(self) -> Tuple[str, ...]:
        return tuple(self._pes)

    @property
    def link_names(self) -> Tuple[str, ...]:
        return tuple(self._links)

    def pe(self, name: str) -> ProcessingElement:
        """Return the PE called ``name`` or raise ``ArchitectureError``."""
        try:
            return self._pes[name]
        except KeyError:
            raise ArchitectureError(
                f"architecture {self.name!r}: no PE named {name!r}"
            ) from None

    def link(self, name: str) -> CommunicationLink:
        """Return the link called ``name`` or raise ``ArchitectureError``."""
        try:
            return self._links[name]
        except KeyError:
            raise ArchitectureError(
                f"architecture {self.name!r}: no link named {name!r}"
            ) from None

    def __iter__(self) -> Iterator[ProcessingElement]:
        return iter(self._pes.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Architecture({self.name!r}, pes={len(self._pes)}, "
            f"links={len(self._links)})"
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def software_pes(self) -> Tuple[ProcessingElement, ...]:
        """Instruction-set processors (GPPs and ASIPs)."""
        return tuple(pe for pe in self._pes.values() if pe.is_software)

    def hardware_pes(self) -> Tuple[ProcessingElement, ...]:
        """Core-based components (ASICs and FPGAs)."""
        return tuple(pe for pe in self._pes.values() if pe.is_hardware)

    def dvs_pes(self) -> Tuple[ProcessingElement, ...]:
        """DVS-enabled processing elements."""
        return tuple(pe for pe in self._pes.values() if pe.dvs_enabled)

    def links_between(
        self, first_pe: str, second_pe: str
    ) -> Tuple[CommunicationLink, ...]:
        """Links that attach both given processing elements.

        The inner loop chooses one of these for every inter-PE message;
        an empty result makes any mapping that separates the two tasks
        across this PE pair communication-infeasible.
        """
        self.pe(first_pe)
        self.pe(second_pe)
        return tuple(
            link
            for link in self._links.values()
            if link.links_pair(first_pe, second_pe)
        )

    def links_of(self, pe_name: str) -> Tuple[CommunicationLink, ...]:
        """Links attached to a processing element."""
        self.pe(pe_name)
        return tuple(
            link for link in self._links.values() if link.attaches(pe_name)
        )

    def is_fully_connected(self) -> bool:
        """True if every PE pair shares at least one link.

        Architectures produced by the benchmark generator satisfy this;
        hand-built ones need not.
        """
        names = list(self._pes)
        for i, first in enumerate(names):
            for second in names[i + 1:]:
                if not self.links_between(first, second):
                    return False
        return True
