"""Target architecture model.

A distributed heterogeneous architecture ``G_A(P, L)`` (paper Section
2.2): processing elements (general-purpose processors, ASIPs, ASICs,
FPGAs) connected by communication links.  Processing elements may be
DVS-enabled, in which case they expose a set of discrete supply
voltages.  The :class:`~repro.architecture.technology.TechnologyLibrary`
describes, per (task type, processing element) pair, the implementation
properties: nominal execution time, nominal dynamic power and — for
hardware components — the core area.
"""

from repro.architecture.processing_element import PEKind, ProcessingElement
from repro.architecture.communication_link import CommunicationLink
from repro.architecture.platform import Architecture
from repro.architecture.technology import TaskImplementation, TechnologyLibrary

__all__ = [
    "Architecture",
    "CommunicationLink",
    "PEKind",
    "ProcessingElement",
    "TaskImplementation",
    "TechnologyLibrary",
]
