"""Processing elements: software processors and hardware components.

Four kinds are modelled, following the paper:

* ``GPP``/``ASIP`` — software processors.  Tasks mapped here execute
  sequentially.  No area accounting; every supported task type is
  available as code.
* ``ASIC`` — a hardware component with a fixed (non-reconfigurable) core
  set.  The union of the cores required by *all* modes must fit the
  available area; tasks on distinct cores run in parallel, tasks
  contending for one core are serialised.
* ``FPGA`` — like an ASIC but dynamically reconfigurable between modes:
  only the per-mode core set must fit the area, and swapping cores at a
  mode change costs reconfiguration time that is checked against the
  transition time limits of the OMSM.

Any kind may be DVS-enabled.  A DVS processing element exposes discrete
supply voltage levels; on hardware components all cores share one rail
(paper Section 4.2).
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple

from repro.errors import ArchitectureError


class PEKind(enum.Enum):
    """The four processing-element kinds of the architectural model."""

    GPP = "gpp"
    ASIP = "asip"
    ASIC = "asic"
    FPGA = "fpga"

    @property
    def is_software(self) -> bool:
        """True for instruction-set processors (sequential execution)."""
        return self in (PEKind.GPP, PEKind.ASIP)

    @property
    def is_hardware(self) -> bool:
        """True for core-based components (parallel execution, area)."""
        return self in (PEKind.ASIC, PEKind.FPGA)


class ProcessingElement:
    """One node ``π`` of the architecture graph.

    Parameters
    ----------
    name:
        Identifier, unique within the architecture.
    kind:
        One of :class:`PEKind`.
    area:
        Available area ``a_π^max`` in cells.  Required (positive) for
        hardware components; ignored for software processors.
    static_power:
        Static power ``P̄_stat`` in watts drawn whenever the component is
        powered in a mode.  Components with no activity in a mode are
        shut down and contribute nothing (paper Section 2.3).
    voltage_levels:
        Discrete supply voltages for DVS-enabled components, e.g.
        ``(1.2, 1.8, 2.4, 3.3)``.  ``None`` or empty means the component
        is not DVS-enabled and always runs at nominal voltage.
    threshold_voltage:
        Device threshold voltage ``V_t`` used by the delay model.  Must
        be below the lowest voltage level.
    reconfig_time_per_cell:
        FPGA only: seconds needed to (re)configure one cell of core
        area during a mode transition.
    """

    def __init__(
        self,
        name: str,
        kind: PEKind,
        area: float = 0.0,
        static_power: float = 0.0,
        voltage_levels: Optional[Sequence[float]] = None,
        threshold_voltage: float = 0.4,
        reconfig_time_per_cell: float = 0.0,
    ) -> None:
        if not name:
            raise ArchitectureError("processing element name must be non-empty")
        if not isinstance(kind, PEKind):
            raise ArchitectureError(
                f"PE {name!r}: kind must be a PEKind, got {kind!r}"
            )
        if kind.is_hardware and area <= 0:
            raise ArchitectureError(
                f"PE {name!r}: hardware component needs positive area, "
                f"got {area}"
            )
        if static_power < 0:
            raise ArchitectureError(
                f"PE {name!r}: static power must be non-negative"
            )
        if reconfig_time_per_cell < 0:
            raise ArchitectureError(
                f"PE {name!r}: reconfiguration time must be non-negative"
            )
        if reconfig_time_per_cell > 0 and kind is not PEKind.FPGA:
            raise ArchitectureError(
                f"PE {name!r}: only FPGAs have reconfiguration time"
            )
        levels: Tuple[float, ...] = ()
        if voltage_levels:
            levels = tuple(sorted(set(float(v) for v in voltage_levels)))
            if any(v <= 0 for v in levels):
                raise ArchitectureError(
                    f"PE {name!r}: voltage levels must be positive"
                )
            if threshold_voltage >= levels[0]:
                raise ArchitectureError(
                    f"PE {name!r}: threshold voltage {threshold_voltage} must "
                    f"be below the lowest supply level {levels[0]}"
                )
        if threshold_voltage <= 0:
            raise ArchitectureError(
                f"PE {name!r}: threshold voltage must be positive"
            )
        self.name = name
        self.kind = kind
        self.area = float(area) if kind.is_hardware else 0.0
        self.static_power = float(static_power)
        self.voltage_levels = levels
        self.threshold_voltage = float(threshold_voltage)
        self.reconfig_time_per_cell = float(reconfig_time_per_cell)

    @property
    def is_software(self) -> bool:
        return self.kind.is_software

    @property
    def is_hardware(self) -> bool:
        return self.kind.is_hardware

    @property
    def dvs_enabled(self) -> bool:
        """True if the component offers more than one supply voltage."""
        return len(self.voltage_levels) >= 2

    @property
    def nominal_voltage(self) -> Optional[float]:
        """The maximal supply voltage ``V_max`` (``None`` if not DVS)."""
        if not self.voltage_levels:
            return None
        return self.voltage_levels[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dvs = f", dvs={self.voltage_levels}" if self.dvs_enabled else ""
        area = f", area={self.area}" if self.is_hardware else ""
        return f"ProcessingElement({self.name!r}, {self.kind.value}{area}{dvs})"
