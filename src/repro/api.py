"""The stable public facade of :mod:`repro`.

Three calls cover the common workflows, so downstream code does not
need to know the package layout:

>>> from repro import load_problem, synthesize, run_campaign
>>> problem = load_problem("mul5")
>>> result = synthesize(problem)                       # one run
>>> campaign = run_campaign(                           # many runs,
...     {"name": "demo", "instances": ["mul5"], "runs": 3},
...     run_dir="runs/demo")                           # resumable

Deep imports (``repro.synthesis.cosynthesis``,
``repro.benchgen.suite``, …) keep working but are no longer the
recommended surface; see ``docs/api.md``.
"""

from __future__ import annotations

import pathlib
from typing import Any, Callable, Dict, Mapping, Optional, Union

from repro.benchgen import registry
from repro.problem import Problem
from repro.runtime.runner import (
    CampaignResult,
    CampaignRunner,
    resume_campaign,
)
from repro.runtime.spec import CampaignSpec
from repro.synthesis.cosynthesis import synthesize

__all__ = [
    "load_problem",
    "problem_names",
    "resume_campaign",
    "run_campaign",
    "synthesize",
]


def load_problem(name: str) -> Problem:
    """Load a named benchmark instance from the problem registry.

    Valid names are :func:`problem_names` — the paper's ``mul1`` …
    ``mul12`` suite and ``smartphone``, plus anything registered via
    :func:`repro.benchgen.registry.register`.  (To load a problem from
    a JSON *file* instead, use :func:`repro.io.load_problem`.)
    """
    return registry.get(name)


def problem_names() -> list:
    """All instance names :func:`load_problem` accepts."""
    return registry.names()


def run_campaign(
    spec: Union[CampaignSpec, Mapping[str, Any], str, pathlib.Path],
    run_dir: Union[str, pathlib.Path, None] = None,
    problem_loader: Optional[Callable[[str], Problem]] = None,
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> CampaignResult:
    """Execute an experiment campaign (resumably, when given a dir).

    ``spec`` may be a :class:`~repro.runtime.spec.CampaignSpec`, a
    plain dict in the same shape, or a path to a ``spec.json`` file.
    With ``run_dir`` given, all progress (checkpoints, results, the
    JSONL event stream) is durable there and a second call with the
    same directory resumes instead of recomputing; without it the
    campaign runs in a throw-away temporary directory.
    """
    if isinstance(spec, (str, pathlib.Path)):
        spec = CampaignSpec.load(spec)
    elif not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_dict(spec)
    if run_dir is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
            return CampaignRunner(
                spec, tmp, problem_loader=problem_loader, on_event=on_event
            ).run()
    return CampaignRunner(
        spec, run_dir, problem_loader=problem_loader, on_event=on_event
    ).run()
