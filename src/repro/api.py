"""The stable public facade of :mod:`repro`.

Three calls cover the common workflows, so downstream code does not
need to know the package layout:

>>> from repro import load_problem, synthesize, run_campaign
>>> problem = load_problem("mul5")
>>> result = synthesize(problem)                       # one run
>>> campaign = run_campaign(                           # many runs,
...     {"name": "demo", "instances": ["mul5"], "runs": 3},
...     run_dir="runs/demo")                           # resumable

Deep imports (``repro.synthesis.cosynthesis``,
``repro.benchgen.suite``, …) keep working but are no longer the
recommended surface; see ``docs/api.md``.
"""

from __future__ import annotations

import pathlib
import random
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Union

from repro.adaptive.controller import (
    AdaptationConfig,
    AdaptationController,
    AdaptationReport,
)
from repro.adaptive.library import DesignLibrary, DesignRecord
from repro.benchgen import registry
from repro.problem import Problem
from repro.runtime.events import EVENTS_FILENAME, EventLog
from repro.runtime.runner import (
    CampaignResult,
    CampaignRunner,
    resume_campaign,
)
from repro.runtime.spec import CampaignSpec
from repro.synthesis.cosynthesis import MultiModeSynthesizer, synthesize

__all__ = [
    "adapt_online",
    "load_problem",
    "problem_names",
    "resume_campaign",
    "run_campaign",
    "serve_campaigns",
    "submit_job",
    "synthesize",
]

#: File name the adaptation facade persists the design library under.
LIBRARY_FILENAME = "library.json"


def load_problem(name: str) -> Problem:
    """Load a named benchmark instance from the problem registry.

    Valid names are :func:`problem_names` — the paper's ``mul1`` …
    ``mul12`` suite and ``smartphone``, plus anything registered via
    :func:`repro.benchgen.registry.register`.  (To load a problem from
    a JSON *file* instead, use :func:`repro.io.load_problem`.)
    """
    return registry.get(name)


def problem_names() -> list:
    """All instance names :func:`load_problem` accepts."""
    return registry.names()


def run_campaign(
    spec: Union[CampaignSpec, Mapping[str, Any], str, pathlib.Path],
    run_dir: Union[str, pathlib.Path, None] = None,
    problem_loader: Optional[Callable[[str], Problem]] = None,
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> CampaignResult:
    """Execute an experiment campaign (resumably, when given a dir).

    ``spec`` may be a :class:`~repro.runtime.spec.CampaignSpec`, a
    plain dict in the same shape, or a path to a ``spec.json`` file.
    With ``run_dir`` given, all progress (checkpoints, results, the
    JSONL event stream) is durable there and a second call with the
    same directory resumes instead of recomputing; without it the
    campaign runs in a throw-away temporary directory.
    """
    if isinstance(spec, (str, pathlib.Path)):
        spec = CampaignSpec.load(spec)
    elif not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_dict(spec)
    if run_dir is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
            return CampaignRunner(
                spec, tmp, problem_loader=problem_loader, on_event=on_event
            ).run()
    return CampaignRunner(
        spec, run_dir, problem_loader=problem_loader, on_event=on_event
    ).run()


def serve_campaigns(
    state_dir: Union[str, pathlib.Path],
    socket_path: Union[str, pathlib.Path, None] = None,
    slots: int = 2,
    tenant_quota: int = 8,
    queue_bound: int = 64,
    tenant_weights: Optional[Mapping[str, float]] = None,
) -> None:
    """Run the multi-tenant campaign job server (blocking).

    Binds a JSON-lines Unix socket at ``socket_path`` (default
    ``state_dir/server.sock``) and serves ``submit``/``status``/
    ``cancel``/``result``/``stream`` until SIGTERM/SIGINT.  Jobs are
    durable in ``state_dir``: a restart with the same directory
    requeues whatever was in flight and resumes it bit-identically
    from its latest checkpoint.  See ``docs/server.md``.
    """
    from repro.server.service import CampaignServer

    CampaignServer(
        state_dir,
        socket_path=socket_path,
        slots=slots,
        tenant_quota=tenant_quota,
        queue_bound=queue_bound,
        tenant_weights=tenant_weights,
    ).run()


def submit_job(
    spec: Union[CampaignSpec, Mapping[str, Any], str, pathlib.Path],
    socket_path: Union[str, pathlib.Path],
    tenant: str = "default",
    priority: int = 0,
    wait: bool = False,
    timeout: float = 3600.0,
) -> Dict[str, Any]:
    """Submit a campaign to a running server; returns the job record.

    ``spec`` accepts the same shapes as :func:`run_campaign`.  Raises
    :class:`~repro.errors.AdmissionError` when the server rejects the
    job for backpressure (tenant quota or queue bound).  With ``wait``
    the call blocks (up to ``timeout`` seconds) until the job reaches
    a terminal state and returns its final record; otherwise it
    returns the freshly queued record immediately.
    """
    from repro.server.client import ServerClient

    if isinstance(spec, (str, pathlib.Path)):
        spec = CampaignSpec.load(spec)
    elif not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_dict(spec)
    client = ServerClient(socket_path)
    submitted = client.submit(spec, tenant=tenant, priority=priority)
    if not wait:
        return dict(client.status(submitted["job_id"])["job"])
    return dict(client.wait(submitted["job_id"], timeout=timeout))


def adapt_online(
    problem: Union[str, Problem],
    trace: Optional[Iterable[Any]] = None,
    steps: int = 200,
    config: Optional[AdaptationConfig] = None,
    library: Union[DesignLibrary, str, pathlib.Path, None] = None,
    run_dir: Union[str, pathlib.Path, None] = None,
    seed: Optional[int] = None,
) -> AdaptationReport:
    """Run the closed Ψ-adaptation loop over a mode trace.

    ``problem`` is an instance or a registry name.  ``trace`` is any
    iterable of ``(mode, dwell)`` pairs or
    :class:`~repro.simulation.trace.ModeVisit` objects; when omitted,
    ``steps`` visits (approximately) are sampled from the OMSM's
    :class:`~repro.simulation.markov.ModeProcess` at the design-time Ψ.
    ``library`` is a :class:`~repro.adaptive.library.DesignLibrary`, a
    path to a saved one, or ``None`` — then a design-time design is
    synthesised first (with ``config.synthesis``) to bootstrap it.
    With ``run_dir`` given, adaptation events append to
    ``events.jsonl`` there and the (possibly grown) library is saved to
    ``library.json``.  ``seed`` overrides ``config.seed``; a fixed seed
    makes the entire run — trace, estimates, swaps, re-syntheses —
    bit-reproducible.
    """
    if isinstance(problem, str):
        problem = registry.get(problem)
    config = config or AdaptationConfig()
    if seed is not None and seed != config.seed:
        import dataclasses

        config = dataclasses.replace(config, seed=seed)

    if isinstance(library, (str, pathlib.Path)):
        library = DesignLibrary.load(library)
    elif library is None:
        result = MultiModeSynthesizer(problem, config.synthesis).run()
        library = DesignLibrary(
            [DesignRecord.from_result("design-time", result)]
        )

    if trace is None:
        from repro.simulation.markov import ModeProcess
        from repro.simulation.trace import generate_trace

        process = ModeProcess(problem.omsm)
        mean_dwell = sum(process.mean_dwell.values()) / len(
            process.mean_dwell
        )
        trace = generate_trace(
            process,
            horizon=steps * mean_dwell,
            rng=random.Random(config.seed),
        )

    event_log: Optional[EventLog] = None
    if run_dir is not None:
        run_path = pathlib.Path(run_dir)
        run_path.mkdir(parents=True, exist_ok=True)
        event_log = EventLog(run_path / EVENTS_FILENAME)
    try:
        controller = AdaptationController(
            problem, library, config, event_log=event_log
        )
        report = controller.run(trace)
    finally:
        if event_log is not None:
            event_log.close()
    if run_dir is not None:
        library.save(pathlib.Path(run_dir) / LIBRARY_FILENAME)
    return report
