"""The paper's motivational examples (Fig. 2 and Fig. 3), exactly.

Example 1 (Fig. 2) shows why mode execution probabilities matter: two
mappings of the same two-mode system whose Ψ-weighted energies are
26.7158 mW·s (probabilities neglected) and 15.7423 mW·s (probabilities
considered) — a 41 % reduction.  Example 2 (Fig. 3) shows why *multiple
implementations* of one task type pay off: sacrificing hardware sharing
lets an entire component be shut down during one mode.

These builders reproduce the paper's tables verbatim (execution times,
dynamic energies and core areas of task types A–F on the software
processor PE0 and the ASIC PE1 with 600 cells) so the library's energy
model can be checked against published numbers to the printed digit.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.architecture.communication_link import CommunicationLink
from repro.architecture.platform import Architecture
from repro.architecture.processing_element import PEKind, ProcessingElement
from repro.architecture.technology import TaskImplementation, TechnologyLibrary
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.specification.mode import Mode
from repro.specification.omsm import OMSM, ModeTransition
from repro.specification.task_graph import CommEdge, Task, TaskGraph

#: The Fig. 2 implementation table:
#: type -> (sw ms, sw mW·s, hw ms, hw mW·s, hw cells).
FIG2_TABLE: Dict[str, Tuple[float, float, float, float, float]] = {
    "A": (20.0, 10.0, 2.0, 0.010, 240.0),
    "B": (28.0, 14.0, 2.2, 0.012, 300.0),
    "C": (32.0, 16.0, 1.6, 0.023, 275.0),
    "D": (26.0, 13.0, 3.1, 0.047, 245.0),
    "E": (30.0, 15.0, 1.8, 0.015, 210.0),
    "F": (24.0, 14.0, 2.2, 0.032, 280.0),
}

#: Published energies of the two Fig. 2 mappings (joules = W·s).
FIG2_ENERGY_WITHOUT = 26.7158e-3
FIG2_ENERGY_WITH = 15.7423e-3

#: Area of the hardware component PE1 in cells.
FIG2_PE1_AREA = 600.0


def _example_architecture(static_pe1: float = 0.0) -> Architecture:
    """PE0 (GPP) + PE1 (ASIC, 600 cells) + bus CL0, as in Fig. 2/3."""
    pe0 = ProcessingElement(
        name="PE0", kind=PEKind.GPP, static_power=0.0
    )
    pe1 = ProcessingElement(
        name="PE1",
        kind=PEKind.ASIC,
        area=FIG2_PE1_AREA,
        static_power=static_pe1,
    )
    bus = CommunicationLink(
        name="CL0",
        connects=["PE0", "PE1"],
        bandwidth_bps=1e9,  # the example neglects communication issues
        comm_power=0.0,
        static_power=0.0,
    )
    return Architecture("fig2_arch", [pe0, pe1], [bus])


def _example_technology() -> TechnologyLibrary:
    entries = []
    for task_type, (sw_ms, sw_mws, hw_ms, hw_mws, cells) in sorted(
        FIG2_TABLE.items()
    ):
        sw_time = sw_ms * 1e-3
        hw_time = hw_ms * 1e-3
        entries.append(
            TaskImplementation(
                task_type=task_type,
                pe="PE0",
                exec_time=sw_time,
                power=(sw_mws * 1e-3) / sw_time,
            )
        )
        entries.append(
            TaskImplementation(
                task_type=task_type,
                pe="PE1",
                exec_time=hw_time,
                power=(hw_mws * 1e-3) / hw_time,
                area=cells,
            )
        )
    return TechnologyLibrary(entries)


def fig2_problem(period: float = 1.0, static_pe1: float = 0.0) -> Problem:
    """Example 1: modes O1 (τ1 A, τ2 B, τ3 C) and O2 (τ4 D, τ5 E, τ6 F).

    Ψ1 = 0.1, Ψ2 = 0.9.  The example neglects timing and communication,
    so the default period is generous and edges are chains with zero
    payload.
    """
    graph1 = TaskGraph(
        "O1_graph",
        [Task("t1", "A"), Task("t2", "B"), Task("t3", "C")],
        [CommEdge("t1", "t2", 0.0), CommEdge("t2", "t3", 0.0)],
    )
    graph2 = TaskGraph(
        "O2_graph",
        [Task("t4", "D"), Task("t5", "E"), Task("t6", "F")],
        [CommEdge("t4", "t5", 0.0), CommEdge("t5", "t6", 0.0)],
    )
    omsm = OMSM(
        "fig2",
        [
            Mode("O1", graph1, probability=0.1, period=period),
            Mode("O2", graph2, probability=0.9, period=period),
        ],
        [
            ModeTransition("O1", "O2"),
            ModeTransition("O2", "O1"),
        ],
    )
    return Problem(
        omsm, _example_architecture(static_pe1), _example_technology()
    )


def fig2_mapping_without_probabilities(problem: Problem) -> MappingString:
    """Fig. 2b: the energy-optimal mapping when Ψ is ignored.

    The two highest-energy tasks overall (τ3: 16 mW·s, τ5: 15 mW·s) get
    the hardware; everything else stays in software.
    """
    return MappingString.from_mapping(
        problem,
        {
            "O1": {"t1": "PE0", "t2": "PE0", "t3": "PE1"},
            "O2": {"t4": "PE0", "t5": "PE1", "t6": "PE0"},
        },
    )


def fig2_mapping_with_probabilities(problem: Problem) -> MappingString:
    """Fig. 2c: the optimal mapping once Ψ1=0.1 / Ψ2=0.9 is considered.

    Hardware goes to the frequent mode's tasks τ5 and τ6; mode O1 runs
    entirely in software, additionally enabling PE1/CL0 shut-down.
    """
    return MappingString.from_mapping(
        problem,
        {
            "O1": {"t1": "PE0", "t2": "PE0", "t3": "PE0"},
            "O2": {"t4": "PE0", "t5": "PE1", "t6": "PE1"},
        },
    )


def weighted_task_energy(
    problem: Problem, mapping: MappingString
) -> float:
    """The paper's Example-1 figure of merit: ``Σ_O Ψ_O Σ_τ E(τ)``.

    Pure Ψ-weighted dynamic energy of one iteration per mode, with
    timing, communication and static power neglected — exactly how the
    running text of Section 2.3 computes 26.7158 mW·s and 15.7423 mW·s.
    """
    total = 0.0
    for mode in problem.omsm.modes:
        mode_energy = 0.0
        for task in mode.task_graph:
            pe = mapping.pe_of(mode.name, task.name)
            entry = problem.technology.implementation(task.task_type, pe)
            mode_energy += entry.energy
        total += mode.probability * mode_energy
    return total


# ----------------------------------------------------------------------
# Example 2 (Fig. 3): multiple task implementations enable shut-down
# ----------------------------------------------------------------------


def fig3_problem(
    period: float = 1.0, static_pe1: float = 12e-3
) -> Problem:
    """Example 2: type A occurs in both modes (τ1 in O1, τ4 in O2).

    Mapping both onto the shared hardware core keeps PE1 powered in
    both modes; implementing τ4 in software instead lets PE1 and CL0
    shut down during O2.  Sacrificing the more efficient hardware
    execution of τ4 pays off exactly when the component's static power
    saved over the mode outweighs the extra software energy — the
    default static power is chosen above that break-even point so the
    example demonstrates the paper's effect.
    """
    graph1 = TaskGraph(
        "O1_graph",
        [Task("t1", "A"), Task("t2", "B"), Task("t3", "C")],
        [CommEdge("t1", "t2", 0.0), CommEdge("t2", "t3", 0.0)],
    )
    graph2 = TaskGraph(
        "O2_graph",
        [Task("t4", "A"), Task("t5", "D"), Task("t6", "E")],
        [CommEdge("t4", "t5", 0.0), CommEdge("t5", "t6", 0.0)],
    )
    omsm = OMSM(
        "fig3",
        [
            Mode("O1", graph1, probability=0.5, period=period),
            Mode("O2", graph2, probability=0.5, period=period),
        ],
        [
            ModeTransition("O1", "O2"),
            ModeTransition("O2", "O1"),
        ],
    )
    return Problem(
        omsm, _example_architecture(static_pe1), _example_technology()
    )


def fig3_mapping_shared_core(problem: Problem) -> MappingString:
    """Fig. 3b: τ1 and τ4 share one hardware core; no shut-down."""
    return MappingString.from_mapping(
        problem,
        {
            "O1": {"t1": "PE1", "t2": "PE0", "t3": "PE0"},
            "O2": {"t4": "PE1", "t5": "PE0", "t6": "PE0"},
        },
    )


def fig3_mapping_multiple_implementations(
    problem: Problem,
) -> MappingString:
    """Fig. 3c: τ4 in software; PE1 and CL0 shut down during O2."""
    return MappingString.from_mapping(
        problem,
        {
            "O1": {"t1": "PE1", "t2": "PE0", "t3": "PE0"},
            "O2": {"t4": "PE0", "t5": "PE0", "t6": "PE0"},
        },
    )
