"""The co-synthesis problem: specification + architecture + technology.

:class:`Problem` bundles everything the synthesis needs — the OMSM, the
allocated architecture and the technology library — and validates their
mutual consistency once, so downstream code (scheduler, power model, GA)
can assume a well-formed instance.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import SpecificationError, TechnologyError
from repro.architecture.platform import Architecture
from repro.architecture.technology import TechnologyLibrary
from repro.specification.omsm import OMSM


class Problem:
    """A complete, validated multi-mode co-synthesis instance.

    Parameters
    ----------
    omsm:
        The multi-mode application.
    architecture:
        The allocated target architecture.
    technology:
        Implementation alternatives for every task type of the OMSM.

    Raises
    ------
    TechnologyError
        If some task type lacks an implementation, or library entries are
        inconsistent with the architecture.
    SpecificationError
        If the OMSM is empty (cannot happen for validated OMSMs).
    """

    def __init__(
        self,
        omsm: OMSM,
        architecture: Architecture,
        technology: TechnologyLibrary,
    ) -> None:
        technology.validate_against(architecture, omsm.all_task_types())
        self.omsm = omsm
        self.architecture = architecture
        self.technology = technology
        self._gene_space = self._build_gene_space()

    def _build_gene_space(self) -> Dict[str, Tuple[Tuple[str, Tuple[str, ...]], ...]]:
        """Per mode: ordered (task name, candidate PE names) pairs.

        This is the genome layout used by the mapping encoding — one
        gene per (mode, task), whose alleles are the PEs on which the
        task's type has an implementation.
        """
        space: Dict[str, Tuple[Tuple[str, Tuple[str, ...]], ...]] = {}
        for mode in self.omsm.modes:
            entries = []
            for task in mode.task_graph:
                candidates = self.technology.candidate_pes(task.task_type)
                if not candidates:
                    raise TechnologyError(
                        f"task {task.name!r} (type {task.task_type!r}) has "
                        f"no candidate PE"
                    )
                entries.append((task.name, candidates))
            space[mode.name] = tuple(entries)
        return space

    @property
    def name(self) -> str:
        return self.omsm.name

    def with_probabilities(
        self, probabilities: Dict[str, float]
    ) -> "Problem":
        """The same instance re-targeted at a different Ψ vector.

        Architecture and technology are shared; the OMSM is rebuilt via
        :meth:`~repro.specification.omsm.OMSM.with_probabilities`.  The
        gene layout is unchanged, so mapping strings (and stored design
        genes) transfer between the two instances verbatim.

        Lazily-memoised decode state transfers too: the decode context,
        genome layout, mode gene bounds and the per-mode result cache
        are all Ψ-independent (probabilities only enter the final
        Equation (1) weighting), so a re-targeted problem inherits them
        instead of rebuilding — which is what makes the adaptive
        controller's warm-started re-synthesis warm in practice.
        """
        retargeted = Problem(
            self.omsm.with_probabilities(probabilities),
            self.architecture,
            self.technology,
        )
        for attr in (
            "_decode_context",
            "_genome_layout",
            "_mode_bounds",
            "_mode_result_cache",
        ):
            memoised = getattr(self, attr, None)
            if memoised is not None:
                setattr(retargeted, attr, memoised)
        return retargeted

    def gene_space(
        self, mode_name: str
    ) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        """Ordered ``(task, candidate PEs)`` pairs for one mode."""
        try:
            return self._gene_space[mode_name]
        except KeyError:
            raise SpecificationError(
                f"problem {self.name!r}: unknown mode {mode_name!r}"
            ) from None

    def genome_length(self) -> int:
        """Total number of genes (sum of task counts over all modes)."""
        return sum(len(genes) for genes in self._gene_space.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Problem({self.name!r}, modes={len(self.omsm)}, "
            f"pes={len(self.architecture.pes)}, "
            f"genes={self.genome_length()})"
        )
