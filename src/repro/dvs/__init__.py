"""Dynamic voltage scaling for software processors and hardware cores.

The voltage model follows the paper: lowering the supply voltage of a
DVS-enabled component reduces the dynamic energy of a task execution
quadratically (``E = P_max · t_min · (V_dd / V_max)²``) while extending
its execution time according to the alpha-power delay law.  Voltage
selection (:func:`~repro.dvs.pv_dvs.scale_schedule`) distributes the
schedule slack over the scalable activities by greedy energy-gradient
descent with discrete voltage levels — the PV-DVS technique of paper
ref. [10], extended to hardware components via the parallel-to-sequential
transformation of Fig. 5 (:func:`~repro.dvs.transform.transform_parallel_tasks`).
"""

from repro.dvs.voltage import (
    scaled_duration,
    scaled_energy,
    speed_factor,
)
from repro.dvs.transform import VirtualSegment, transform_parallel_tasks
from repro.dvs.pv_dvs import scale_schedule, uniform_scale_schedule

__all__ = [
    "VirtualSegment",
    "scale_schedule",
    "scaled_duration",
    "scaled_energy",
    "speed_factor",
    "transform_parallel_tasks",
    "uniform_scale_schedule",
]
