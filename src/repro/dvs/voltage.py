"""Supply-voltage dependence of delay and energy.

Delay follows the alpha-power law with ``α = 2``: the achievable clock
frequency is proportional to ``(V_dd − V_t)² / V_dd``, so execution time
scales inversely.  Dynamic energy per task follows the paper's
Section 3 formula ``E = P_max · t_min · V_dd² / V_max²`` — it depends
only on the voltage (switched capacitance times V²), not on how long
the stretched execution takes.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import VoltageScalingError


def speed_factor(vdd: float, vt: float) -> float:
    """Relative processing speed at supply ``vdd`` (alpha-power, α=2).

    Unnormalised: callers compare speeds at two voltages of the same
    component, so the constant factors cancel.
    """
    if vdd <= vt:
        raise VoltageScalingError(
            f"supply voltage {vdd} must exceed threshold {vt}"
        )
    return (vdd - vt) ** 2 / vdd


def scaled_duration(
    nominal_duration: float, vdd: float, vmax: float, vt: float
) -> float:
    """Execution time at supply ``vdd``, given time at ``vmax``.

    Monotonically decreasing in ``vdd``; equals ``nominal_duration`` at
    ``vdd == vmax``.
    """
    if nominal_duration < 0:
        raise VoltageScalingError(
            f"nominal duration must be non-negative, got {nominal_duration}"
        )
    if vdd > vmax:
        raise VoltageScalingError(
            f"supply voltage {vdd} exceeds nominal {vmax}"
        )
    return nominal_duration * speed_factor(vmax, vt) / speed_factor(vdd, vt)


def scaled_energy(nominal_energy: float, vdd: float, vmax: float) -> float:
    """Dynamic energy at supply ``vdd``, given energy at ``vmax``.

    The paper's DVS energy term: ``E · (V_dd / V_max)²``.
    """
    if nominal_energy < 0:
        raise VoltageScalingError(
            f"nominal energy must be non-negative, got {nominal_energy}"
        )
    if vdd > vmax:
        raise VoltageScalingError(
            f"supply voltage {vdd} exceeds nominal {vmax}"
        )
    return nominal_energy * (vdd / vmax) ** 2


def duration_energy_tables(
    nominal_duration: float,
    nominal_energy: float,
    levels: Sequence[float],
    vt: float,
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Per-level (ascending voltage) duration and energy tables.

    ``levels`` must be the component's sorted discrete supply voltages;
    the last entry is the nominal ``V_max``.
    """
    if not levels:
        raise VoltageScalingError("need at least one voltage level")
    vmax = levels[-1]
    durations = tuple(
        scaled_duration(nominal_duration, v, vmax, vt) for v in levels
    )
    energies = tuple(
        scaled_energy(nominal_energy, v, vmax) for v in levels
    )
    return durations, energies


def minimum_feasible_level(
    nominal_duration: float,
    budget: float,
    levels: Sequence[float],
    vt: float,
) -> int:
    """Index of the lowest voltage level finishing within ``budget``.

    Used by the naive uniform-slack baseline.  Raises when even the
    nominal voltage misses the budget.
    """
    vmax = levels[-1]
    for index, level in enumerate(levels):
        if scaled_duration(nominal_duration, level, vmax, vt) <= budget:
            return index
    raise VoltageScalingError(
        f"duration {nominal_duration} cannot meet budget {budget} even at "
        f"nominal voltage"
    )
