"""Energy-gradient voltage selection over a scheduled mode (PV-DVS).

Given the nominal-voltage schedule of one mode, this module chooses
discrete supply voltages for every scalable activity so that the total
dynamic energy is minimised without violating deadlines.  It follows
the PV-DVS approach of paper ref. [10] — iteratively hand the available
slack to the activity with the steepest energy reduction per unit of
time — extended to hardware components as described in paper
Section 4.2: all cores of a DVS-enabled hardware component share one
supply rail, so the component's parallel activity is first transformed
into the equivalent sequential segment chain of Fig. 5 and voltages are
selected per *segment*.

The algorithm operates on the *order-augmented DAG*: task-graph
precedence (through the scheduled communications) plus the execution
order the list scheduler fixed on every serial resource.  Extending an
activity by no more than its slack — latest finish minus earliest
finish under the current durations — is always safe, and durations are
recomputed after every accepted move.

After voltage selection the scaled durations are mapped back to the
real tasks (a hardware task accumulates the stretched portions of every
segment it spans, possibly at different voltages) and the mode is
*replayed*: a forward pass over the order-augmented task-level DAG
rebuilds a consistent non-preemptive schedule with the new durations.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.errors import VoltageScalingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.architecture.processing_element import ProcessingElement
    from repro.engine.decode_cache import DecodeContext
from repro.dvs.transform import VirtualSegment, transform_parallel_tasks
from repro.dvs.voltage import duration_energy_tables, scaled_duration, scaled_energy
from repro.problem import Problem
from repro.scheduling.schedule import (
    TIME_EPS,
    ModeSchedule,
    ScheduledComm,
    ScheduledTask,
)
from repro.specification.mode import Mode

# Single definition of the slack guard lives with the array kernels;
# both descent implementations must compare against the same epsilon.
from repro.dvs._kernels import _SLACK_EPS, vector_scale_schedule


class _Node:
    """One node of the DVS graph (task, communication or segment)."""

    __slots__ = (
        "key",
        "durations",
        "energies",
        "level",
        "deadline",
        "scalable",
        "levels",
    )

    def __init__(
        self,
        key: str,
        durations: Tuple[float, ...],
        energies: Tuple[float, ...],
        level: int,
        deadline: float,
        scalable: bool,
        levels: Tuple[float, ...] = (),
    ) -> None:
        self.key = key
        self.durations = durations
        self.energies = energies
        self.level = level
        self.deadline = deadline
        self.scalable = scalable
        self.levels = levels

    @property
    def duration(self) -> float:
        return self.durations[self.level]

    @property
    def energy(self) -> float:
        return self.energies[self.level]

    def lowering(self) -> Optional[Tuple[float, float]]:
        """(extra time, saved energy) of dropping one level, if any."""
        if not self.scalable or self.level == 0:
            return None
        extra = self.durations[self.level - 1] - self.durations[self.level]
        saved = self.energies[self.level] - self.energies[self.level - 1]
        return extra, saved


class _DvsGraph:
    """The order-augmented DAG with per-node voltage levels.

    Nodes and adjacency are integer-indexed lists (creation order); the
    gradient descent keeps earliest starts and latest finishes current
    across accepted moves via :meth:`stretch_node`, so the timing
    passes must be tight loops over plain floats rather than dict
    lookups.  All longest-path values are ``max``/``min`` accumulations,
    which are exact and order-independent on floats, so results do not
    depend on adjacency or topological-order details.
    """

    __slots__ = (
        "nodes",
        "index",
        "preds",
        "succs",
        "topo",
        "topo_rank",
        "pending",
        "durations",
        "deadlines",
        "scalable_indices",
        "task_nodes",
        "comm_nodes",
    )

    def __init__(self) -> None:
        self.nodes: List[_Node] = []
        self.index: Dict[str, int] = {}
        self.preds: List[List[int]] = []
        self.succs: List[List[int]] = []
        # Activity-level indices, filled by _build_dvs_graph: task name
        # -> node position (absent for tasks folded into segments) and
        # (src, dst) -> communication node position.
        self.task_nodes: Dict[str, int] = {}
        self.comm_nodes: Dict[Tuple[str, str], int] = {}

    def add_node(self, node: _Node) -> int:
        if node.key in self.index:
            raise VoltageScalingError(f"duplicate DVS node {node.key!r}")
        position = len(self.nodes)
        self.index[node.key] = position
        self.nodes.append(node)
        self.preds.append([])
        self.succs.append([])
        return position

    def add_edge(self, src: int, dst: int) -> None:
        if src == dst:
            return
        succs = self.succs[src]
        if dst not in succs:
            succs.append(dst)
            self.preds[dst].append(src)

    def node(self, key: str) -> _Node:
        return self.nodes[self.index[key]]

    def freeze(self) -> None:
        """Snapshot durations/topology once construction is finished."""
        nodes = self.nodes
        self.durations = [node.duration for node in nodes]
        self.deadlines = [node.deadline for node in nodes]
        self.scalable_indices = [
            position
            for position, node in enumerate(nodes)
            if node.scalable
        ]
        in_degree = [len(entry) for entry in self.preds]
        ready = [
            position
            for position, degree in enumerate(in_degree)
            if degree == 0
        ]
        order: List[int] = []
        while ready:
            current = ready.pop()
            order.append(current)
            for nxt in self.succs[current]:
                in_degree[nxt] -= 1
                if in_degree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(nodes):
            raise VoltageScalingError("DVS graph contains a cycle")
        self.topo = order
        rank = [0] * len(nodes)
        for ordinal, position in enumerate(order):
            rank[position] = ordinal
        self.topo_rank = rank
        # Scratch flags for stretch_node's cone walks; always all-zero
        # between calls.
        self.pending = bytearray(len(nodes))

    def refresh_durations(self) -> None:
        durations = self.durations
        for position, node in enumerate(self.nodes):
            durations[position] = node.duration

    def earliest_starts(self) -> List[float]:
        return self.forward_timing()[0]

    def forward_timing(self) -> Tuple[List[float], List[float]]:
        # `finish[i] = est[i] + durations[i]` is computed once per node
        # rather than once per out-edge; the operands (and hence the
        # result) are identical either way.
        size = len(self.nodes)
        est = [0.0] * size
        finish = [0.0] * size
        durations = self.durations
        preds = self.preds
        for position in self.topo:
            arrival = 0.0
            for prev in preds[position]:
                candidate = finish[prev]
                if candidate > arrival:
                    arrival = candidate
            est[position] = arrival
            finish[position] = arrival + durations[position]
        return est, finish

    def latest_finishes(self) -> List[float]:
        return self.backward_timing()[0]

    def backward_timing(self) -> Tuple[List[float], List[float]]:
        # Mirror image of forward_timing: `lft[i] - durations[i]` is
        # materialised once per node as `latest_start[i]`.
        size = len(self.nodes)
        lft = [0.0] * size
        latest_start = [0.0] * size
        durations = self.durations
        succs = self.succs
        deadlines = self.deadlines
        for position in reversed(self.topo):
            bound = deadlines[position]
            for nxt in succs[position]:
                candidate = latest_start[nxt]
                if candidate < bound:
                    bound = candidate
            lft[position] = bound
            latest_start[position] = bound - durations[position]
        return lft, latest_start

    def stretch_node(
        self,
        position: int,
        est: List[float],
        finish: List[float],
        lft: List[float],
        latest_start: List[float],
    ) -> None:
        """Propagate one node's duration change through cached timings.

        Timing arrays depend only on durations, so a single stretched
        node perturbs earliest starts downstream of it and latest
        finishes upstream of it — two independent cones.  Each visited
        node is refreshed with exactly the formula the full passes use
        (max over the same predecessors' finishes, min over the same
        successors' latest starts), and flagged nodes are visited in
        topological-rank order so every operand is final before it is
        read; the arrays therefore stay bit-identical to a full
        recompute while only the affected cone is recomputed.  The
        walk scans ``topo`` from the stretched node outward with a
        reusable flag array — cheaper than a heap worklist because
        cones are small and skipping an unflagged rank is a single
        byte test.
        """
        durations = self.durations
        topo = self.topo
        rank = self.topo_rank
        preds = self.preds
        succs = self.succs
        pending = self.pending

        new_finish = est[position] + durations[position]
        if new_finish != finish[position]:
            finish[position] = new_finish
            remaining = 0
            for nxt in succs[position]:
                if not pending[nxt]:
                    pending[nxt] = 1
                    remaining += 1
            for ordinal in range(rank[position] + 1, len(topo)):
                if not remaining:
                    break
                current = topo[ordinal]
                if not pending[current]:
                    continue
                pending[current] = 0
                remaining -= 1
                arrival = 0.0
                for prev in preds[current]:
                    candidate = finish[prev]
                    if candidate > arrival:
                        arrival = candidate
                est[current] = arrival
                updated = arrival + durations[current]
                # An unchanged finish stops the wave: downstream nodes
                # only ever read `finish`, never `est` directly.
                if updated != finish[current]:
                    finish[current] = updated
                    for nxt in succs[current]:
                        if not pending[nxt]:
                            pending[nxt] = 1
                            remaining += 1

        deadlines = self.deadlines
        new_latest_start = lft[position] - durations[position]
        if new_latest_start != latest_start[position]:
            latest_start[position] = new_latest_start
            remaining = 0
            for prev in preds[position]:
                if not pending[prev]:
                    pending[prev] = 1
                    remaining += 1
            for ordinal in range(rank[position] - 1, -1, -1):
                if not remaining:
                    break
                current = topo[ordinal]
                if not pending[current]:
                    continue
                pending[current] = 0
                remaining -= 1
                bound = deadlines[current]
                for nxt in succs[current]:
                    candidate = latest_start[nxt]
                    if candidate < bound:
                        bound = candidate
                lft[current] = bound
                updated = bound - durations[current]
                if updated != latest_start[current]:
                    latest_start[current] = updated
                    for prev in preds[current]:
                        if not pending[prev]:
                            pending[prev] = 1
                            remaining += 1

    def is_feasible(self) -> bool:
        est = self.earliest_starts()
        durations = self.durations
        deadlines = self.deadlines
        for position in range(len(self.nodes)):
            if est[position] + durations[position] > (
                deadlines[position] + TIME_EPS
            ):
                return False
        return True


def scale_schedule(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    shared_rail: bool = True,
    context: Optional["DecodeContext"] = None,
    vector: bool = True,
    warm_start: bool = False,
) -> ModeSchedule:
    """Voltage-scale one mode's schedule by greedy energy-gradient descent.

    Returns a new :class:`ModeSchedule` with stretched activities,
    reduced task energies and per-task ``pieces`` recording the
    (duration, voltage) profile.  If the input schedule already violates
    deadlines, or no component is DVS-enabled, the schedule is returned
    with unchanged timing (energies and times identical).

    ``shared_rail`` models the paper's assumption that all cores of one
    hardware component are fed by a single supply (Section 4.2).
    Setting it to ``False`` gives every core its own rail — each
    hardware task scales individually, without the Fig. 5
    transformation.  That idealisation bounds what the extra DC/DC
    converters the paper rules out (area/power overhead) could buy,
    and is exposed for the ablation benchmarks.

    ``context`` (see :mod:`repro.engine.decode_cache`) memoises the
    per-(PE, duration, energy) voltage tables across candidates.

    ``vector`` selects the struct-of-arrays kernels of
    :mod:`repro.dvs._kernels` (the default fast path, bit-identical to
    the legacy object-graph loop kept as the ablation oracle behind
    ``vector=False``).  ``warm_start`` — vector path only — seeds the
    descent from the closed-form continuous-relaxation snap; it changes
    the descent trajectory, so it is off by default.
    """
    if vector:
        return vector_scale_schedule(
            problem,
            mode,
            schedule,
            shared_rail=shared_rail,
            context=context,
            warm_start=warm_start,
        )
    if warm_start:
        raise VoltageScalingError(
            "the analytical warm start requires the vector kernels "
            "(vector=True)"
        )
    return _legacy_scale_schedule(
        problem, mode, schedule, shared_rail, context
    )


def _legacy_scale_schedule(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    shared_rail: bool = True,
    context: Optional["DecodeContext"] = None,
) -> ModeSchedule:
    """The original object-graph descent (``vector=False`` oracle).

    Kept verbatim as the ablation baseline the array kernels are
    fuzz-checked against; every accepted move, tie-break and emitted
    float must stay exactly as the kernels' reference.
    """
    graph, segments_by_pe = _build_dvs_graph(
        problem, mode, schedule, shared_rail, context
    )

    # Greedy gradient descent: always hand the slack to the move with
    # the best energy saving per unit of added time.  Each node's
    # candidate move (one level down from its *current* level) only
    # changes when that node's level changes, so the per-move extra
    # time and metric are cached and refreshed on accept.
    nodes = graph.nodes
    durations = graph.durations
    scalable_indices = graph.scalable_indices
    # Candidate moves as position-indexed lists (None = no move): the
    # selection scan below runs once per accepted move, so lookups must
    # be plain list indexing.
    move_extra: List[Optional[float]] = [None] * len(nodes)
    move_metric: List[Tuple[float, float]] = [(0.0, 0.0)] * len(nodes)

    def refresh_move(position: int) -> None:
        node = nodes[position]
        level = node.level
        if level == 0:
            move_extra[position] = None
            return
        node_durations = node.durations
        extra = node_durations[level - 1] - node_durations[level]
        saved = node.energies[level] - node.energies[level - 1]
        if saved <= 0:
            move_extra[position] = None
            return
        move_extra[position] = extra
        move_metric[position] = (saved / extra, saved)

    for position in scalable_indices:
        refresh_move(position)

    # Timing arrays are computed once and then kept current by
    # stretch_node after each accepted move, so the per-move cost is
    # proportional to the affected cone instead of the whole DAG.
    est, finish = graph.forward_timing()
    lft, latest_start = graph.backward_timing()
    while True:
        best_index = -1
        best_metric: Tuple[float, float] = (-1.0, -1.0)
        for position in scalable_indices:
            extra = move_extra[position]
            if extra is None:
                continue
            slack = lft[position] - est[position] - durations[position]
            if extra > slack + _SLACK_EPS + TIME_EPS:
                continue
            metric = move_metric[position]
            if metric > best_metric:
                best_metric = metric
                best_index = position
        if best_index < 0:
            break
        chosen = nodes[best_index]
        chosen.level -= 1
        durations[best_index] = chosen.durations[chosen.level]
        refresh_move(best_index)
        graph.stretch_node(best_index, est, finish, lft, latest_start)

    if not segments_by_pe:
        # Without Fig. 5 segment chains the replay DAG is structurally
        # identical to this DVS graph, so the earliest starts of the
        # final descent state *are* the replayed start times (max over
        # floats is exact, hence order-independent) — skip the replay.
        return _emit_schedule(mode, schedule, graph, est)
    return _rebuild_schedule(problem, mode, schedule, graph, segments_by_pe)


def uniform_scale_schedule(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    context: Optional["DecodeContext"] = None,
) -> ModeSchedule:
    """Naive DVS baseline: one global stretch factor for all activities.

    Every scalable activity is slowed to the lowest discrete level whose
    duration stays within ``nominal × κ``; the largest feasible κ is
    found by bisection on the DVS graph.  Serves as the ablation
    comparator for the gradient-based :func:`scale_schedule`.
    """
    graph, segments_by_pe = _build_dvs_graph(
        problem, mode, schedule, context=context
    )

    def apply_factor(kappa: float) -> None:
        for node in graph.nodes:
            if not node.scalable:
                continue
            budget = node.durations[-1] * kappa
            level = len(node.durations) - 1
            for index, duration in enumerate(node.durations):
                if duration <= budget + TIME_EPS:
                    level = index
                    break
            node.level = level
        graph.refresh_durations()

    def feasible() -> bool:
        return graph.is_feasible()

    apply_factor(1.0)
    if feasible():
        low, high = 1.0, 64.0
        for _ in range(40):
            mid = (low + high) / 2
            apply_factor(mid)
            if feasible():
                low = mid
            else:
                high = mid
        apply_factor(low)
    else:
        apply_factor(1.0)
    if not segments_by_pe:
        return _emit_schedule(mode, schedule, graph, graph.earliest_starts())
    return _rebuild_schedule(problem, mode, schedule, graph, segments_by_pe)


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------


def _task_node_key(name: str) -> str:
    return f"task:{name}"


def _comm_node_key(src: str, dst: str) -> str:
    return f"comm:{src}->{dst}"


def _segment_node_key(pe: str, index: int) -> str:
    return f"seg:{pe}:{index}"


def _build_dvs_graph(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    shared_rail: bool = True,
    context: Optional["DecodeContext"] = None,
) -> Tuple[_DvsGraph, Dict[str, Tuple[VirtualSegment, ...]]]:
    architecture = problem.architecture
    graph = _DvsGraph()
    mode_data = context.modes[mode.name] if context is not None else None

    def effective_deadline(task_name: str) -> float:
        if mode_data is not None:
            return mode_data.deadlines[task_name]
        return mode.effective_deadline(task_name)

    def voltage_tables(
        pe: "ProcessingElement", duration: float, energy: float
    ) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        if context is not None:
            return context.duration_energy_tables(pe.name, duration, energy)
        return duration_energy_tables(
            duration, energy, pe.voltage_levels, pe.threshold_voltage
        )

    # With a shared rail per component, DVS-capable hardware is handled
    # through the Fig. 5 segment chain.  With per-core rails, hardware
    # tasks become individually scalable nodes like software tasks.
    if shared_rail:
        hw_dvs_pes = (
            context.hw_dvs_pes
            if context is not None
            else {
                pe.name
                for pe in architecture.hardware_pes()
                if pe.dvs_enabled
            }
        )
    else:
        hw_dvs_pes = set()
    pe_objects = (
        context.pes
        if context is not None
        else {pe.name: pe for pe in architecture.pes}
    )
    segments_by_pe: Dict[str, Tuple[VirtualSegment, ...]] = {}
    # Activity indices are tracked during construction so edges are
    # added by integer without re-hashing formatted key strings.
    task_nodes = graph.task_nodes
    comm_nodes = graph.comm_nodes
    task_last_segment: Dict[str, int] = {}
    task_first_segment: Dict[str, int] = {}

    # --- nodes: tasks off DVS hardware, and segment chains on it -------
    for task in schedule.tasks:
        pe = pe_objects[task.pe]
        if task.pe in hw_dvs_pes:
            continue
        if pe.dvs_enabled:
            durations, energies = voltage_tables(
                pe, task.duration, task.energy
            )
            node = _Node(
                key=_task_node_key(task.name),
                durations=durations,
                energies=energies,
                level=len(durations) - 1,
                deadline=effective_deadline(task.name),
                scalable=True,
                levels=pe.voltage_levels,
            )
        else:
            node = _Node(
                key=_task_node_key(task.name),
                durations=(task.duration,),
                energies=(task.energy,),
                level=0,
                deadline=effective_deadline(task.name),
                scalable=False,
            )
        task_nodes[task.name] = graph.add_node(node)

    for pe_name in sorted(hw_dvs_pes):
        placed = schedule.tasks_on(pe_name)
        if not placed:
            continue
        pe = pe_objects[pe_name]
        segments = transform_parallel_tasks(placed)
        segments_by_pe[pe_name] = segments
        segment_positions: Dict[int, int] = {}
        for segment in segments:
            durations, energies = voltage_tables(
                pe, segment.duration, segment.energy
            )
            deadline = math.inf
            for task in placed:
                if task.name in segment.active and (
                    abs(task.end - segment.end) <= TIME_EPS
                ):
                    deadline = min(
                        deadline, effective_deadline(task.name)
                    )
            segment_positions[segment.index] = graph.add_node(
                _Node(
                    key=_segment_node_key(pe_name, segment.index),
                    durations=durations,
                    energies=energies,
                    level=len(durations) - 1,
                    deadline=deadline,
                    scalable=True,
                    levels=pe.voltage_levels,
                )
            )
        # The chain: the component executes its segments in order.
        for left, right in zip(segments, segments[1:]):
            graph.add_edge(
                segment_positions[left.index],
                segment_positions[right.index],
            )
        for task in placed:
            own = [s for s in segments if task.name in s.active]
            task_first_segment[task.name] = segment_positions[own[0].index]
            task_last_segment[task.name] = segment_positions[own[-1].index]

    def end_anchor(task_name: str) -> int:
        position = task_last_segment.get(task_name)
        return task_nodes[task_name] if position is None else position

    def start_anchor(task_name: str) -> int:
        position = task_first_segment.get(task_name)
        return task_nodes[task_name] if position is None else position

    # --- nodes and edges: communications -------------------------------
    for comm in schedule.comms:
        position = graph.add_node(
            _Node(
                key=_comm_node_key(comm.src, comm.dst),
                durations=(comm.duration,),
                energies=(comm.energy,),
                level=0,
                deadline=math.inf,
                scalable=False,
            )
        )
        comm_nodes[(comm.src, comm.dst)] = position
        graph.add_edge(end_anchor(comm.src), position)
        graph.add_edge(position, start_anchor(comm.dst))

    # --- edges: execution order on serial resources --------------------
    for pe in architecture.pes:
        if pe.name in hw_dvs_pes:
            continue
        placed = schedule.tasks_on(pe.name)
        if pe.is_software:
            for left, right in zip(placed, placed[1:]):
                graph.add_edge(
                    task_nodes[left.name], task_nodes[right.name]
                )
        else:
            by_core: Dict[Tuple[str, Optional[int]], List[ScheduledTask]]
            by_core = {}
            for task in placed:
                by_core.setdefault(
                    (task.task_type, task.core_index), []
                ).append(task)
            for group in by_core.values():
                group.sort(key=lambda t: t.start)
                for left, right in zip(group, group[1:]):
                    graph.add_edge(
                        task_nodes[left.name], task_nodes[right.name]
                    )
    for link in architecture.links:
        carried = schedule.comms_on(link.name)
        for left, right in zip(carried, carried[1:]):
            graph.add_edge(
                comm_nodes[(left.src, left.dst)],
                comm_nodes[(right.src, right.dst)],
            )

    graph.freeze()
    return graph, segments_by_pe


# ----------------------------------------------------------------------
# Back-mapping and replay
# ----------------------------------------------------------------------


def _emit_schedule(
    mode: Mode,
    schedule: ModeSchedule,
    graph: _DvsGraph,
    est: List[float],
) -> ModeSchedule:
    """Materialise the scaled schedule straight from the DVS graph.

    Only valid when no Fig. 5 segment chains exist: every activity is
    then its own graph node and ``est`` (earliest starts under the final
    durations) equals the start times a full :func:`_replay` over the
    order-augmented DAG would compute.
    """
    task_nodes = graph.task_nodes
    comm_nodes = graph.comm_nodes
    nodes = graph.nodes
    new_tasks: List[ScheduledTask] = []
    for task in schedule.tasks:
        position = task_nodes[task.name]
        node = nodes[position]
        start = est[position]
        if node.scalable:
            duration = node.durations[node.level]
            energy = node.energies[node.level]
            pieces: Tuple[Tuple[float, float], ...] = (
                (duration, node.levels[node.level]),
            )
        else:
            duration = task.duration
            energy = task.energy
            pieces = ()
        new_tasks.append(
            ScheduledTask(
                name=task.name,
                task_type=task.task_type,
                pe=task.pe,
                start=start,
                end=start + duration,
                energy=energy,
                power=task.power,
                core_index=task.core_index,
                pieces=pieces,
            )
        )
    new_comms: List[ScheduledComm] = []
    for comm in schedule.comms:
        position = comm_nodes[(comm.src, comm.dst)]
        start = est[position]
        new_comms.append(
            ScheduledComm(
                src=comm.src,
                dst=comm.dst,
                link=comm.link,
                start=start,
                end=start + comm.duration,
                energy=comm.energy,
            )
        )
    return ModeSchedule(mode.name, new_tasks, new_comms)


def _rebuild_schedule(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    graph: _DvsGraph,
    segments_by_pe: Mapping[str, Tuple[VirtualSegment, ...]],
) -> ModeSchedule:
    """Map segment/task voltages back to tasks and replay the mode."""
    architecture = problem.architecture
    scaled: Dict[str, Tuple[float, float, Tuple[Tuple[float, float], ...]]]
    scaled = {}

    segment_nodes: Dict[Tuple[str, int], _Node] = {}
    for pe_name, segments in segments_by_pe.items():
        for segment in segments:
            segment_nodes[(pe_name, segment.index)] = graph.node(
                _segment_node_key(pe_name, segment.index)
            )

    for task in schedule.tasks:
        pe = architecture.pe(task.pe)
        if task.pe in segments_by_pe:
            vmax = pe.voltage_levels[-1]
            pieces: List[Tuple[float, float]] = []
            duration = 0.0
            energy = 0.0
            for segment in segments_by_pe[task.pe]:
                if task.name not in segment.active:
                    continue
                node = segment_nodes[(task.pe, segment.index)]
                voltage = node.levels[node.level]
                piece = scaled_duration(
                    segment.duration, voltage, vmax, pe.threshold_voltage
                )
                pieces.append((piece, voltage))
                duration += piece
                energy += scaled_energy(
                    task.power * segment.duration, voltage, vmax
                )
            scaled[task.name] = (duration, energy, tuple(pieces))
        else:
            node = graph.node(_task_node_key(task.name))
            if node.scalable:
                voltage = node.levels[node.level]
                scaled[task.name] = (
                    node.duration,
                    node.energy,
                    ((node.duration, voltage),),
                )
            else:
                scaled[task.name] = (task.duration, task.energy, ())

    return _replay(problem, mode, schedule, scaled)


def _replay(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    scaled: Mapping[str, Tuple[float, float, Tuple[Tuple[float, float], ...]]],
) -> ModeSchedule:
    """Forward-simulate the mode with new durations, preserving order.

    The order-augmented task-level DAG (precedence through comms plus
    the original per-resource execution order) is traversed once; every
    activity starts as soon as all its ordering predecessors finish.
    """
    architecture = problem.architecture
    tasks = schedule.tasks
    comms = schedule.comms
    count = len(tasks) + len(comms)
    task_index = {task.name: index for index, task in enumerate(tasks)}
    comm_index: Dict[Tuple[str, str], int] = {}

    succ: List[List[int]] = [[] for _ in range(count)]
    preds: List[List[int]] = [[] for _ in range(count)]
    durations = [0.0] * count

    def add_edge(src: int, dst: int) -> None:
        succ[src].append(dst)
        preds[dst].append(src)

    for index, task in enumerate(tasks):
        durations[index] = scaled[task.name][0]
    for offset, comm in enumerate(comms):
        index = len(tasks) + offset
        comm_index[comm.key] = index
        durations[index] = comm.duration
        add_edge(task_index[comm.src], index)
        add_edge(index, task_index[comm.dst])

    for pe in architecture.pes:
        placed = schedule.tasks_on(pe.name)
        if pe.is_software:
            for left, right in zip(placed, placed[1:]):
                add_edge(task_index[left.name], task_index[right.name])
        else:
            by_core: Dict[Tuple[str, Optional[int]], List[ScheduledTask]]
            by_core = {}
            for task in placed:
                by_core.setdefault(
                    (task.task_type, task.core_index), []
                ).append(task)
            for group in by_core.values():
                group.sort(key=lambda t: t.start)
                for left, right in zip(group, group[1:]):
                    add_edge(
                        task_index[left.name], task_index[right.name]
                    )
    for link in architecture.links:
        carried = schedule.comms_on(link.name)
        for left, right in zip(carried, carried[1:]):
            add_edge(comm_index[left.key], comm_index[right.key])

    # Kahn traversal; start times are max-accumulations over a node's
    # ordering predecessors, so the visit order cannot change a float.
    in_degree = [len(entries) for entries in preds]
    ready = [index for index in range(count) if not in_degree[index]]
    start = [0.0] * count
    finish = [0.0] * count
    visited = 0
    while ready:
        current = ready.pop()
        visited += 1
        arrival = 0.0
        for prev in preds[current]:
            value = finish[prev]
            if value > arrival:
                arrival = value
        start[current] = arrival
        finish[current] = arrival + durations[current]
        for nxt in succ[current]:
            in_degree[nxt] -= 1
            if not in_degree[nxt]:
                ready.append(nxt)
    if visited != count:
        raise VoltageScalingError("replay graph contains a cycle")

    new_tasks: List[ScheduledTask] = []
    for index, task in enumerate(tasks):
        begin = start[index]
        duration, energy, pieces = scaled[task.name]
        new_tasks.append(
            ScheduledTask(
                name=task.name,
                task_type=task.task_type,
                pe=task.pe,
                start=begin,
                end=begin + duration,
                energy=energy,
                power=task.power,
                core_index=task.core_index,
                pieces=pieces,
            )
        )
    new_comms: List[ScheduledComm] = []
    for offset, comm in enumerate(comms):
        begin = start[len(tasks) + offset]
        new_comms.append(
            ScheduledComm(
                src=comm.src,
                dst=comm.dst,
                link=comm.link,
                start=begin,
                end=begin + comm.duration,
                energy=comm.energy,
            )
        )
    return ModeSchedule(mode.name, new_tasks, new_comms)
