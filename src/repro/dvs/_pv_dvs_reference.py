"""Reference (seed) implementation of PV-DVS voltage selection.

This module preserves the original dict-based implementation of
:mod:`repro.dvs.pv_dvs` exactly as shipped in the growth seed.  It has
two jobs:

* **Legacy baseline** — the evaluator routes through these functions
  when ``SynthesisConfig.decode_cache`` is off, so benchmarks can
  measure the engine's decode-cache + array-graph fast paths against
  the original per-candidate recompute cost.
* **Differential oracle** — the engine test-suite checks that the fast
  :func:`repro.dvs.pv_dvs.scale_schedule` is bit-identical to
  :func:`reference_scale_schedule` on randomised schedules.

Do not optimise this module; its value is being the unchanged
reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import VoltageScalingError
from repro.dvs.transform import VirtualSegment, transform_parallel_tasks
from repro.dvs.voltage import duration_energy_tables, scaled_duration, scaled_energy
from repro.problem import Problem
from repro.scheduling.schedule import (
    TIME_EPS,
    ModeSchedule,
    ScheduledComm,
    ScheduledTask,
)
from repro.specification.mode import Mode

#: Relative numerical guard when comparing slack against extensions.
_SLACK_EPS = 1e-12


@dataclass
class _Node:
    """One node of the DVS graph (task, communication or segment)."""

    key: str
    durations: Tuple[float, ...]
    energies: Tuple[float, ...]
    level: int
    deadline: float
    scalable: bool
    levels: Tuple[float, ...] = ()

    @property
    def duration(self) -> float:
        return self.durations[self.level]

    @property
    def energy(self) -> float:
        return self.energies[self.level]

    def lowering(self) -> Optional[Tuple[float, float]]:
        """(extra time, saved energy) of dropping one level, if any."""
        if not self.scalable or self.level == 0:
            return None
        extra = self.durations[self.level - 1] - self.durations[self.level]
        saved = self.energies[self.level] - self.energies[self.level - 1]
        return extra, saved


class _DvsGraph:
    """The order-augmented DAG with per-node voltage levels."""

    def __init__(self) -> None:
        self.nodes: Dict[str, _Node] = {}
        self.succ: Dict[str, List[str]] = {}
        self.pred: Dict[str, List[str]] = {}
        self._order: Optional[List[str]] = None

    def add_node(self, node: _Node) -> None:
        if node.key in self.nodes:
            raise VoltageScalingError(f"duplicate DVS node {node.key!r}")
        self.nodes[node.key] = node
        self.succ[node.key] = []
        self.pred[node.key] = []
        self._order = None

    def add_edge(self, src: str, dst: str) -> None:
        if src == dst:
            return
        if dst not in self.succ[src]:
            self.succ[src].append(dst)
            self.pred[dst].append(src)
        self._order = None

    def topological_order(self) -> List[str]:
        if self._order is None:
            in_degree = {k: len(self.pred[k]) for k in self.nodes}
            ready = [k for k, d in in_degree.items() if d == 0]
            order: List[str] = []
            while ready:
                current = ready.pop()
                order.append(current)
                for nxt in self.succ[current]:
                    in_degree[nxt] -= 1
                    if in_degree[nxt] == 0:
                        ready.append(nxt)
            if len(order) != len(self.nodes):
                raise VoltageScalingError("DVS graph contains a cycle")
            self._order = order
        return self._order

    def earliest_starts(self) -> Dict[str, float]:
        est: Dict[str, float] = {}
        for key in self.topological_order():
            arrival = 0.0
            for prev in self.pred[key]:
                arrival = max(arrival, est[prev] + self.nodes[prev].duration)
            est[key] = arrival
        return est

    def latest_finishes(self) -> Dict[str, float]:
        lft: Dict[str, float] = {}
        for key in reversed(self.topological_order()):
            bound = self.nodes[key].deadline
            for nxt in self.succ[key]:
                bound = min(bound, lft[nxt] - self.nodes[nxt].duration)
            lft[key] = bound
        return lft


def reference_scale_schedule(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    shared_rail: bool = True,
) -> ModeSchedule:
    """Voltage-scale one mode's schedule by greedy energy-gradient descent.

    Returns a new :class:`ModeSchedule` with stretched activities,
    reduced task energies and per-task ``pieces`` recording the
    (duration, voltage) profile.  If the input schedule already violates
    deadlines, or no component is DVS-enabled, the schedule is returned
    with unchanged timing (energies and times identical).

    ``shared_rail`` models the paper's assumption that all cores of one
    hardware component are fed by a single supply (Section 4.2).
    Setting it to ``False`` gives every core its own rail — each
    hardware task scales individually, without the Fig. 5
    transformation.  That idealisation bounds what the extra DC/DC
    converters the paper rules out (area/power overhead) could buy,
    and is exposed for the ablation benchmarks.
    """
    graph, segments_by_pe = _build_dvs_graph(
        problem, mode, schedule, shared_rail
    )

    # Greedy gradient descent: always hand the slack to the move with
    # the best energy saving per unit of added time.
    while True:
        est = graph.earliest_starts()
        lft = graph.latest_finishes()
        best_key: Optional[str] = None
        best_metric: Tuple[float, float] = (-1.0, -1.0)
        for key, node in graph.nodes.items():
            move = node.lowering()
            if move is None:
                continue
            extra, saved = move
            if saved <= 0:
                continue
            slack = lft[key] - est[key] - node.duration
            if extra > slack + _SLACK_EPS + TIME_EPS:
                continue
            metric = (saved / extra, saved)
            if metric > best_metric:
                best_metric = metric
                best_key = key
        if best_key is None:
            break
        graph.nodes[best_key].level -= 1

    return _rebuild_schedule(problem, mode, schedule, graph, segments_by_pe)


def reference_uniform_scale_schedule(
    problem: Problem, mode: Mode, schedule: ModeSchedule
) -> ModeSchedule:
    """Naive DVS baseline: one global stretch factor for all activities.

    Every scalable activity is slowed to the lowest discrete level whose
    duration stays within ``nominal × κ``; the largest feasible κ is
    found by bisection on the DVS graph.  Serves as the ablation
    comparator for the gradient-based :func:`scale_schedule`.
    """
    graph, segments_by_pe = _build_dvs_graph(problem, mode, schedule)

    def apply_factor(kappa: float) -> None:
        for node in graph.nodes.values():
            if not node.scalable:
                continue
            budget = node.durations[-1] * kappa
            level = len(node.durations) - 1
            for index, duration in enumerate(node.durations):
                if duration <= budget + TIME_EPS:
                    level = index
                    break
            node.level = level

    def feasible() -> bool:
        est = graph.earliest_starts()
        for key, node in graph.nodes.items():
            if est[key] + node.duration > node.deadline + TIME_EPS:
                return False
        return True

    apply_factor(1.0)
    if feasible():
        low, high = 1.0, 64.0
        for _ in range(40):
            mid = (low + high) / 2
            apply_factor(mid)
            if feasible():
                low = mid
            else:
                high = mid
        apply_factor(low)
    else:
        apply_factor(1.0)
    return _rebuild_schedule(problem, mode, schedule, graph, segments_by_pe)


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------


def _task_node_key(name: str) -> str:
    return f"task:{name}"


def _comm_node_key(src: str, dst: str) -> str:
    return f"comm:{src}->{dst}"


def _segment_node_key(pe: str, index: int) -> str:
    return f"seg:{pe}:{index}"


def _build_dvs_graph(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    shared_rail: bool = True,
) -> Tuple[_DvsGraph, Dict[str, Tuple[VirtualSegment, ...]]]:
    architecture = problem.architecture
    graph = _DvsGraph()

    # With a shared rail per component, DVS-capable hardware is handled
    # through the Fig. 5 segment chain.  With per-core rails, hardware
    # tasks become individually scalable nodes like software tasks.
    hw_dvs_pes = (
        {
            pe.name
            for pe in architecture.hardware_pes()
            if pe.dvs_enabled
        }
        if shared_rail
        else set()
    )
    segments_by_pe: Dict[str, Tuple[VirtualSegment, ...]] = {}
    task_last_segment: Dict[str, str] = {}
    task_first_segment: Dict[str, str] = {}

    # --- nodes: tasks off DVS hardware, and segment chains on it -------
    for task in schedule.tasks:
        pe = architecture.pe(task.pe)
        if task.pe in hw_dvs_pes:
            continue
        if pe.dvs_enabled:
            durations, energies = duration_energy_tables(
                task.duration,
                task.energy,
                pe.voltage_levels,
                pe.threshold_voltage,
            )
            node = _Node(
                key=_task_node_key(task.name),
                durations=durations,
                energies=energies,
                level=len(durations) - 1,
                deadline=mode.effective_deadline(task.name),
                scalable=True,
                levels=pe.voltage_levels,
            )
        else:
            node = _Node(
                key=_task_node_key(task.name),
                durations=(task.duration,),
                energies=(task.energy,),
                level=0,
                deadline=mode.effective_deadline(task.name),
                scalable=False,
            )
        graph.add_node(node)

    for pe_name in sorted(hw_dvs_pes):
        placed = schedule.tasks_on(pe_name)
        if not placed:
            continue
        pe = architecture.pe(pe_name)
        segments = transform_parallel_tasks(placed)
        segments_by_pe[pe_name] = segments
        for segment in segments:
            durations, energies = duration_energy_tables(
                segment.duration,
                segment.energy,
                pe.voltage_levels,
                pe.threshold_voltage,
            )
            deadline = math.inf
            for task in placed:
                if task.name in segment.active and (
                    abs(task.end - segment.end) <= TIME_EPS
                ):
                    deadline = min(
                        deadline, mode.effective_deadline(task.name)
                    )
            graph.add_node(
                _Node(
                    key=_segment_node_key(pe_name, segment.index),
                    durations=durations,
                    energies=energies,
                    level=len(durations) - 1,
                    deadline=deadline,
                    scalable=True,
                    levels=pe.voltage_levels,
                )
            )
        # The chain: the component executes its segments in order.
        for left, right in zip(segments, segments[1:]):
            graph.add_edge(
                _segment_node_key(pe_name, left.index),
                _segment_node_key(pe_name, right.index),
            )
        for task in placed:
            own = [s for s in segments if task.name in s.active]
            task_first_segment[task.name] = _segment_node_key(
                pe_name, own[0].index
            )
            task_last_segment[task.name] = _segment_node_key(
                pe_name, own[-1].index
            )

    def end_anchor(task_name: str) -> str:
        return task_last_segment.get(task_name, _task_node_key(task_name))

    def start_anchor(task_name: str) -> str:
        return task_first_segment.get(task_name, _task_node_key(task_name))

    # --- nodes and edges: communications -------------------------------
    for comm in schedule.comms:
        key = _comm_node_key(comm.src, comm.dst)
        graph.add_node(
            _Node(
                key=key,
                durations=(comm.duration,),
                energies=(comm.energy,),
                level=0,
                deadline=math.inf,
                scalable=False,
            )
        )
        graph.add_edge(end_anchor(comm.src), key)
        graph.add_edge(key, start_anchor(comm.dst))

    # --- edges: execution order on serial resources --------------------
    for pe in architecture.pes:
        if pe.name in hw_dvs_pes:
            continue
        placed = schedule.tasks_on(pe.name)
        if pe.is_software:
            for left, right in zip(placed, placed[1:]):
                graph.add_edge(
                    _task_node_key(left.name), _task_node_key(right.name)
                )
        else:
            by_core: Dict[Tuple[str, Optional[int]], List[ScheduledTask]]
            by_core = {}
            for task in placed:
                by_core.setdefault(
                    (task.task_type, task.core_index), []
                ).append(task)
            for group in by_core.values():
                group.sort(key=lambda t: t.start)
                for left, right in zip(group, group[1:]):
                    graph.add_edge(
                        _task_node_key(left.name),
                        _task_node_key(right.name),
                    )
    for link in architecture.links:
        carried = schedule.comms_on(link.name)
        for left, right in zip(carried, carried[1:]):
            graph.add_edge(
                _comm_node_key(left.src, left.dst),
                _comm_node_key(right.src, right.dst),
            )

    return graph, segments_by_pe


# ----------------------------------------------------------------------
# Back-mapping and replay
# ----------------------------------------------------------------------


def _rebuild_schedule(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    graph: _DvsGraph,
    segments_by_pe: Mapping[str, Tuple[VirtualSegment, ...]],
) -> ModeSchedule:
    """Map segment/task voltages back to tasks and replay the mode."""
    architecture = problem.architecture
    scaled: Dict[str, Tuple[float, float, Tuple[Tuple[float, float], ...]]]
    scaled = {}

    segment_nodes: Dict[Tuple[str, int], _Node] = {}
    for pe_name, segments in segments_by_pe.items():
        for segment in segments:
            segment_nodes[(pe_name, segment.index)] = graph.nodes[
                _segment_node_key(pe_name, segment.index)
            ]

    for task in schedule.tasks:
        pe = architecture.pe(task.pe)
        if task.pe in segments_by_pe:
            vmax = pe.voltage_levels[-1]
            pieces: List[Tuple[float, float]] = []
            duration = 0.0
            energy = 0.0
            for segment in segments_by_pe[task.pe]:
                if task.name not in segment.active:
                    continue
                node = segment_nodes[(task.pe, segment.index)]
                voltage = node.levels[node.level]
                piece = scaled_duration(
                    segment.duration, voltage, vmax, pe.threshold_voltage
                )
                pieces.append((piece, voltage))
                duration += piece
                energy += scaled_energy(
                    task.power * segment.duration, voltage, vmax
                )
            scaled[task.name] = (duration, energy, tuple(pieces))
        else:
            node = graph.nodes[_task_node_key(task.name)]
            if node.scalable:
                voltage = node.levels[node.level]
                scaled[task.name] = (
                    node.duration,
                    node.energy,
                    ((node.duration, voltage),),
                )
            else:
                scaled[task.name] = (task.duration, task.energy, ())

    return _replay(problem, mode, schedule, scaled)


def _replay(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    scaled: Mapping[str, Tuple[float, float, Tuple[Tuple[float, float], ...]]],
) -> ModeSchedule:
    """Forward-simulate the mode with new durations, preserving order.

    The order-augmented task-level DAG (precedence through comms plus
    the original per-resource execution order) is traversed once; every
    activity starts as soon as all its ordering predecessors finish.
    """
    architecture = problem.architecture
    graph = mode.task_graph

    succ: Dict[str, List[str]] = {}
    pred_count: Dict[str, int] = {}

    def add_edge(src: str, dst: str) -> None:
        succ.setdefault(src, []).append(dst)
        pred_count[dst] = pred_count.get(dst, 0) + 1

    task_keys = {t.name: _task_node_key(t.name) for t in schedule.tasks}
    for key in task_keys.values():
        pred_count.setdefault(key, 0)
    comm_keys = {}
    for comm in schedule.comms:
        key = _comm_node_key(comm.src, comm.dst)
        comm_keys[comm.key] = key
        pred_count.setdefault(key, 0)
        add_edge(task_keys[comm.src], key)
        add_edge(key, task_keys[comm.dst])

    for pe in architecture.pes:
        placed = schedule.tasks_on(pe.name)
        if pe.is_software:
            for left, right in zip(placed, placed[1:]):
                add_edge(task_keys[left.name], task_keys[right.name])
        else:
            by_core: Dict[Tuple[str, Optional[int]], List[ScheduledTask]]
            by_core = {}
            for task in placed:
                by_core.setdefault(
                    (task.task_type, task.core_index), []
                ).append(task)
            for group in by_core.values():
                group.sort(key=lambda t: t.start)
                for left, right in zip(group, group[1:]):
                    add_edge(task_keys[left.name], task_keys[right.name])
    for link in architecture.links:
        carried = schedule.comms_on(link.name)
        for left, right in zip(carried, carried[1:]):
            add_edge(comm_keys[left.key], comm_keys[right.key])

    durations: Dict[str, float] = {}
    for task in schedule.tasks:
        durations[task_keys[task.name]] = scaled[task.name][0]
    for comm in schedule.comms:
        durations[comm_keys[comm.key]] = comm.duration

    order = _topological(succ, set(pred_count))
    start: Dict[str, float] = {}
    finish: Dict[str, float] = {}
    preds: Dict[str, List[str]] = {}
    for src, dsts in succ.items():
        for dst in dsts:
            preds.setdefault(dst, []).append(src)
    for key in order:
        arrival = 0.0
        for prev in preds.get(key, []):
            arrival = max(arrival, finish[prev])
        start[key] = arrival
        finish[key] = arrival + durations[key]

    new_tasks: List[ScheduledTask] = []
    for task in schedule.tasks:
        key = task_keys[task.name]
        duration, energy, pieces = scaled[task.name]
        new_tasks.append(
            ScheduledTask(
                name=task.name,
                task_type=task.task_type,
                pe=task.pe,
                start=start[key],
                end=start[key] + duration,
                energy=energy,
                power=task.power,
                core_index=task.core_index,
                pieces=pieces,
            )
        )
    new_comms: List[ScheduledComm] = []
    for comm in schedule.comms:
        key = comm_keys[comm.key]
        new_comms.append(
            ScheduledComm(
                src=comm.src,
                dst=comm.dst,
                link=comm.link,
                start=start[key],
                end=start[key] + comm.duration,
                energy=comm.energy,
            )
        )
    return ModeSchedule(mode.name, new_tasks, new_comms)


def _topological(
    succ: Mapping[str, List[str]], nodes: Set[str]
) -> List[str]:
    in_degree: Dict[str, int] = {key: 0 for key in nodes}
    for dsts in succ.values():
        for dst in dsts:
            in_degree[dst] += 1
    ready = [key for key, count in in_degree.items() if count == 0]
    order: List[str] = []
    while ready:
        current = ready.pop()
        order.append(current)
        for nxt in succ.get(current, []):
            in_degree[nxt] -= 1
            if in_degree[nxt] == 0:
                ready.append(nxt)
    if len(order) != len(nodes):
        raise VoltageScalingError("replay graph contains a cycle")
    return order
