"""Struct-of-arrays PV-DVS kernels (the fast gradient-descent path).

This module is the performance twin of the object-graph descent kept in
:mod:`repro.dvs.pv_dvs` (the ``vector_dvs=False`` ablation oracle).  It
produces bit-identical schedules while restructuring every phase of the
``scale_schedule`` pipeline around flat arrays:

* **Construction** builds a :class:`_VectorGraph` — parallel arrays of
  duration/energy tables, current levels, deadlines and integer
  adjacency — in one fused pass over the schedule, with no per-node
  objects, no string keys and a single grouping of tasks/comms by
  resource shared between the DVS graph and the replay graph.
* **Selection** replaces the legacy per-move scan over all scalable
  nodes with a heap ordered by ``(-saved/extra, -saved, position)``.
  During the descent a node's earliest start only ever increases and
  its latest finish only ever decreases (durations are monotonically
  non-decreasing), so a move that is infeasible once stays infeasible
  forever and may be discarded on first pop — the heap therefore pops
  exactly the accept sequence the scan produces, including its
  first-position tie-break.
* **Timing maintenance** batches cone updates: accepted stretches are
  queued, and ancestor/descendant bitsets (one machine-word-parallel
  big integer per node) tell in O(1) whether a popped candidate's
  ``est``/``lft`` could be stale.  Only then is the queue flushed — all
  pending stretches propagate in *one* rank-ordered wave per direction,
  recomputing exactly the legacy per-node formulas (``max`` over
  predecessor finishes, ``min`` over successor latest starts, both
  exact on floats), so the arrays stay bit-identical to a full
  recompute.
* **Emission** rebuilds :class:`~repro.scheduling.schedule.ScheduledTask`
  / ``ScheduledComm`` instances through ``__new__`` fast constructors:
  every emitted value satisfies the dataclass invariants by
  construction (ends are ``start + non-negative duration``, energies
  are non-negative), so re-validating each of them on the hot path
  would only re-derive known facts.

The optional *analytical warm start* (``warm_start=True``) seeds the
descent from the closed-form continuous voltage relaxation: per node,
the total float ``slack_i = lft_i − est_i − d_i`` is the minimum slack
over all paths through the node, and ``W_i`` (a longest-path DP) is the
maximum scalable work over those paths, so stretching every scalable
node by its own factor ``1 + slack_i / W_i`` keeps every path within
its deadline in the continuous domain.  Levels are snapped *up* (toward
nominal voltage) to the discrete grid, a verification pass guards the
snap against accumulated rounding, and the ordinary descent then
distributes the remaining slack.  The warm start changes the descent
trajectory, hence it is config-gated and excluded from bit-identity
checks; the fuzz suite asserts it never ends with more energy than the
cold descent.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from operator import attrgetter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.decode_cache import DecodeContext
    from repro.engine.profile import PhaseProfiler
    from repro.obs.metrics import MetricsRegistry
from repro.errors import VoltageScalingError
from repro.problem import Problem
from repro.scheduling.schedule import (
    TIME_EPS,
    ModeSchedule,
    ScheduledComm,
    ScheduledTask,
)
from repro.specification.mode import Mode

#: Relative numerical guard when comparing slack against extensions.
#: (Single definition; the legacy loop imports it from here.)
_SLACK_EPS = 1e-12

_INF = math.inf

#: C-level sort keys for the resource grouping (same orderings as
#: ``ModeSchedule.tasks_on`` / ``comms_on`` / the by-core grouping).
_TASK_ORDER = attrgetter("start", "name")
_COMM_ORDER = attrgetter("start", "key")
_START_ORDER = attrgetter("start")

#: Damping of the analytical warm start's continuous stretch factors.
#: The relaxation is deadline-exact but energy-blind: committing the
#: full continuous stretch can strand level budget on low-gradient
#: nodes the discrete descent would rather give to high-gradient ones
#: (undamped, ~8 % of fuzz cases end above the cold start, by up to
#: 10 %).  The safe damping shrinks with graph depth: 0.25 is clean on
#: the paper-scale corpus but still loses up to 0.9 % on the 200+-task
#: stress tier, where violations only vanish at 0.15 and below.
#: Committing a tenth of the continuous stretch leaves the end-game to
#: the exact gradient descent, which then never finishes above the
#: cold start on any fuzz/bench corpus (see tests/dvs and
#: benchmarks/bench_dvs.py).
_WARM_DAMPING = 0.1

#: Below this many scalable nodes the warm start's stretch factors are
#: computed with plain Python loops — identical IEEE operations, but
#: without per-call numpy dispatch overhead, which dominates on the
#: 30–60-node graphs of the paper's benchmarks.
_WARM_NUMPY_MIN = 64

#: Table type of one scalable node: per-level durations or energies,
#: ascending voltage (index ``len-1`` is nominal).
_Table = Tuple[float, ...]

# The profiler and metrics singletons live behind the engine/obs
# package inits, which transitively import this module — bind them on
# first use instead of at import time (same bind-once semantics as the
# top-level imports the rest of the codebase uses).
_PROFILER: Optional["PhaseProfiler"] = None
_REGISTRY: Optional["MetricsRegistry"] = None


def _profiler() -> "PhaseProfiler":
    global _PROFILER
    if _PROFILER is None:
        from repro.engine.profile import PROFILER

        _PROFILER = PROFILER
    return _PROFILER


def _registry() -> "MetricsRegistry":
    global _REGISTRY
    if _REGISTRY is None:
        from repro.obs.metrics import REGISTRY

        _REGISTRY = REGISTRY
    return _REGISTRY


class _VectorGraph:
    """Order-augmented DAG as parallel arrays (struct-of-arrays).

    One instance is built per ``scale_schedule`` call and carries both
    the descent state (levels, current durations, est/lft arrays) and
    the back-mapping indices (task/segment/comm positions).  Adjacency
    is integer list-of-lists — the cone walks index it directly — plus
    per-node ancestor/descendant bitsets for O(1) staleness tests.
    """

    __slots__ = (
        "size",
        "dur_tables",
        "en_tables",
        "voltages",
        "level",
        "durations",
        "deadlines",
        "scalable",
        "scalable_flags",
        "preds",
        "succs",
        "topo",
        "topo_rank",
        "pending",
        "est",
        "finish",
        "lft",
        "latest_start",
        "task_pos",
        "comm_base",
        "task_segments",
        "seg_nominal",
        "seg_pes",
    )

    def __init__(self, size: int) -> None:
        self.size = size
        self.dur_tables: List[Optional[_Table]] = []
        self.en_tables: List[Optional[_Table]] = []
        self.voltages: List[Optional[_Table]] = []
        self.level: List[int] = []
        self.durations: List[float] = []
        self.deadlines: List[float] = []
        self.scalable: List[int] = []
        self.scalable_flags = bytearray(size)
        self.preds: List[List[int]] = [[] for _ in range(size)]
        self.succs: List[List[int]] = [[] for _ in range(size)]
        self.topo: List[int] = []
        self.topo_rank: List[int] = []
        self.pending = bytearray(size)
        self.est: List[float] = []
        self.finish: List[float] = []
        self.lft: List[float] = []
        self.latest_start: List[float] = []
        # Back-mapping: task name -> position (tasks folded into
        # segment chains are absent), first comm position (comms are
        # consecutive in schedule order), and per-task ordered segment
        # positions on shared-rail hardware.
        self.task_pos: Dict[str, int] = {}
        self.comm_base = 0
        self.task_segments: Dict[str, List[int]] = {}
        # True nominal duration per segment position.  The voltage
        # table's top entry is `(d·s)/s`, which can differ from `d` by
        # an ulp; the rebuild needs the exact original for energies.
        self.seg_nominal: Dict[int, float] = {}
        self.seg_pes: List[str] = []


# ----------------------------------------------------------------------
# Fast constructors (invariants hold by construction; see module doc)
# ----------------------------------------------------------------------


def _make_task(
    name: str,
    task_type: str,
    pe: str,
    start: float,
    end: float,
    energy: float,
    power: float,
    core_index: Optional[int],
    pieces: Tuple[Tuple[float, float], ...],
) -> ScheduledTask:
    task = ScheduledTask.__new__(ScheduledTask)
    values = task.__dict__
    values["name"] = name
    values["task_type"] = task_type
    values["pe"] = pe
    values["start"] = start
    values["end"] = end
    values["energy"] = energy
    values["power"] = power
    values["core_index"] = core_index
    values["pieces"] = pieces
    return task


def _make_comm(
    src: str,
    dst: str,
    link: Optional[str],
    start: float,
    end: float,
    energy: float,
) -> ScheduledComm:
    comm = ScheduledComm.__new__(ScheduledComm)
    values = comm.__dict__
    values["src"] = src
    values["dst"] = dst
    values["link"] = link
    values["start"] = start
    values["end"] = end
    values["energy"] = energy
    return comm


def _make_schedule(
    mode_name: str,
    tasks: Sequence[ScheduledTask],
    comms: Sequence[ScheduledComm],
) -> ModeSchedule:
    # Inputs derive one-to-one from an already-validated ModeSchedule,
    # so names/keys are unique and the duplicate checks of __init__
    # cannot fire.
    schedule = ModeSchedule.__new__(ModeSchedule)
    schedule.mode_name = mode_name
    schedule._tasks = {task.name: task for task in tasks}
    schedule._comms = {(comm.src, comm.dst): comm for comm in comms}
    return schedule


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------


def _build_vector_graph(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    shared_rail: bool,
    context: "DecodeContext",
) -> Tuple[
    _VectorGraph,
    Optional[Tuple[List[List[int]], List[List[int]], List[float]]],
]:
    """One fused pass: DVS graph arrays plus the shared replay graph.

    Returns the graph and, when Fig. 5 segment chains exist, the replay
    adjacency ``(preds, succs, durations)`` over task-level activities
    (tasks in schedule order, then comms) — collected alongside the DVS
    edges so the rebuild phase never re-derives the resource grouping.
    """
    architecture = problem.architecture
    mode_data = context.modes[mode.name]
    deadlines_of = mode_data.deadlines
    pe_objects = context.pes
    tables = context.duration_energy_tables
    hw_dvs = context.hw_dvs_pes if shared_rail else frozenset()
    dvs_pes = context.dvs_pes

    tasks = schedule.tasks
    comms = schedule.comms
    task_count = len(tasks)

    # --- single resource grouping, shared by DVS and replay graphs ----
    # Replicates ModeSchedule.tasks_on / comms_on exactly: filter by
    # resource, order by (start, name) / (start, key).
    tasks_by_pe: Dict[str, List[ScheduledTask]] = {}
    for task in tasks:
        tasks_by_pe.setdefault(task.pe, []).append(task)
    for placed in tasks_by_pe.values():
        placed.sort(key=_TASK_ORDER)
    comms_by_link: Dict[str, List[ScheduledComm]] = {}
    for comm in comms:
        if comm.link is not None:
            comms_by_link.setdefault(comm.link, []).append(comm)
    for carried in comms_by_link.values():
        carried.sort(key=_COMM_ORDER)

    # --- nodes: tasks off shared-rail DVS hardware --------------------
    folded = 0
    seg_pes: List[str] = []
    if hw_dvs:
        for pe_name in hw_dvs:
            group = tasks_by_pe.get(pe_name)
            if group:
                folded += len(group)
                seg_pes.append(pe_name)
        seg_pes.sort()

    graph = _VectorGraph(0)  # size fixed up after construction
    dur_tables = graph.dur_tables
    en_tables = graph.en_tables
    voltages = graph.voltages
    level = graph.level
    durations = graph.durations
    deadlines = graph.deadlines
    scalable = graph.scalable
    task_pos = graph.task_pos
    task_segments = graph.task_segments
    seg_nominal = graph.seg_nominal
    graph.seg_pes = seg_pes

    position = 0
    for task in tasks:
        pe_name = task.pe
        if pe_name in hw_dvs:
            continue
        task_pos[task.name] = position
        if pe_name in dvs_pes:
            dur_t, en_t = tables(pe_name, task.duration, task.energy)
            dur_tables.append(dur_t)
            en_tables.append(en_t)
            top = len(dur_t) - 1
            level.append(top)
            durations.append(dur_t[top])
            voltages.append(pe_objects[pe_name].voltage_levels)
            scalable.append(position)
        else:
            dur_tables.append(None)
            en_tables.append(None)
            voltages.append(None)
            level.append(0)
            durations.append(task.duration)
        deadlines.append(deadlines_of[task.name])
        position += 1

    # --- nodes: Fig. 5 segment chains on shared-rail hardware ---------
    task_first_seg: Dict[str, int] = {}
    task_last_seg: Dict[str, int] = {}
    edges: List[Tuple[int, int]] = []
    for pe_name in seg_pes:
        placed = tasks_by_pe[pe_name]
        pe = pe_objects[pe_name]
        starts = [t.start for t in placed]
        ends = [t.end for t in placed]
        powers = [t.power for t in placed]
        count = len(placed)
        breakpoints = sorted(set(starts) | set(ends))
        chain_prev = -1
        task_energy = 0.0
        for t in placed:
            task_energy += t.power * t.duration
        segment_energy = 0.0
        latest_segment = -_INF
        for left, right in zip(breakpoints, breakpoints[1:]):
            if right - left <= TIME_EPS:
                continue
            left_eps = left + TIME_EPS
            right_eps = right - TIME_EPS
            active = [
                i
                for i in range(count)
                if starts[i] <= left_eps and ends[i] >= right_eps
            ]
            if not active:
                continue
            power = 0.0
            for i in active:
                power += powers[i]
            seg_duration = right - left
            seg_energy = power * seg_duration
            segment_energy += seg_energy
            if right > latest_segment:
                latest_segment = right
            deadline = _INF
            for i in active:
                if abs(ends[i] - right) <= TIME_EPS:
                    candidate = deadlines_of[placed[i].name]
                    if candidate < deadline:
                        deadline = candidate
            dur_t, en_t = tables(pe_name, seg_duration, seg_energy)
            dur_tables.append(dur_t)
            en_tables.append(en_t)
            top = len(dur_t) - 1
            level.append(top)
            durations.append(dur_t[top])
            voltages.append(pe.voltage_levels)
            deadlines.append(deadline)
            scalable.append(position)
            seg_nominal[position] = seg_duration
            for i in active:
                name = placed[i].name
                segs = task_segments.get(name)
                if segs is None:
                    task_segments[name] = [position]
                    task_first_seg[name] = position
                else:
                    segs.append(position)
                task_last_seg[name] = position
            if chain_prev >= 0:
                edges.append((chain_prev, position))
            chain_prev = position
            position += 1
        # Transformation invariants (the legacy path checks them via
        # transform._check_equivalence; same tolerances here).
        scale = task_energy if task_energy > 1.0 else 1.0
        if abs(task_energy - segment_energy) > 1e-9 * scale:
            raise VoltageScalingError(
                f"transformation broke energy equivalence: tasks "
                f"{task_energy}, segments {segment_energy}"
            )
        latest_task = -_INF
        for t in placed:
            if t.duration > TIME_EPS and t.end > latest_task:
                latest_task = t.end
        if latest_task > -_INF and latest_segment > -_INF:
            if abs(latest_task - latest_segment) > TIME_EPS:
                raise VoltageScalingError(
                    "transformation broke makespan equivalence"
                )

    # --- nodes and edges: communications ------------------------------
    comm_base = position
    graph.comm_base = comm_base
    replay: Optional[
        Tuple[List[List[int]], List[List[int]], List[float]]
    ] = None
    if seg_pes:
        replay_count = task_count + len(comms)
        replay_preds: List[List[int]] = [[] for _ in range(replay_count)]
        replay_succs: List[List[int]] = [[] for _ in range(replay_count)]
        replay_durations = [0.0] * replay_count
        replay_task_index = {
            task.name: index for index, task in enumerate(tasks)
        }
        for offset, comm in enumerate(comms):
            replay_durations[task_count + offset] = comm.duration
        replay = (replay_preds, replay_succs, replay_durations)
    for comm in comms:
        dur_tables.append(None)
        en_tables.append(None)
        voltages.append(None)
        level.append(0)
        durations.append(comm.duration)
        deadlines.append(_INF)
        src_anchor = task_last_seg.get(comm.src)
        if src_anchor is None:
            src_anchor = task_pos[comm.src]
        dst_anchor = task_first_seg.get(comm.dst)
        if dst_anchor is None:
            dst_anchor = task_pos[comm.dst]
        if src_anchor != position:
            edges.append((src_anchor, position))
        if dst_anchor != position:
            edges.append((position, dst_anchor))
        position += 1
    if replay is not None:
        replay_preds, replay_succs, _rd = replay
        for offset, comm in enumerate(comms):
            index = task_count + offset
            src_index = replay_task_index[comm.src]
            dst_index = replay_task_index[comm.dst]
            replay_succs[src_index].append(index)
            replay_preds[index].append(src_index)
            replay_succs[index].append(dst_index)
            replay_preds[dst_index].append(index)

    # --- edges: execution order on serial resources --------------------
    for pe in architecture.pes:
        pe_name = pe.name
        in_segments = pe_name in hw_dvs
        placed = tasks_by_pe.get(pe_name)
        if not placed:
            continue
        if pe.is_software:
            if not in_segments:
                prev = task_pos[placed[0].name]
                for nxt_task in placed[1:]:
                    nxt = task_pos[nxt_task.name]
                    edges.append((prev, nxt))
                    prev = nxt
            if replay is not None:
                prev = replay_task_index[placed[0].name]
                for nxt_task in placed[1:]:
                    nxt = replay_task_index[nxt_task.name]
                    replay_succs[prev].append(nxt)
                    replay_preds[nxt].append(prev)
                    prev = nxt
        else:
            by_core: Dict[Tuple[str, Optional[int]], List[ScheduledTask]]
            by_core = {}
            for task in placed:
                by_core.setdefault(
                    (task.task_type, task.core_index), []
                ).append(task)
            for group in by_core.values():
                group.sort(key=_START_ORDER)
                if not in_segments:
                    prev = task_pos[group[0].name]
                    for nxt_task in group[1:]:
                        nxt = task_pos[nxt_task.name]
                        edges.append((prev, nxt))
                        prev = nxt
                if replay is not None:
                    prev = replay_task_index[group[0].name]
                    for nxt_task in group[1:]:
                        nxt = replay_task_index[nxt_task.name]
                        replay_succs[prev].append(nxt)
                        replay_preds[nxt].append(prev)
                        prev = nxt
    if comms_by_link:
        comm_index = {comm.key: index for index, comm in enumerate(comms)}
        for link in architecture.links:
            carried = comms_by_link.get(link.name)
            if not carried:
                continue
            prev_i = comm_index[carried[0].key]
            for nxt_comm in carried[1:]:
                nxt_i = comm_index[nxt_comm.key]
                edges.append((comm_base + prev_i, comm_base + nxt_i))
                if replay is not None:
                    replay_succs[task_count + prev_i].append(
                        task_count + nxt_i
                    )
                    replay_preds[task_count + nxt_i].append(
                        task_count + prev_i
                    )
                prev_i = nxt_i

    # --- freeze: adjacency, topological order, reachability bitsets ----
    size = position
    graph.size = size
    graph.scalable_flags = flags = bytearray(size)
    for pos in scalable:
        flags[pos] = 1
    preds: List[List[int]] = [[] for _ in range(size)]
    succs: List[List[int]] = [[] for _ in range(size)]
    for src, dst in edges:
        adjacent = succs[src]
        if dst not in adjacent:
            adjacent.append(dst)
            preds[dst].append(src)
    graph.preds = preds
    graph.succs = succs

    in_degree = [len(entry) for entry in preds]
    ready = [pos for pos in range(size) if not in_degree[pos]]
    topo: List[int] = []
    while ready:
        current = ready.pop()
        topo.append(current)
        for nxt in succs[current]:
            in_degree[nxt] -= 1
            if not in_degree[nxt]:
                ready.append(nxt)
    if len(topo) != size:
        raise VoltageScalingError("DVS graph contains a cycle")
    graph.topo = topo
    rank = [0] * size
    for ordinal, pos in enumerate(topo):
        rank[pos] = ordinal
    graph.topo_rank = rank
    graph.pending = bytearray(size)
    return graph, replay


# ----------------------------------------------------------------------
# Timing kernels
# ----------------------------------------------------------------------


def _forward_full(graph: _VectorGraph) -> None:
    """Earliest starts/finishes from scratch (exact max-accumulation)."""
    size = graph.size
    est = [0.0] * size
    finish = [0.0] * size
    durations = graph.durations
    preds = graph.preds
    for pos in graph.topo:
        arrival = 0.0
        for prev in preds[pos]:
            candidate = finish[prev]
            if candidate > arrival:
                arrival = candidate
        est[pos] = arrival
        finish[pos] = arrival + durations[pos]
    graph.est = est
    graph.finish = finish


def _backward_full(graph: _VectorGraph) -> None:
    """Latest finishes/starts from scratch (exact min-accumulation)."""
    size = graph.size
    lft = [0.0] * size
    latest_start = [0.0] * size
    durations = graph.durations
    succs = graph.succs
    deadlines = graph.deadlines
    for pos in reversed(graph.topo):
        bound = deadlines[pos]
        for nxt in succs[pos]:
            candidate = latest_start[nxt]
            if candidate < bound:
                bound = candidate
        lft[pos] = bound
        latest_start[pos] = bound - durations[pos]
    graph.lft = lft
    graph.latest_start = latest_start


def _flush_forward(graph: _VectorGraph, sources: List[int]) -> None:
    """Propagate all queued stretches downstream in one ranked wave.

    Every flagged node is recomputed with exactly the full-pass formula
    once all its updated predecessors have been recomputed (rank
    order), so the wave is bit-identical to a full forward pass while
    visiting only the union of the stretched nodes' cones.
    """
    est = graph.est
    finish = graph.finish
    durations = graph.durations
    preds = graph.preds
    succs = graph.succs
    topo = graph.topo
    rank = graph.topo_rank
    pending = graph.pending
    remaining = 0
    first_rank = graph.size
    for pos in sources:
        if not pending[pos]:
            pending[pos] = 1
            remaining += 1
            if rank[pos] < first_rank:
                first_rank = rank[pos]
    for ordinal in range(first_rank, len(topo)):
        if not remaining:
            break
        current = topo[ordinal]
        if not pending[current]:
            continue
        pending[current] = 0
        remaining -= 1
        arrival = 0.0
        for prev in preds[current]:
            candidate = finish[prev]
            if candidate > arrival:
                arrival = candidate
        est[current] = arrival
        updated = arrival + durations[current]
        # An unchanged finish stops the wave: downstream nodes only
        # ever read `finish`, never `est` directly.
        if updated != finish[current]:
            finish[current] = updated
            for nxt in succs[current]:
                if not pending[nxt]:
                    pending[nxt] = 1
                    remaining += 1


def _flush_backward(graph: _VectorGraph, sources: List[int]) -> None:
    """Mirror image of :func:`_flush_forward` for ``lft``."""
    lft = graph.lft
    latest_start = graph.latest_start
    durations = graph.durations
    preds = graph.preds
    succs = graph.succs
    topo = graph.topo
    rank = graph.topo_rank
    deadlines = graph.deadlines
    pending = graph.pending
    remaining = 0
    last_rank = -1
    for pos in sources:
        if not pending[pos]:
            pending[pos] = 1
            remaining += 1
            if rank[pos] > last_rank:
                last_rank = rank[pos]
    for ordinal in range(last_rank, -1, -1):
        if not remaining:
            break
        current = topo[ordinal]
        if not pending[current]:
            continue
        pending[current] = 0
        remaining -= 1
        bound = deadlines[current]
        for nxt in succs[current]:
            candidate = latest_start[nxt]
            if candidate < bound:
                bound = candidate
        lft[current] = bound
        updated = bound - durations[current]
        if updated != latest_start[current]:
            latest_start[current] = updated
            for prev in preds[current]:
                if not pending[prev]:
                    pending[prev] = 1
                    remaining += 1


# ----------------------------------------------------------------------
# Gradient descent
# ----------------------------------------------------------------------


def _descent(graph: _VectorGraph, need_final_est: bool) -> None:
    """Greedy energy-gradient descent over the array representation.

    Equivalent to the legacy scan loop (see the module docstring for
    the monotone-slack argument): the heap pops moves in exactly the
    scan's accept order.  The timing arrays are allowed to go stale
    across accepts; every pop is decided against a two-sided bound
    instead of an exact recompute:

    * stale slack *over*-estimates the true slack (queued stretches
      only ever shrink it), so a candidate that fails even the stale
      test is infeasible for good — discard, no flush;
    * ``stale_slack − Δ`` *under*-estimates it, where ``Δ`` is the sum
      of the *other* nodes' queued stretch deltas: a queued stretch at
      ``q ≠ p`` can raise ``est[p]`` (``q`` an ancestor) or sink
      ``lft[p]`` (``q`` a descendant) by at most its delta, and never
      both, while ``p``'s own stretches move neither — so the deltas
      bound the combined staleness additively and a candidate that
      fits under the bound is feasible for sure, accept without
      flushing.

    Only the narrow band in between (candidate within ``Δ`` of the
    stale slack — the tight end-game) pays for a flush, which replays
    all queued stretches in one rank-ordered wave per direction and
    re-tests exactly.  Accept decisions therefore match the
    always-exact legacy loop bit for bit.

    ``need_final_est`` requests one last forward flush so ``est`` is
    exact on return (the direct-emission path reads it; the replay
    path does not).
    """
    dur_tables = graph.dur_tables
    en_tables = graph.en_tables
    level = graph.level
    durations = graph.durations
    est = graph.est
    lft = graph.lft

    heap: List[Tuple[float, float, int, float]] = []
    for pos in graph.scalable:
        current = level[pos]
        if current == 0:
            continue
        dur_t = dur_tables[pos]
        en_t = en_tables[pos]
        assert dur_t is not None and en_t is not None
        extra = dur_t[current - 1] - dur_t[current]
        saved = en_t[current] - en_t[current - 1]
        if saved <= 0:
            continue
        heap.append((-(saved / extra), -saved, pos, extra))
    if not heap:
        return
    heapify(heap)

    threshold = _SLACK_EPS + TIME_EPS
    pending: List[int] = []
    pending_delta: Dict[int, float] = {}
    delta = 0.0
    while heap:
        entry = heappop(heap)
        pos = entry[2]
        extra = entry[3]
        slack = lft[pos] - est[pos] - durations[pos]
        if extra > slack + threshold:
            continue
        if pending:
            # A node's own queued stretches move *other* nodes'
            # est/lft, never its own, so they drop out of the bound —
            # repeated stretches of one node never force a flush.
            stale = delta - pending_delta.get(pos, 0.0)
            if stale > 0.0 and extra > slack - stale + threshold:
                _flush_forward(graph, pending)
                _flush_backward(graph, pending)
                pending = []
                pending_delta = {}
                delta = 0.0
                slack = lft[pos] - est[pos] - durations[pos]
                if extra > slack + threshold:
                    continue
        # Accept: drop one level, queue the stretch, push the node's
        # next candidate move.
        current = level[pos] - 1
        level[pos] = current
        dur_t = dur_tables[pos]
        assert dur_t is not None
        durations[pos] = dur_t[current]
        if current > 0:
            en_t = en_tables[pos]
            assert en_t is not None
            next_extra = dur_t[current - 1] - dur_t[current]
            next_saved = en_t[current] - en_t[current - 1]
            if next_saved > 0:
                heappush(
                    heap,
                    (
                        -(next_saved / next_extra),
                        -next_saved,
                        pos,
                        next_extra,
                    ),
                )
        pending.append(pos)
        pending_delta[pos] = pending_delta.get(pos, 0.0) + extra
        delta += extra
    if pending and need_final_est:
        _flush_forward(graph, pending)
    # The backward arrays are not read after the descent, and the
    # replay path recomputes start times itself — leave whatever flush
    # is not needed unapplied.


# ----------------------------------------------------------------------
# Analytical warm start
# ----------------------------------------------------------------------


def _warm_start(graph: _VectorGraph, mode_name: str) -> None:
    """Closed-form continuous relaxation + conservative discrete snap.

    Requires nominal ``est``/``lft`` arrays (computed by the caller).
    On success levels are lowered and the timing arrays refreshed; on
    any guard failure the graph is left exactly as found.  Counters:
    ``dvs_warm_start_applied_total`` / ``dvs_warm_start_skipped_total``
    (labelled with the skip reason) and the per-node
    ``dvs_warm_start_snap_levels`` histogram of snapped level drops.
    """
    scalable = graph.scalable
    if not scalable:
        _registry().inc(
            "dvs_warm_start_skipped_total",
            mode=mode_name,
            reason="no_scalable",
        )
        return
    level = graph.level
    durations = graph.durations
    dur_tables = graph.dur_tables
    est = graph.est
    lft = graph.lft
    preds = graph.preds
    succs = graph.succs
    flags = graph.scalable_flags

    # Longest-path DP of scalable work through every node:
    # W_i = max over paths p ∋ i of the scalable duration on p.
    size = graph.size
    work_in = [0.0] * size
    for pos in graph.topo:
        best = 0.0
        for prev in preds[pos]:
            candidate = work_in[prev]
            if candidate > best:
                best = candidate
        work_in[pos] = best + (durations[pos] if flags[pos] else 0.0)
    work_out = [0.0] * size
    for pos in reversed(graph.topo):
        best = 0.0
        for nxt in succs[pos]:
            candidate = work_out[nxt]
            if candidate > best:
                best = candidate
        work_out[pos] = best + (durations[pos] if flags[pos] else 0.0)

    # Vectorised per-node stretch factors over the scalable subset:
    # slack_i is the minimum slack over paths through i, W_i the
    # maximum scalable work, so t_i = d_i · (1 + slack_i / W_i) keeps
    # every path inside its deadline in the continuous relaxation.
    if len(scalable) >= _WARM_NUMPY_MIN:
        index = np.asarray(scalable, dtype=np.intp)
        dur = np.asarray(durations, dtype=np.float64)[index]
        slack = (
            np.asarray(lft, dtype=np.float64)[index]
            - np.asarray(est, dtype=np.float64)[index]
            - dur
        )
        work = (
            np.asarray(work_in, dtype=np.float64)[index]
            + np.asarray(work_out, dtype=np.float64)[index]
            - dur
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(
                (slack > 0.0) & (work > 0.0), slack / work, 0.0
            )
        targets: Sequence[float] = dur * (1.0 + _WARM_DAMPING * ratio)
    else:
        # Same IEEE operations as the array path, loop-form: numpy's
        # per-call dispatch outweighs its throughput on small graphs.
        scalar_targets = []
        for pos in scalable:
            d = durations[pos]
            s = lft[pos] - est[pos] - d
            w = work_in[pos] + work_out[pos] - d
            if s > 0.0 and w > 0.0:
                scalar_targets.append(d * (1.0 + _WARM_DAMPING * (s / w)))
            else:
                scalar_targets.append(d)
        targets = scalar_targets

    saved_levels: List[Tuple[int, int]] = []
    drops: List[int] = []
    for ordinal, pos in enumerate(scalable):
        target = targets[ordinal]
        current = level[pos]
        if current == 0:
            continue
        dur_t = dur_tables[pos]
        assert dur_t is not None
        snapped = current
        for idx in range(current):
            if dur_t[idx] <= target:
                snapped = idx
                break
        if snapped < current:
            saved_levels.append((pos, current))
            drops.append(current - snapped)
            level[pos] = snapped
            durations[pos] = dur_t[snapped]
    if not saved_levels:
        _registry().inc(
            "dvs_warm_start_skipped_total",
            mode=mode_name,
            reason="no_slack",
        )
        return

    # Guard: the continuous bound is exact in real arithmetic; float
    # accumulation along long paths could still overshoot a deadline by
    # rounding.  Verify with one forward pass and revert wholesale if
    # any deadline breaks.
    _forward_full(graph)
    finish = graph.finish
    deadlines = graph.deadlines
    feasible = True
    for pos in range(size):
        if finish[pos] > deadlines[pos] + TIME_EPS:
            feasible = False
            break
    if not feasible:
        for pos, previous in saved_levels:
            level[pos] = previous
            dur_t = dur_tables[pos]
            assert dur_t is not None
            durations[pos] = dur_t[previous]
        _forward_full(graph)
        _registry().inc(
            "dvs_warm_start_skipped_total",
            mode=mode_name,
            reason="infeasible",
        )
        return
    _registry().inc("dvs_warm_start_applied_total", mode=mode_name)
    for dropped in drops:
        _registry().observe(
            "dvs_warm_start_snap_levels", float(dropped), mode=mode_name
        )


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------


def _emit_direct(
    mode: Mode, schedule: ModeSchedule, graph: _VectorGraph
) -> ModeSchedule:
    """Materialise the scaled schedule straight from the graph arrays.

    Only valid without segment chains: every activity is its own node,
    so the final earliest starts *are* the replayed start times.
    """
    est = graph.est
    task_pos = graph.task_pos
    level = graph.level
    dur_tables = graph.dur_tables
    en_tables = graph.en_tables
    voltages = graph.voltages
    flags = graph.scalable_flags
    new_tasks: List[ScheduledTask] = []
    for task in schedule.tasks:
        pos = task_pos[task.name]
        start = est[pos]
        if flags[pos]:
            current = level[pos]
            dur_t = dur_tables[pos]
            en_t = en_tables[pos]
            volts = voltages[pos]
            assert (
                dur_t is not None and en_t is not None and volts is not None
            )
            duration = dur_t[current]
            energy = en_t[current]
            pieces: Tuple[Tuple[float, float], ...] = (
                (duration, volts[current]),
            )
        else:
            duration = task.duration
            energy = task.energy
            pieces = ()
            # An untouched activity re-emits the exact same floats —
            # reuse the immutable input object instead of rebuilding.
            if (
                start == task.start
                and start + duration == task.end
                and not task.pieces
            ):
                new_tasks.append(task)
                continue
        new_tasks.append(
            _make_task(
                task.name,
                task.task_type,
                task.pe,
                start,
                start + duration,
                energy,
                task.power,
                task.core_index,
                pieces,
            )
        )
    comm_base = graph.comm_base
    new_comms: List[ScheduledComm] = []
    for offset, comm in enumerate(schedule.comms):
        start = est[comm_base + offset]
        duration = comm.duration
        if start == comm.start and start + duration == comm.end:
            new_comms.append(comm)
            continue
        new_comms.append(
            _make_comm(
                comm.src,
                comm.dst,
                comm.link,
                start,
                start + duration,
                comm.energy,
            )
        )
    return _make_schedule(mode.name, new_tasks, new_comms)


def _rebuild_replay(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    graph: _VectorGraph,
    replay: Tuple[List[List[int]], List[List[int]], List[float]],
    context: "DecodeContext",
) -> ModeSchedule:
    """Map segment voltages back to tasks and replay the mode.

    Piece durations are read from the segment voltage tables (the exact
    floats ``scaled_duration`` produces — the tables were built from
    it) and piece energies reuse precomputed per-level ``(v/vmax)²``
    factors, matching ``scaled_energy``'s operation order.
    """
    replay_preds, replay_succs, replay_durations = replay
    tasks = schedule.tasks
    comms = schedule.comms
    task_count = len(tasks)
    task_pos = graph.task_pos
    task_segments = graph.task_segments
    seg_nominal = graph.seg_nominal
    level = graph.level
    dur_tables = graph.dur_tables
    voltages = graph.voltages
    flags = graph.scalable_flags
    durations = graph.durations

    # Per-PE (v/vmax)² table, shared by every task on that rail.
    energy_factors: Dict[str, Tuple[float, ...]] = {}
    for pe_name in graph.seg_pes:
        levels = context.pes[pe_name].voltage_levels
        vmax = levels[-1]
        energy_factors[pe_name] = tuple(
            (vdd / vmax) ** 2 for vdd in levels
        )

    scaled_duration_of = [0.0] * task_count
    scaled_energy_of = [0.0] * task_count
    scaled_pieces: List[Tuple[Tuple[float, float], ...]] = [
        ()
    ] * task_count
    for index, task in enumerate(tasks):
        segs = task_segments.get(task.name)
        if segs is not None:
            factors = energy_factors[task.pe]
            power = task.power
            pieces_list: List[Tuple[float, float]] = []
            duration = 0.0
            energy = 0.0
            for pos in segs:
                seg_level = level[pos]
                dur_t = dur_tables[pos]
                volts = voltages[pos]
                assert dur_t is not None and volts is not None
                piece = dur_t[seg_level]
                pieces_list.append((piece, volts[seg_level]))
                duration += piece
                # Nominal slice energy = task power · nominal segment
                # duration (the exact original, not the table's top
                # entry), then the (v/vmax)² scaling — the same float
                # ops scaled_energy performs.
                energy += (power * seg_nominal[pos]) * factors[seg_level]
            scaled_duration_of[index] = duration
            scaled_energy_of[index] = energy
            scaled_pieces[index] = tuple(pieces_list)
        else:
            pos = task_pos[task.name]
            if flags[pos]:
                current = level[pos]
                dur_t = dur_tables[pos]
                en_t = graph.en_tables[pos]
                volts = voltages[pos]
                assert (
                    dur_t is not None
                    and en_t is not None
                    and volts is not None
                )
                scaled_duration_of[index] = dur_t[current]
                scaled_energy_of[index] = en_t[current]
                scaled_pieces[index] = ((dur_t[current], volts[current]),)
            else:
                scaled_duration_of[index] = task.duration
                scaled_energy_of[index] = task.energy
        replay_durations[index] = scaled_duration_of[index]

    # Kahn replay: start times are exact max-accumulations, so visit
    # order cannot change a float.
    count = task_count + len(comms)
    in_degree = [len(entries) for entries in replay_preds]
    ready = [index for index in range(count) if not in_degree[index]]
    start = [0.0] * count
    finish = [0.0] * count
    visited = 0
    while ready:
        current = ready.pop()
        visited += 1
        arrival = 0.0
        for prev in replay_preds[current]:
            candidate = finish[prev]
            if candidate > arrival:
                arrival = candidate
        start[current] = arrival
        finish[current] = arrival + replay_durations[current]
        for nxt in replay_succs[current]:
            in_degree[nxt] -= 1
            if not in_degree[nxt]:
                ready.append(nxt)
    if visited != count:
        raise VoltageScalingError("replay graph contains a cycle")

    new_tasks: List[ScheduledTask] = []
    for index, task in enumerate(tasks):
        begin = start[index]
        duration = scaled_duration_of[index]
        # Untouched activities re-emit the exact same floats — reuse
        # the immutable input objects instead of rebuilding them.
        if (
            not scaled_pieces[index]
            and begin == task.start
            and begin + duration == task.end
            and not task.pieces
        ):
            new_tasks.append(task)
            continue
        new_tasks.append(
            _make_task(
                task.name,
                task.task_type,
                task.pe,
                begin,
                begin + duration,
                scaled_energy_of[index],
                task.power,
                task.core_index,
                scaled_pieces[index],
            )
        )
    new_comms: List[ScheduledComm] = []
    for offset, comm in enumerate(comms):
        begin = start[task_count + offset]
        duration = comm.duration
        if begin == comm.start and begin + duration == comm.end:
            new_comms.append(comm)
            continue
        new_comms.append(
            _make_comm(
                comm.src,
                comm.dst,
                comm.link,
                begin,
                begin + duration,
                comm.energy,
            )
        )
    return _make_schedule(mode.name, new_tasks, new_comms)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def vector_scale_schedule(
    problem: Problem,
    mode: Mode,
    schedule: ModeSchedule,
    shared_rail: bool = True,
    context: Optional["DecodeContext"] = None,
    warm_start: bool = False,
) -> ModeSchedule:
    """Array-kernel PV-DVS descent; bit-identical to the legacy loop.

    With ``warm_start=True`` the descent starts from the analytical
    continuous-relaxation snap instead of nominal voltage — a different
    (config-gated) trajectory; see the module docstring.
    """
    if context is None:
        from repro.engine.decode_cache import context_for

        context = context_for(problem)
    with _profiler().phase("dvs_vector", mode=mode.name):
        graph, replay = _build_vector_graph(
            problem, mode, schedule, shared_rail, context
        )
        _forward_full(graph)
        _backward_full(graph)
        if warm_start:
            _warm_start(graph, mode.name)
            _backward_full(graph)
        _descent(graph, need_final_est=replay is None)
        if replay is None:
            return _emit_direct(mode, schedule, graph)
        return _rebuild_replay(
            problem, mode, schedule, graph, replay, context
        )
