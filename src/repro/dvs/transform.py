"""The Fig. 5 transformation: parallel hardware tasks → sequential profile.

All cores on one hardware component share a single supply rail (a
dedicated DC/DC converter per core would cost area and power), so
scaling the voltage affects every core simultaneously.  To compute a
voltage schedule with the machinery built for sequential (software)
execution, the component's timeline is cut at every task start/end into
*segments* during which the set of concurrently running tasks — and
therefore the total power drawn — is constant.  Each segment behaves
like one sequential task with the combined power of its active cores;
the chain of segments is energy- and makespan-equivalent to the parallel
execution at nominal voltage.

The transformation is *virtual*: it exists only to compute scaled
supply voltages (paper Section 4.2) and is mapped back onto the real
parallel tasks afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import VoltageScalingError
from repro.scheduling.schedule import TIME_EPS, ScheduledTask


@dataclass(frozen=True)
class VirtualSegment:
    """One constant-power slice of a hardware component's timeline.

    ``portions`` maps each active task to the nominal time it spends
    inside this segment (equal to the segment duration for every active
    task, since segments are cut at task boundaries — kept explicit for
    back-mapping).
    """

    index: int
    start: float
    end: float
    power: float
    active: Tuple[str, ...]

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def energy(self) -> float:
        """Nominal dynamic energy of the slice: combined power × time."""
        return self.power * self.duration


def transform_parallel_tasks(
    tasks: Sequence[ScheduledTask],
) -> Tuple[VirtualSegment, ...]:
    """Cut a component's task set into constant-activity segments.

    Parameters
    ----------
    tasks:
        The scheduled tasks of *one* hardware component in *one* mode.

    Returns
    -------
    tuple of :class:`VirtualSegment`
        Ordered by time; idle gaps between tasks produce no segment.
        The sum of segment energies equals the sum of task energies and
        the last segment ends at the latest task end (the equivalence
        the paper's transformation relies on).
    """
    if not tasks:
        return ()
    breakpoints = sorted(
        {t.start for t in tasks} | {t.end for t in tasks}
    )
    segments: List[VirtualSegment] = []
    for left, right in zip(breakpoints, breakpoints[1:]):
        if right - left <= TIME_EPS:
            continue
        active = tuple(
            sorted(
                t.name
                for t in tasks
                if t.start <= left + TIME_EPS and t.end >= right - TIME_EPS
            )
        )
        if not active:
            continue
        power = sum(t.power for t in tasks if t.name in active)
        segments.append(
            VirtualSegment(
                index=len(segments),
                start=left,
                end=right,
                power=power,
                active=active,
            )
        )
    _check_equivalence(tasks, segments)
    return tuple(segments)


def segments_of_task(
    segments: Sequence[VirtualSegment], task_name: str
) -> Tuple[VirtualSegment, ...]:
    """The segments a given task is active in, in time order."""
    return tuple(s for s in segments if task_name in s.active)


def _check_equivalence(
    tasks: Sequence[ScheduledTask], segments: Sequence[VirtualSegment]
) -> None:
    """Internal sanity check of the transformation invariants."""
    task_energy = sum(t.power * t.duration for t in tasks)
    segment_energy = sum(s.energy for s in segments)
    scale = max(task_energy, 1.0)
    if abs(task_energy - segment_energy) > 1e-9 * scale:
        raise VoltageScalingError(
            f"transformation broke energy equivalence: tasks "
            f"{task_energy}, segments {segment_energy}"
        )
    nonzero = [t for t in tasks if t.duration > TIME_EPS]
    if nonzero and segments:
        latest_task = max(t.end for t in nonzero)
        latest_segment = max(s.end for s in segments)
        if abs(latest_task - latest_segment) > TIME_EPS:
            raise VoltageScalingError(
                "transformation broke makespan equivalence"
            )
