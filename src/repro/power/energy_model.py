"""Average power of an implementation — the paper's Equation (1).

``p̄ = Σ_O (p̄_dyn(O) + p̄_stat(O)) · Ψ_O`` where

* ``p̄_dyn(O)`` is the dynamic energy of one task-graph iteration
  (tasks at their — possibly scaled — voltages, plus communications)
  divided by the mode's hyper-period, and
* ``p̄_stat(O)`` is the static power of the components left powered
  during the mode.

The probability vector is a parameter: the proposed synthesis evaluates
it with the true execution probabilities, the baseline "probability
neglecting" synthesis with a uniform vector — while *reported* results
are always under the true probabilities.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.errors import SpecificationError
from repro.power.shutdown import mode_static_power
from repro.problem import Problem
from repro.scheduling.schedule import ModeSchedule


def mode_dynamic_power(
    problem: Problem, mode_name: str, schedule: ModeSchedule
) -> float:
    """Average dynamic power of one mode: iteration energy / hyper-period."""
    mode = problem.omsm.mode(mode_name)
    return schedule.total_dynamic_energy() / mode.period


def power_breakdown(
    problem: Problem, schedules: Mapping[str, ModeSchedule]
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Per-mode (dynamic, static) power dictionaries, in watts."""
    dynamic: Dict[str, float] = {}
    static: Dict[str, float] = {}
    for mode in problem.omsm.modes:
        try:
            schedule = schedules[mode.name]
        except KeyError:
            raise SpecificationError(
                f"no schedule provided for mode {mode.name!r}"
            ) from None
        dynamic[mode.name] = mode_dynamic_power(
            problem, mode.name, schedule
        )
        static[mode.name] = mode_static_power(problem, schedule)
    return dynamic, static


def average_power(
    problem: Problem,
    schedules: Mapping[str, ModeSchedule],
    probabilities: Optional[Mapping[str, float]] = None,
) -> float:
    """Equation (1): probability-weighted average power, in watts.

    Parameters
    ----------
    problem:
        The co-synthesis instance.
    schedules:
        One (possibly voltage-scaled) schedule per mode.
    probabilities:
        Mode-probability vector ``Ψ``.  Defaults to the true execution
        probabilities of the OMSM; pass
        :meth:`~repro.specification.omsm.OMSM.uniform_probability_vector`
        to evaluate the way a probability-neglecting synthesis does.
    """
    if probabilities is None:
        probabilities = problem.omsm.probability_vector()
    dynamic, static = power_breakdown(problem, schedules)
    return weighted_power(problem, dynamic, static, probabilities)


def weighted_power(
    problem: Problem,
    dynamic: Mapping[str, float],
    static: Mapping[str, float],
    probabilities: Optional[Mapping[str, float]] = None,
) -> float:
    """Equation (1) from an existing per-mode power breakdown.

    The summation kernel of :func:`average_power`, shared with the
    incremental evaluation pipeline: given the per-mode dynamic/static
    powers (however they were obtained — freshly computed or served
    from the mode-result cache), the weighted total is accumulated in
    OMSM mode order, so the float result is bit-identical to the
    monolithic path.
    """
    if probabilities is None:
        probabilities = problem.omsm.probability_vector()
    total = 0.0
    for mode in problem.omsm.modes:
        try:
            weight = probabilities[mode.name]
        except KeyError:
            raise SpecificationError(
                f"probability vector misses mode {mode.name!r}"
            ) from None
        total += (dynamic[mode.name] + static[mode.name]) * weight
    return total
