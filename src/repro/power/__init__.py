"""Power estimation: dynamic/static power per mode and Equation (1).

The average power of an implementation is the probability-weighted sum
over modes of dynamic power (per-iteration energy divided by the mode's
hyper-period) and static power (sum over the components that remain
powered — components with no activity in a mode are shut down).
"""

from repro.power.shutdown import active_components, mode_static_power
from repro.power.energy_model import (
    average_power,
    mode_dynamic_power,
    power_breakdown,
)

__all__ = [
    "active_components",
    "average_power",
    "mode_dynamic_power",
    "mode_static_power",
    "power_breakdown",
]
