"""Component shut-down analysis (paper Section 2.3, Example 2).

A processing element can be switched off during a mode when no task of
that mode is mapped onto it; a communication link can be switched off
when no message of the mode is mapped onto it.  Shut-down components
contribute no static power to the mode, which is why implementing a
task type *multiple times* (e.g. once in hardware for a busy mode, once
in software for a rare one) can reduce the average power.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.problem import Problem
from repro.scheduling.schedule import ModeSchedule


def active_components(
    problem: Problem, schedule: ModeSchedule
) -> FrozenSet[str]:
    """Names of the components (``K_O``) powered during a mode."""
    return frozenset(schedule.active_pes()) | frozenset(
        schedule.active_links()
    )


def shut_down_components(
    problem: Problem, schedule: ModeSchedule
) -> Tuple[str, ...]:
    """Components that may be switched off during this mode (sorted)."""
    active = active_components(problem, schedule)
    names = list(problem.architecture.pe_names) + list(
        problem.architecture.link_names
    )
    return tuple(name for name in names if name not in active)


def mode_static_power(problem: Problem, schedule: ModeSchedule) -> float:
    """Static power ``p̄_stat`` of one mode, in watts.

    Sums the static power of every active component; shut-down
    components contribute nothing.
    """
    active = active_components(problem, schedule)
    total = 0.0
    for pe in problem.architecture.pes:
        if pe.name in active:
            total += pe.static_power
    for link in problem.architecture.links:
        if link.name in active:
            total += link.static_power
    return total
