"""Independent end-to-end validation of implementations.

:func:`validate_implementation` re-derives every claim an
:class:`~repro.mapping.implementation.Implementation` makes — schedule
invariants, deadline bookkeeping, core-allocation consistency, area and
transition accounting, energy/power arithmetic — from first principles
and raises on any mismatch.  It is deliberately written against the
*model* rather than the synthesis code paths, so it catches bugs in the
scheduler, the DVS back-mapping and the power model alike.  The test
suite and the benchmark harness run it on every synthesis result.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import ReproError
from repro.mapping.implementation import Implementation
from repro.power.energy_model import average_power, power_breakdown
from repro.scheduling.schedule import TIME_EPS


class ValidationError(ReproError):
    """An implementation failed independent re-validation."""


def validate_implementation(implementation: Implementation) -> None:
    """Re-check every invariant of a complete implementation.

    Raises :class:`ValidationError` (with a description of the first
    failed check) or returns ``None``.
    """
    problems: List[str] = []
    problem = implementation.problem
    architecture = problem.architecture

    # 1. Schedules: structural invariants per mode.
    for mode in problem.omsm.modes:
        schedule = implementation.schedules.get(mode.name)
        if schedule is None:
            problems.append(f"mode {mode.name!r} has no schedule")
            continue
        try:
            schedule.validate(mode, architecture)
        except ReproError as error:
            problems.append(
                f"schedule of mode {mode.name!r} invalid: {error}"
            )

    # 2. Mapping consistency: scheduled placement matches the genome.
    for mode in problem.omsm.modes:
        schedule = implementation.schedules.get(mode.name)
        if schedule is None:
            continue
        for task in mode.task_graph:
            scheduled = schedule.task(task.name)
            mapped = implementation.mapping.pe_of(mode.name, task.name)
            if scheduled.pe != mapped:
                problems.append(
                    f"task {task.name!r} in mode {mode.name!r} is "
                    f"scheduled on {scheduled.pe!r} but mapped to "
                    f"{mapped!r}"
                )

    # 3. Core usage: concurrent same-type hardware tasks never exceed
    #    the allocated core count.
    for mode in problem.omsm.modes:
        schedule = implementation.schedules.get(mode.name)
        if schedule is None:
            continue
        for pe in architecture.hardware_pes():
            placed = schedule.tasks_on(pe.name)
            for task in placed:
                available = implementation.cores.available_cores(
                    pe.name, mode.name, task.task_type
                )
                if available < 1:
                    problems.append(
                        f"task {task.name!r} runs on {pe.name!r} in "
                        f"mode {mode.name!r} without an allocated "
                        f"{task.task_type!r} core"
                    )
                elif (
                    task.core_index is not None
                    and task.core_index >= available
                ):
                    problems.append(
                        f"task {task.name!r} uses core index "
                        f"{task.core_index} of type {task.task_type!r} "
                        f"on {pe.name!r}, but only {available} cores "
                        f"are allocated"
                    )

    # 4. Timing bookkeeping matches the schedules.
    for mode in problem.omsm.modes:
        schedule = implementation.schedules.get(mode.name)
        if schedule is None:
            continue
        actual = schedule.timing_violations(mode)
        recorded = implementation.metrics.timing_violation.get(
            mode.name, {}
        )
        if set(actual) != set(recorded):
            problems.append(
                f"mode {mode.name!r}: recorded timing violations "
                f"{sorted(recorded)} do not match schedules "
                f"{sorted(actual)}"
            )

    # 5. Area accounting matches the allocation and the constraint.
    for pe in architecture.hardware_pes():
        used = implementation.cores.area_used.get(pe.name, 0.0)
        overshoot = max(0.0, used - pe.area)
        recorded = implementation.metrics.area_violation.get(
            pe.name, 0.0
        )
        if abs(overshoot - recorded) > 1e-9:
            problems.append(
                f"PE {pe.name!r}: recorded area violation {recorded} "
                f"does not match allocation ({overshoot})"
            )

    # 6. Transition accounting matches the allocation.
    actual_transition = implementation.cores.transition_violations()
    recorded_transition = implementation.metrics.transition_violation
    if set(actual_transition) != set(recorded_transition):
        problems.append(
            "recorded transition violations "
            f"{sorted(recorded_transition)} do not match core "
            f"allocation {sorted(actual_transition)}"
        )

    # 7. Power arithmetic: metrics equal the model recomputed.
    try:
        dynamic, static = power_breakdown(
            problem, implementation.schedules
        )
    except ReproError as error:
        problems.append(f"power model cannot be recomputed: {error}")
        raise ValidationError(
            f"{len(problems)} validation problem(s); first: "
            f"{problems[0]}"
        )
    for mode in problem.omsm.modes:
        for label, expected, recorded in (
            (
                "dynamic",
                dynamic[mode.name],
                implementation.metrics.dynamic_power.get(mode.name),
            ),
            (
                "static",
                static[mode.name],
                implementation.metrics.static_power.get(mode.name),
            ),
        ):
            if recorded is None or not math.isclose(
                expected, recorded, rel_tol=1e-9, abs_tol=1e-15
            ):
                problems.append(
                    f"mode {mode.name!r}: recorded {label} power "
                    f"{recorded} does not match model ({expected})"
                )
    expected_average = average_power(
        problem, implementation.schedules
    )
    if not math.isclose(
        expected_average,
        implementation.metrics.average_power,
        rel_tol=1e-9,
        abs_tol=1e-15,
    ):
        problems.append(
            f"recorded average power "
            f"{implementation.metrics.average_power} does not match "
            f"Equation (1) ({expected_average})"
        )

    # 8. Task energies are consistent with their voltage pieces.
    for mode in problem.omsm.modes:
        schedule = implementation.schedules.get(mode.name)
        if schedule is None:
            continue
        for task in schedule.tasks:
            if not task.pieces:
                continue
            total = sum(duration for duration, _ in task.pieces)
            if abs(total - task.duration) > max(
                TIME_EPS, 1e-9 * task.duration
            ):
                problems.append(
                    f"task {task.name!r} in mode {mode.name!r}: "
                    f"voltage pieces sum to {total}, duration is "
                    f"{task.duration}"
                )
            pe = architecture.pe(task.pe)
            if pe.dvs_enabled:
                vmax = pe.nominal_voltage
                for _, voltage in task.pieces:
                    if voltage > vmax + 1e-12 or voltage <= 0:
                        problems.append(
                            f"task {task.name!r}: piece voltage "
                            f"{voltage} outside (0, {vmax}]"
                        )

    if problems:
        raise ValidationError(
            f"{len(problems)} validation problem(s); first: "
            f"{problems[0]}"
        )
