"""repro — energy-efficient co-synthesis for multi-mode embedded systems.

A faithful, pure-Python reproduction of

    M. T. Schmitz, B. M. Al-Hashimi, P. Eles:
    "A Co-Design Methodology for Energy-Efficient Multi-Mode Embedded
    Systems with Consideration of Mode Execution Probabilities",
    Design, Automation and Test in Europe (DATE), 2003.

The library models multi-mode applications as operational mode state
machines (modes = task graphs, transitions with time limits, mode
execution probabilities), heterogeneous target architectures
(GPPs/ASIPs/ASICs/FPGAs with optional dynamic voltage scaling, buses),
and synthesises energy-minimal implementations with a genetic mapping
algorithm, list scheduling, hardware core allocation and discrete
voltage selection — including the paper's parallel-core-to-sequential
DVS transformation for hardware components.

Quick start::

    from repro import (
        SynthesisConfig, synthesize, smartphone_problem, DvsMethod,
    )

    problem = smartphone_problem()
    result = synthesize(
        problem,
        SynthesisConfig(use_probabilities=True, dvs=DvsMethod.GRADIENT),
    )
    print(result.best.summary())
"""

from repro.errors import (
    ArchitectureError,
    MappingError,
    ReproError,
    SchedulingError,
    SpecificationError,
    SynthesisError,
    TechnologyError,
    VoltageScalingError,
)
from repro.specification import (
    CommEdge,
    Mode,
    ModeTransition,
    OMSM,
    Task,
    TaskGraph,
)
from repro.architecture import (
    Architecture,
    CommunicationLink,
    PEKind,
    ProcessingElement,
    TaskImplementation,
    TechnologyLibrary,
)
from repro.problem import Problem
from repro.mapping import (
    CoreAllocation,
    Implementation,
    ImplementationMetrics,
    MappingString,
    allocate_cores,
)
from repro.scheduling import ModeSchedule, compute_mobilities, schedule_mode
from repro.dvs import scale_schedule, transform_parallel_tasks
from repro.power import average_power, mode_dynamic_power, mode_static_power
from repro.synthesis import (
    MultiModeSynthesizer,
    SynthesisConfig,
    SynthesisResult,
    evaluate_mapping,
    synthesize,
)
from repro.synthesis.config import DvsMethod
from repro.benchgen import (
    MultiModeSpec,
    generate_problem,
    load_suite,
    smartphone_problem,
    suite_problem,
)
from repro.validation import ValidationError, validate_implementation

__version__ = "1.0.0"

__all__ = [
    "Architecture",
    "ArchitectureError",
    "CommEdge",
    "CommunicationLink",
    "CoreAllocation",
    "DvsMethod",
    "Implementation",
    "ImplementationMetrics",
    "MappingError",
    "MappingString",
    "Mode",
    "ModeSchedule",
    "ModeTransition",
    "MultiModeSpec",
    "MultiModeSynthesizer",
    "OMSM",
    "PEKind",
    "Problem",
    "ProcessingElement",
    "ReproError",
    "SchedulingError",
    "SpecificationError",
    "SynthesisConfig",
    "SynthesisError",
    "SynthesisResult",
    "Task",
    "TaskGraph",
    "TaskImplementation",
    "TechnologyError",
    "TechnologyLibrary",
    "ValidationError",
    "VoltageScalingError",
    "allocate_cores",
    "average_power",
    "compute_mobilities",
    "evaluate_mapping",
    "generate_problem",
    "load_suite",
    "mode_dynamic_power",
    "mode_static_power",
    "scale_schedule",
    "schedule_mode",
    "smartphone_problem",
    "suite_problem",
    "synthesize",
    "transform_parallel_tasks",
    "validate_implementation",
]
