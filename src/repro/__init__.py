"""repro — energy-efficient co-synthesis for multi-mode embedded systems.

A faithful, pure-Python reproduction of

    M. T. Schmitz, B. M. Al-Hashimi, P. Eles:
    "A Co-Design Methodology for Energy-Efficient Multi-Mode Embedded
    Systems with Consideration of Mode Execution Probabilities",
    Design, Automation and Test in Europe (DATE), 2003.

The library models multi-mode applications as operational mode state
machines (modes = task graphs, transitions with time limits, mode
execution probabilities), heterogeneous target architectures
(GPPs/ASIPs/ASICs/FPGAs with optional dynamic voltage scaling, buses),
and synthesises energy-minimal implementations with a genetic mapping
algorithm, list scheduling, hardware core allocation and discrete
voltage selection — including the paper's parallel-core-to-sequential
DVS transformation for hardware components.

Quick start (the stable facade — see :mod:`repro.api`)::

    from repro import SynthesisConfig, DvsMethod, load_problem, synthesize

    problem = load_problem("smartphone")
    result = synthesize(
        problem,
        SynthesisConfig(use_probabilities=True, dvs=DvsMethod.GRADIENT),
    )
    print(result.best.summary())

Long experiment campaigns (resumable, observable)::

    from repro import run_campaign

    campaign = run_campaign(
        {"name": "table1", "instances": ["mul1", "mul2"], "runs": 5},
        run_dir="runs/table1",   # re-running resumes from checkpoints
    )
"""

from repro.errors import (
    AdmissionError,
    ArchitectureError,
    CampaignError,
    MappingError,
    ReproError,
    SchedulingError,
    ServerError,
    SpecificationError,
    SynthesisError,
    TechnologyError,
    VoltageScalingError,
    WorkerPoolError,
)
from repro.specification import (
    CommEdge,
    Mode,
    ModeTransition,
    OMSM,
    Task,
    TaskGraph,
)
from repro.architecture import (
    Architecture,
    CommunicationLink,
    PEKind,
    ProcessingElement,
    TaskImplementation,
    TechnologyLibrary,
)
from repro.problem import Problem
from repro.mapping import (
    CoreAllocation,
    Implementation,
    ImplementationMetrics,
    MappingString,
    allocate_cores,
)
from repro.scheduling import ModeSchedule, compute_mobilities, schedule_mode
from repro.dvs import scale_schedule, transform_parallel_tasks
from repro.power import average_power, mode_dynamic_power, mode_static_power
from repro.synthesis import (
    MultiModeSynthesizer,
    SynthesisConfig,
    SynthesisResult,
    evaluate_mapping,
    synthesize,
)
from repro.synthesis.config import DvsMethod
from repro.benchgen import (
    MultiModeSpec,
    generate_problem,
    load_suite,
    smartphone_problem,
    suite_problem,
)
from repro.validation import ValidationError, validate_implementation
from repro.runtime import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    JobSpec,
)
from repro.adaptive import (
    AdaptationConfig,
    AdaptationController,
    AdaptationReport,
    DesignLibrary,
    DesignRecord,
    DriftConfig,
    DriftDetector,
    PsiEstimator,
)
from repro.api import (
    adapt_online,
    load_problem,
    problem_names,
    resume_campaign,
    run_campaign,
    serve_campaigns,
    submit_job,
)

__version__ = "1.1.0"

__all__ = [
    "AdaptationConfig",
    "AdmissionError",
    "ServerError",
    "AdaptationController",
    "AdaptationReport",
    "Architecture",
    "ArchitectureError",
    "CampaignError",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "JobSpec",
    "WorkerPoolError",
    "CommEdge",
    "CommunicationLink",
    "CoreAllocation",
    "DesignLibrary",
    "DesignRecord",
    "DriftConfig",
    "DriftDetector",
    "DvsMethod",
    "Implementation",
    "ImplementationMetrics",
    "MappingError",
    "MappingString",
    "Mode",
    "ModeSchedule",
    "ModeTransition",
    "MultiModeSpec",
    "MultiModeSynthesizer",
    "OMSM",
    "PEKind",
    "Problem",
    "ProcessingElement",
    "PsiEstimator",
    "ReproError",
    "SchedulingError",
    "SpecificationError",
    "SynthesisConfig",
    "SynthesisError",
    "SynthesisResult",
    "Task",
    "TaskGraph",
    "TaskImplementation",
    "TechnologyError",
    "TechnologyLibrary",
    "ValidationError",
    "VoltageScalingError",
    "adapt_online",
    "allocate_cores",
    "average_power",
    "compute_mobilities",
    "evaluate_mapping",
    "generate_problem",
    "load_problem",
    "load_suite",
    "mode_dynamic_power",
    "mode_static_power",
    "problem_names",
    "resume_campaign",
    "run_campaign",
    "scale_schedule",
    "schedule_mode",
    "serve_campaigns",
    "smartphone_problem",
    "submit_job",
    "suite_problem",
    "synthesize",
    "transform_parallel_tasks",
    "validate_implementation",
]
