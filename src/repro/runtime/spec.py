"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a full experiment campaign — the
cartesian product of problem instances × DVS methods × probability
policies × run seeds, sharing one base :class:`SynthesisConfig` — and
expands it into an ordered queue of :class:`JobSpec` jobs.  The spec
round-trips through JSON (``save``/``load``), which is what makes a
campaign resumable: the run directory carries its own ``spec.json``,
so ``repro-mm campaign --resume <dir>`` needs nothing else.

Seed pairing follows the paper's protocol: run ``i`` of *every*
probability policy on an instance uses seed ``base_seed + i``, so the
with/without-Ψ comparison is paired (both GAs start from the same
initial population and differ only in the fitness weighting).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Union

from repro.errors import CampaignError
from repro.synthesis.config import DvsMethod, SynthesisConfig

PathLike = Union[str, pathlib.Path]

#: Schema version of serialised specs; bump on incompatible change.
SPEC_VERSION = 1


@dataclass(frozen=True)
class JobSpec:
    """One synthesis run: an instance × DVS × policy × seed cell."""

    instance: str
    dvs: DvsMethod
    use_probabilities: bool
    seed: int

    @property
    def job_id(self) -> str:
        """Stable, filesystem-safe identifier used for files + events."""
        policy = "prob" if self.use_probabilities else "noprob"
        return f"{self.instance}-{self.dvs.value}-{policy}-s{self.seed}"

    def configure(self, base: SynthesisConfig) -> SynthesisConfig:
        """The job's full config: the campaign base plus this cell."""
        return base.with_updates(
            dvs=self.dvs,
            use_probabilities=self.use_probabilities,
            seed=self.seed,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "instance": self.instance,
            "dvs": self.dvs.value,
            "use_probabilities": self.use_probabilities,
            "seed": self.seed,
        }


@dataclass
class CampaignSpec:
    """The declarative description of one experiment campaign.

    Attributes
    ----------
    name:
        Human-readable campaign name (appears in events and reports).
    instances:
        Problem names resolvable by the runner's problem loader
        (default: :mod:`repro.benchgen.registry`).
    dvs_methods / probability_settings:
        The method and policy axes of the product.  The defaults
        reproduce the paper's comparison: no DVS, both policies.
    runs / base_seed:
        ``runs`` repetitions per cell, seeded ``base_seed + run``.
    config:
        Base synthesis configuration shared by every job.
    checkpoint_every:
        Persist a GA checkpoint every this many generations (≥ 1).
    max_retries / retry_backoff:
        Bounded retry for jobs whose worker pool died: up to
        ``max_retries`` further attempts, sleeping
        ``retry_backoff × 2**attempt`` seconds before each.
    """

    name: str
    instances: List[str]
    dvs_methods: List[DvsMethod] = field(
        default_factory=lambda: [DvsMethod.NONE]
    )
    probability_settings: List[bool] = field(
        default_factory=lambda: [False, True]
    )
    runs: int = 1
    base_seed: int = 0
    config: SynthesisConfig = field(default_factory=SynthesisConfig)
    checkpoint_every: int = 5
    max_retries: int = 2
    retry_backoff: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign name must be non-empty")
        if not self.instances:
            raise CampaignError("campaign needs at least one instance")
        if len(set(self.instances)) != len(self.instances):
            raise CampaignError("duplicate instances in campaign spec")
        self.dvs_methods = [
            m if isinstance(m, DvsMethod) else DvsMethod(m)
            for m in self.dvs_methods
        ]
        if not self.dvs_methods:
            raise CampaignError("campaign needs at least one DVS method")
        if len(set(self.dvs_methods)) != len(self.dvs_methods):
            raise CampaignError("duplicate DVS methods in campaign spec")
        if not self.probability_settings:
            raise CampaignError(
                "campaign needs at least one probability setting"
            )
        if len(set(self.probability_settings)) != len(
            self.probability_settings
        ):
            raise CampaignError(
                "duplicate probability settings in campaign spec"
            )
        if self.runs < 1:
            raise CampaignError("runs must be at least 1")
        if self.checkpoint_every < 1:
            raise CampaignError("checkpoint_every must be at least 1")
        if self.max_retries < 0:
            raise CampaignError("max_retries must be non-negative")
        if self.retry_backoff < 0:
            raise CampaignError("retry_backoff must be non-negative")

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def jobs(self) -> List[JobSpec]:
        """The ordered job queue (deterministic expansion order)."""
        queue: List[JobSpec] = []
        for instance in self.instances:
            for dvs in self.dvs_methods:
                for run in range(self.runs):
                    for use_probabilities in self.probability_settings:
                        queue.append(
                            JobSpec(
                                instance=instance,
                                dvs=dvs,
                                use_probabilities=use_probabilities,
                                seed=self.base_seed + run,
                            )
                        )
        return queue

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "instances": list(self.instances),
            "dvs_methods": [m.value for m in self.dvs_methods],
            "probability_settings": list(self.probability_settings),
            "runs": self.runs,
            "base_seed": self.base_seed,
            "config": self.config.to_dict(),
            "checkpoint_every": self.checkpoint_every,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        values = dict(data)
        version = values.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise CampaignError(
                f"unsupported campaign spec version {version!r} "
                f"(expected {SPEC_VERSION})"
            )
        known = {
            "name",
            "instances",
            "dvs_methods",
            "probability_settings",
            "runs",
            "base_seed",
            "config",
            "checkpoint_every",
            "max_retries",
            "retry_backoff",
        }
        unknown = sorted(set(values) - known)
        if unknown:
            raise CampaignError(
                f"unknown campaign spec keys: {unknown}; valid keys are "
                f"{sorted(known)}"
            )
        if "config" in values and not isinstance(
            values["config"], SynthesisConfig
        ):
            values["config"] = SynthesisConfig.from_dict(values["config"])
        try:
            return cls(**values)
        except TypeError as exc:
            raise CampaignError(f"invalid campaign spec: {exc}") from exc

    def save(self, path: PathLike) -> None:
        path = pathlib.Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: PathLike) -> "CampaignSpec":
        path = pathlib.Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise CampaignError(f"no campaign spec at {path}") from None
        except json.JSONDecodeError as exc:
            raise CampaignError(
                f"campaign spec {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data)
