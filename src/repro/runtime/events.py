"""The structured JSONL run-event stream.

Every campaign writes an append-only ``events.jsonl`` into its run
directory: one JSON object per line, each carrying at least an
``event`` kind, a ``seq`` number and a wall-clock ``ts``.  The stream
is the campaign's authoritative record — `repro.analysis.reporting`
can re-aggregate the paper's Table 1/2/3 layouts from it without
re-running anything, and a monitoring process can tail it live.

Event kinds emitted by the runner:

``campaign_started``
    name, total job count, pending job count (on resume).
``job_started``
    job identity (instance/dvs/policy/seed), attempt number and the
    generation the job resumes from (0 = fresh start).
``generation``
    per-generation progress: generation index, best fitness so far,
    cumulative evaluations.
``checkpointed``
    a GA snapshot was persisted for the job.
``job_retried``
    a worker-pool death was caught; the job will be retried after the
    reported backoff.
``job_finished``
    final metrics of one job: power, cpu_time, feasibility,
    generations, evaluations, plus the ``SynthesisResult.perf``
    counters.
``job_failed``
    the job exhausted its retries or raised a non-retryable error.
``campaign_finished``
    completed/failed totals.

Writes are flushed line-by-line so the log survives a ``kill -9`` of
the campaign process (the OS page cache holds flushed lines even when
the process dies).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.errors import CampaignError

PathLike = Union[str, pathlib.Path]

#: File name of the event stream inside a campaign run directory.
EVENTS_FILENAME = "events.jsonl"


class EventLog:
    """Append-only JSONL event writer with monotonic sequence numbers."""

    def __init__(
        self,
        path: PathLike,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = pathlib.Path(path)
        self._clock = clock
        self._seq = self._next_seq()
        self._trim_torn_tail()
        self._handle = open(self.path, "a", encoding="utf-8")

    def _trim_torn_tail(self) -> None:
        """Drop a partially written final line before appending.

        Without the trim, the next emit would glue its record onto the
        torn tail of a killed writer, turning a harmless skipped tail
        into real mid-file corruption once further events follow.  The
        torn tail carries no complete event by construction, so
        truncating it loses nothing.
        """
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size == 0:
            return
        with open(self.path, "rb+") as handle:
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            # Walk back in chunks to the last newline (file offset of
            # the torn line's start); no newline at all means the whole
            # file is the torn line.
            end = size
            chunk = 8192
            while end > 0:
                take = min(chunk, end)
                handle.seek(end - take)
                data = handle.read(take)
                newline = data.rfind(b"\n")
                if newline != -1:
                    handle.truncate(end - take + newline + 1)
                    return
                end -= take
            handle.truncate(0)

    def _next_seq(self) -> int:
        """Continue numbering after the last event already on disk.

        Reads only the *tail* of the stream — seeking backwards in
        growing chunks for the last complete line — so reopening the
        log of a long campaign (every retry and resume does) stays
        O(1) instead of JSON-parsing the entire file.  A torn final
        line (crash mid-write) is skipped, like :func:`iter_events`
        does.
        """
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return 0
        chunk = 8192
        buffer = b""
        position = size
        with open(self.path, "rb") as handle:
            while position > 0:
                take = min(chunk, position)
                position -= take
                handle.seek(position)
                buffer = handle.read(take) + buffer
                seq = self._last_seq_in(buffer, complete=position == 0)
                if seq is not None:
                    return seq + 1
                chunk *= 2
        return 0

    @staticmethod
    def _last_seq_in(buffer: bytes, complete: bool) -> Optional[int]:
        """Sequence number of the last parseable event in ``buffer``.

        ``complete`` says the buffer starts at the beginning of the
        file; otherwise its first line may be cut mid-way by the chunk
        boundary and cannot be trusted.  Returns ``None`` when no
        complete event line is present (caller reads further back).
        """
        lines = buffer.split(b"\n")
        candidates = lines if complete else lines[1:]
        for raw in reversed(candidates):
            stripped = raw.strip()
            if not stripped:
                continue
            try:
                event = json.loads(stripped.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                # The torn tail of a killed writer; look further back.
                continue
            if isinstance(event, dict):
                return int(event.get("seq", -1))
        return None

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the record as written."""
        record: Dict[str, Any] = {
            "seq": self._seq,
            "ts": round(self._clock(), 6),
            "event": event,
        }
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=False) + "\n")
        self._handle.flush()
        self._seq += 1
        return record

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def iter_events(path: PathLike) -> Iterator[Dict[str, Any]]:
    """Yield events from a JSONL stream, tolerating a torn final line.

    A crash can leave a partially written last line; that tail is
    skipped (it carries no completed event by construction).  Blank or
    whitespace-only lines — including any that follow the torn tail,
    e.g. a trailing newline flushed by a dying writer — never count as
    events.  A torn line followed by a further *non-empty* line means
    real corruption and raises.
    """
    path = pathlib.Path(path)
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        raise CampaignError(f"no event stream at {path}") from None
    with handle:
        pending_error: Optional[str] = None
        for line_number, line in enumerate(handle, 1):
            stripped = line.strip()
            if not stripped:
                continue
            if pending_error is not None:
                raise CampaignError(pending_error)
            try:
                yield json.loads(stripped)
            except json.JSONDecodeError:
                # Only legal as the last non-empty line (torn write).
                pending_error = (
                    f"corrupt event at {path}:{line_number}: "
                    f"{stripped[:80]!r}"
                )


def read_events(path: PathLike) -> List[Dict[str, Any]]:
    """All events of a stream, in order."""
    return list(iter_events(path))


def events_path(run_dir: PathLike) -> pathlib.Path:
    return pathlib.Path(run_dir) / EVENTS_FILENAME
