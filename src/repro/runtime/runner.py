"""The resilient campaign runner.

:class:`CampaignRunner` executes a :class:`~repro.runtime.spec.CampaignSpec`
as an ordered queue of synthesis jobs on top of the evaluation engine:

* **Durable progress** — every job checkpoints its GA state every
  ``checkpoint_every`` generations (atomic file writes), and finished
  jobs persist a result record.  Re-running the same run directory
  (``repro-mm campaign --resume <dir>``) skips completed jobs and
  continues interrupted ones *bit-identically* from their last
  snapshot — evaluation is a pure function of the genome, and the
  snapshot carries the RNG state, so the replay takes the exact path
  the uninterrupted run would have taken.
* **Bounded retry with backoff** — jobs run with
  ``pool_failure_mode="raise"``, so a died worker pool surfaces as
  :class:`~repro.errors.WorkerPoolError` instead of silently falling
  back to serial evaluation; the runner retries such jobs up to
  ``max_retries`` times, sleeping ``retry_backoff × 2**attempt``
  between attempts and resuming from the latest checkpoint.
* **Structured observability** — every state change is appended to the
  run directory's ``events.jsonl`` (see :mod:`repro.runtime.events`);
  the final ``job_finished`` events carry enough (power, CPU time,
  feasibility, perf counters) for
  :func:`repro.analysis.reporting.results_from_events` to rebuild the
  paper's comparison tables without re-running anything.  On exit
  (finished *or* interrupted) the runner also exports a machine-
  readable ``run_summary.json`` (see :mod:`repro.obs.summary`) and
  campaign-level counters/gauges land in the process-global metrics
  registry (:mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import contextlib
import pathlib
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import CampaignError, ReproError, WorkerPoolError
from repro.obs.metrics import REGISTRY
from repro.obs.summary import build_run_summary, write_run_summary
from repro.problem import Problem
from repro.runtime import checkpoint as ckpt
from repro.runtime.events import EventLog, events_path, read_events
from repro.runtime.spec import CampaignSpec, JobSpec
from repro.synthesis.cosynthesis import MultiModeSynthesizer
from repro.synthesis.state import GAState
from repro.validation import ValidationError, validate_implementation

PathLike = Union[str, pathlib.Path]

#: Result-record schema version; bump on incompatible change.
RESULT_VERSION = 1


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Convert SIGTERM into ``KeyboardInterrupt`` for the enclosed block.

    A supervised campaign process (a server worker subprocess, a
    systemd unit, a container being stopped) is told to go away with
    SIGTERM, not Ctrl-C.  Routing it through the same interrupt path
    gives SIGTERM the identical graceful shutdown: the latest
    checkpoint is already durable, the ``campaign_interrupted`` event
    is emitted and the best-effort ``run_summary.json`` export fires.
    Signal handlers can only be installed from the main thread; from
    any other thread the campaign runs with the process default
    behaviour, unchanged.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def raise_interrupt(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, raise_interrupt)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


@dataclass
class JobResult:
    """The persisted outcome of one campaign job."""

    job_id: str
    instance: str
    modes: int
    dvs: str
    use_probabilities: bool
    seed: int
    power: float
    cpu_time: float
    feasible: bool
    generations: int
    evaluations: int
    history: List[float] = field(default_factory=list)
    best_genes: List[str] = field(default_factory=list)
    attempts: int = 1
    resumed_from: int = 0
    perf: Dict[str, Any] = field(default_factory=dict)
    #: Per-mode power breakdown ``{mode: {"dynamic": W, "static": W}}``
    #: of the winning design — the vector the adaptive design library
    #: re-scores under arbitrary Ψ (Equation 1 is linear in Ψ).
    mode_powers: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": RESULT_VERSION,
            "job_id": self.job_id,
            "instance": self.instance,
            "modes": self.modes,
            "dvs": self.dvs,
            "use_probabilities": self.use_probabilities,
            "seed": self.seed,
            "power": self.power,
            "cpu_time": self.cpu_time,
            "feasible": self.feasible,
            "generations": self.generations,
            "evaluations": self.evaluations,
            "history": list(self.history),
            "best_genes": list(self.best_genes),
            "attempts": self.attempts,
            "resumed_from": self.resumed_from,
            "perf": dict(self.perf),
            "mode_powers": {
                mode: dict(entry)
                for mode, entry in self.mode_powers.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        values = dict(data)
        # Results written before the field existed load with an empty
        # breakdown rather than failing (additive schema change).
        values.setdefault("mode_powers", {})
        version = values.pop("version", RESULT_VERSION)
        if version != RESULT_VERSION:
            raise CampaignError(
                f"unsupported job result version {version!r}"
            )
        return cls(**values)


@dataclass
class CampaignResult:
    """Everything a finished (or partially failed) campaign produced."""

    spec: CampaignSpec
    run_dir: pathlib.Path
    results: Dict[str, JobResult] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return len(self.results)

    @property
    def failed(self) -> int:
        return len(self.failures)

    def job_results(self) -> List[JobResult]:
        """Results in queue order (completed jobs only)."""
        return list(self.results.values())


class CampaignRunner:
    """Executes one campaign spec against one run directory.

    Parameters
    ----------
    spec / run_dir:
        The campaign and its durable state directory.  An existing run
        directory must carry the *same* spec; partially executed
        campaigns continue where they stopped.
    problem_loader:
        ``name -> Problem`` resolver; defaults to the benchmark
        registry.  Experiment drivers inject ad-hoc problems this way.
    on_event:
        Optional callback receiving every event record right after it
        is appended to the JSONL stream (live progress display).
    sleep:
        Injected for tests; the retry backoff sleeper.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        run_dir: PathLike,
        problem_loader: Optional[Callable[[str], Problem]] = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.spec = spec
        self.run_dir = ckpt.prepare_run_dir(run_dir)
        if problem_loader is None:
            from repro.benchgen import registry

            problem_loader = registry.get
        self._problem_loader = problem_loader
        self._on_event = on_event
        self._sleep = sleep
        self._problems: Dict[str, Problem] = {}
        self._persist_spec()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _persist_spec(self) -> None:
        path = ckpt.spec_path(self.run_dir)
        if path.exists():
            existing = CampaignSpec.load(path)
            if existing.to_dict() != self.spec.to_dict():
                raise CampaignError(
                    f"run directory {self.run_dir} already holds a "
                    f"different campaign spec; use a fresh directory or "
                    f"resume with the stored spec"
                )
        else:
            self.spec.save(path)

    def _problem(self, instance: str) -> Problem:
        if instance not in self._problems:
            try:
                self._problems[instance] = self._problem_loader(instance)
            except KeyError as exc:
                raise CampaignError(
                    f"campaign references unknown instance "
                    f"{instance!r}: {exc.args[0] if exc.args else exc}"
                ) from exc
        return self._problems[instance]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute (or continue) the campaign; returns all results.

        Individual job failures do not abort the campaign — they are
        recorded, reported in events, and surfaced on
        :attr:`CampaignResult.failures`.  ``KeyboardInterrupt`` *does*
        abort, after the interrupted job's latest checkpoint is
        already on disk; resuming later continues bit-identically.
        SIGTERM (supervisors, server worker slots, container stops)
        takes the same graceful path when the campaign runs on the
        main thread.
        """
        queue = self.spec.jobs()
        outcome = CampaignResult(spec=self.spec, run_dir=self.run_dir)
        with _sigterm_as_interrupt(), EventLog(
            events_path(self.run_dir)
        ) as events:
            pending = [
                job
                for job in queue
                if ckpt.load_result(self.run_dir, job.job_id) is None
            ]
            remaining = len(pending)
            REGISTRY.set_gauge("campaign_jobs_pending", remaining)
            self._emit(
                events,
                "campaign_started",
                campaign=self.spec.name,
                total_jobs=len(queue),
                pending_jobs=len(pending),
            )
            try:
                for job in queue:
                    stored = ckpt.load_result(self.run_dir, job.job_id)
                    if stored is not None:
                        result = JobResult.from_dict(stored)
                        outcome.results[job.job_id] = result
                        REGISTRY.inc("campaign_jobs_skipped_total")
                        self._emit(
                            events,
                            "job_skipped",
                            job_id=job.job_id,
                            reason="already complete",
                        )
                        continue
                    try:
                        result = self._run_job(job, events)
                    except (ReproError, ValidationError) as exc:
                        outcome.failures[job.job_id] = str(exc)
                        REGISTRY.inc("campaign_jobs_failed_total")
                        self._emit(
                            events,
                            "job_failed",
                            job_id=job.job_id,
                            error=str(exc),
                        )
                        continue
                    finally:
                        remaining -= 1
                        REGISTRY.set_gauge(
                            "campaign_jobs_pending", remaining
                        )
                    outcome.results[job.job_id] = result
            except KeyboardInterrupt:
                self._emit(
                    events,
                    "campaign_interrupted",
                    campaign=self.spec.name,
                    completed_jobs=len(outcome.results),
                )
                self._export_summary(outcome, interrupted=True)
                raise
            self._emit(
                events,
                "campaign_finished",
                campaign=self.spec.name,
                completed_jobs=len(outcome.results),
                failed_jobs=len(outcome.failures),
            )
            self._export_summary(outcome, interrupted=False)
        return outcome

    def _export_summary(
        self, outcome: CampaignResult, interrupted: bool
    ) -> None:
        """Write ``run_summary.json`` next to the event stream.

        Best-effort on the interrupt path — a summary problem must not
        mask the ``KeyboardInterrupt`` already propagating.
        """
        try:
            events = read_events(events_path(self.run_dir))
            summary = build_run_summary(
                campaign=self.spec.name,
                total_jobs=len(self.spec.jobs()),
                job_results={
                    job_id: result.to_dict()
                    for job_id, result in outcome.results.items()
                },
                failures=dict(outcome.failures),
                events=events,
                metrics=REGISTRY.to_dict(),
                interrupted=interrupted,
            )
            write_run_summary(self.run_dir, summary)
        except Exception:
            if not interrupted:
                raise

    def _emit(
        self, events: EventLog, kind: str, **fields: Any
    ) -> Dict[str, Any]:
        record = events.emit(kind, **fields)
        if self._on_event is not None:
            self._on_event(record)
        return record

    def _run_job(self, job: JobSpec, events: EventLog) -> JobResult:
        problem = self._problem(job.instance)
        config = job.configure(self.spec.config).with_updates(
            pool_failure_mode="raise"
        )
        attempts = self.spec.max_retries + 1
        first_resumed_from = 0
        job_started = time.perf_counter()
        for attempt in range(attempts):
            state = ckpt.load_checkpoint(self.run_dir, job.job_id, config)
            resumed_from = state.generation if state is not None else 0
            if attempt == 0:
                first_resumed_from = resumed_from
            self._emit(
                events,
                "job_started",
                job_id=job.job_id,
                instance=job.instance,
                dvs=job.dvs.value,
                use_probabilities=job.use_probabilities,
                seed=job.seed,
                attempt=attempt + 1,
                resumed_from=resumed_from,
            )

            def on_generation(snapshot: GAState) -> None:
                self._emit(
                    events,
                    "generation",
                    job_id=job.job_id,
                    generation=snapshot.generation,
                    best_fitness=(
                        snapshot.best_fitness
                        if snapshot.best_genes is not None
                        else None
                    ),
                    evaluations=snapshot.evaluations,
                )
                # The final generation always checkpoints, whatever the
                # cadence: a crash between the last periodic snapshot
                # and job completion must not lose finished work.
                if (
                    snapshot.generation % self.spec.checkpoint_every == 0
                    or snapshot.generation >= config.max_generations
                ):
                    ckpt.write_checkpoint(
                        self.run_dir, job.job_id, snapshot, config
                    )
                    self._emit(
                        events,
                        "checkpointed",
                        job_id=job.job_id,
                        generation=snapshot.generation,
                    )

            try:
                synthesis = MultiModeSynthesizer(problem, config).run(
                    resume=state, on_generation=on_generation
                )
            except WorkerPoolError as exc:
                if attempt + 1 >= attempts:
                    raise
                backoff = self.spec.retry_backoff * (2**attempt)
                REGISTRY.inc("campaign_job_retries_total")
                self._emit(
                    events,
                    "job_retried",
                    job_id=job.job_id,
                    attempt=attempt + 1,
                    backoff_seconds=backoff,
                    error=str(exc),
                )
                if backoff > 0:
                    self._sleep(backoff)
                continue

            validate_implementation(synthesis.best)
            converged = (
                synthesis.generations < config.max_generations
            )
            result = JobResult(
                job_id=job.job_id,
                instance=job.instance,
                modes=len(problem.omsm),
                dvs=job.dvs.value,
                use_probabilities=job.use_probabilities,
                seed=job.seed,
                power=synthesis.average_power,
                cpu_time=synthesis.cpu_time,
                feasible=synthesis.is_feasible,
                generations=synthesis.generations,
                evaluations=synthesis.evaluations,
                history=list(synthesis.history),
                best_genes=list(synthesis.best.mapping.genes),
                attempts=attempt + 1,
                resumed_from=first_resumed_from,
                perf=(
                    synthesis.perf.to_dict()
                    if synthesis.perf is not None
                    else {}
                ),
                mode_powers={
                    mode: dict(entry)
                    for mode, entry in synthesis.mode_powers.items()
                },
            )
            ckpt.write_result(self.run_dir, job.job_id, result.to_dict())
            ckpt.clear_checkpoint(self.run_dir, job.job_id)
            REGISTRY.inc("campaign_jobs_finished_total")
            REGISTRY.observe(
                "campaign_job_seconds",
                time.perf_counter() - job_started,
            )
            self._emit(
                events,
                "job_finished",
                job_id=job.job_id,
                instance=job.instance,
                modes=result.modes,
                dvs=result.dvs,
                use_probabilities=result.use_probabilities,
                seed=result.seed,
                power=result.power,
                cpu_time=result.cpu_time,
                feasible=result.feasible,
                converged=converged,
                generations=result.generations,
                evaluations=result.evaluations,
                attempts=result.attempts,
                perf=result.perf,
                mode_powers=result.mode_powers,
            )
            return result
        raise AssertionError("unreachable: retry loop exits via return/raise")


# ----------------------------------------------------------------------
# Convenience entry points
# ----------------------------------------------------------------------


def run_campaign(
    spec: CampaignSpec,
    run_dir: PathLike,
    problem_loader: Optional[Callable[[str], Problem]] = None,
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> CampaignResult:
    """Execute ``spec`` against ``run_dir`` (creating it as needed)."""
    return CampaignRunner(
        spec, run_dir, problem_loader=problem_loader, on_event=on_event
    ).run()


def resume_campaign(
    run_dir: PathLike,
    problem_loader: Optional[Callable[[str], Problem]] = None,
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> CampaignResult:
    """Continue the campaign stored in ``run_dir``.

    Loads the directory's ``spec.json`` and re-runs the queue:
    completed jobs are skipped, checkpointed jobs resume
    bit-identically from their latest snapshot.
    """
    spec = CampaignSpec.load(ckpt.spec_path(run_dir))
    return CampaignRunner(
        spec, run_dir, problem_loader=problem_loader, on_event=on_event
    ).run()
