"""The resilient experiment-campaign runtime.

Declarative campaign specs (:mod:`repro.runtime.spec`), durable
checkpoints and results (:mod:`repro.runtime.checkpoint`), the
structured JSONL event stream (:mod:`repro.runtime.events`) and the
retrying, resumable runner itself (:mod:`repro.runtime.runner`).
"""

from repro.runtime.spec import CampaignSpec, JobSpec
from repro.runtime.events import EventLog, events_path, iter_events, read_events
from repro.runtime.checkpoint import (
    checkpoint_path,
    clear_checkpoint,
    load_checkpoint,
    load_result,
    prepare_run_dir,
    result_path,
    spec_path,
    write_checkpoint,
    write_result,
)
from repro.runtime.runner import (
    CampaignResult,
    CampaignRunner,
    JobResult,
    resume_campaign,
    run_campaign,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "EventLog",
    "JobResult",
    "JobSpec",
    "checkpoint_path",
    "clear_checkpoint",
    "events_path",
    "iter_events",
    "load_checkpoint",
    "load_result",
    "prepare_run_dir",
    "read_events",
    "result_path",
    "resume_campaign",
    "run_campaign",
    "spec_path",
    "write_checkpoint",
    "write_result",
]
