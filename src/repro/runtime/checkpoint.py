"""Durable per-job checkpoints and results in a campaign run directory.

Layout of a run directory::

    <run_dir>/
        spec.json                  # the CampaignSpec (written once)
        events.jsonl               # structured event stream
        checkpoints/<job_id>.json  # latest GA snapshot per running job
        results/<job_id>.json      # final record per completed job

Checkpoints are written atomically (temp file + ``os.replace``) so a
kill at any instant leaves either the previous or the new snapshot —
never a torn file.  Each checkpoint embeds the job id and the full
synthesis config; on resume both are verified, because silently
resuming a snapshot under a different configuration would break the
bit-identical guarantee.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Optional, Union

from repro.errors import CampaignError
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.state import GAState

PathLike = Union[str, pathlib.Path]

CHECKPOINT_DIRNAME = "checkpoints"
RESULTS_DIRNAME = "results"
SPEC_FILENAME = "spec.json"


def atomic_write_json(path: PathLike, data: Dict[str, Any]) -> None:
    """Write ``data`` as JSON so a kill never leaves a torn file.

    Temp file + ``fsync`` + ``os.replace`` — the write discipline every
    durable artifact of the repo (checkpoints, results, the adaptive
    design library) shares.
    """
    path = pathlib.Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


#: Backward-compatible alias for the historical private name.
_atomic_write_json = atomic_write_json


def _read_json(path: pathlib.Path, what: str) -> Dict[str, Any]:
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise CampaignError(f"corrupt {what} at {path}: {exc}") from exc


def prepare_run_dir(run_dir: PathLike) -> pathlib.Path:
    """Create the run directory skeleton (idempotent)."""
    run_dir = pathlib.Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    (run_dir / CHECKPOINT_DIRNAME).mkdir(exist_ok=True)
    (run_dir / RESULTS_DIRNAME).mkdir(exist_ok=True)
    return run_dir


def spec_path(run_dir: PathLike) -> pathlib.Path:
    return pathlib.Path(run_dir) / SPEC_FILENAME


def checkpoint_path(run_dir: PathLike, job_id: str) -> pathlib.Path:
    return pathlib.Path(run_dir) / CHECKPOINT_DIRNAME / f"{job_id}.json"


def result_path(run_dir: PathLike, job_id: str) -> pathlib.Path:
    return pathlib.Path(run_dir) / RESULTS_DIRNAME / f"{job_id}.json"


# ----------------------------------------------------------------------
# GA checkpoints
# ----------------------------------------------------------------------


def write_checkpoint(
    run_dir: PathLike,
    job_id: str,
    state: GAState,
    config: SynthesisConfig,
) -> pathlib.Path:
    """Atomically persist one GA snapshot for ``job_id``."""
    path = checkpoint_path(run_dir, job_id)
    _atomic_write_json(
        path,
        {
            "job_id": job_id,
            "config": config.to_dict(),
            "state": state.to_dict(),
        },
    )
    return path


def load_checkpoint(
    run_dir: PathLike,
    job_id: str,
    config: Optional[SynthesisConfig] = None,
) -> Optional[GAState]:
    """The latest snapshot for ``job_id``, or ``None`` when absent.

    With ``config`` given, the stored configuration must match it
    exactly — a mismatch (edited spec, different code defaults) raises
    :class:`CampaignError` instead of producing a silently
    non-reproducible resume.
    """
    path = checkpoint_path(run_dir, job_id)
    if not path.exists():
        return None
    data = _read_json(path, "checkpoint")
    if data.get("job_id") != job_id:
        raise CampaignError(
            f"checkpoint {path} belongs to job {data.get('job_id')!r}, "
            f"not {job_id!r}"
        )
    if config is not None and data.get("config") != config.to_dict():
        raise CampaignError(
            f"checkpoint {path} was written under a different synthesis "
            f"configuration; delete it to restart the job from scratch"
        )
    return GAState.from_dict(data["state"])


def clear_checkpoint(run_dir: PathLike, job_id: str) -> None:
    checkpoint_path(run_dir, job_id).unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Job results
# ----------------------------------------------------------------------


def write_result(
    run_dir: PathLike, job_id: str, record: Dict[str, Any]
) -> pathlib.Path:
    path = result_path(run_dir, job_id)
    _atomic_write_json(path, record)
    return path


def load_result(
    run_dir: PathLike, job_id: str
) -> Optional[Dict[str, Any]]:
    path = result_path(run_dir, job_id)
    if not path.exists():
        return None
    return _read_json(path, "job result")
