"""The evaluation engine: decode caching, parallel dispatch, profiling.

The GA outer loop evaluates thousands of independent mapping candidates
per run; this package makes that hot path fast without changing a single
result.  It provides three cooperating layers:

* :mod:`repro.engine.decode_cache` — everything that depends only on the
  problem (implementation tables, adjacency, feasible links, voltage
  tables) is computed once per process in a :class:`DecodeContext` and
  shared by all candidate evaluations.
* :mod:`repro.engine.parallel` — a :class:`ParallelEvaluator` dispatches
  each generation's unique, uncached genomes to a ``multiprocessing``
  pool (falling back to in-process evaluation when ``jobs == 1`` or the
  pool dies).  Results are bit-identical to serial evaluation.
* :mod:`repro.engine.profile` — lightweight per-phase timers and the
  :class:`PerfStats` summary exposed on ``SynthesisResult.perf``.
"""

from repro.engine.decode_cache import DecodeContext, context_for
from repro.engine.parallel import ParallelEvaluator
from repro.engine.profile import PROFILER, PerfStats, PhaseProfiler
from repro.engine.records import EvalRecord, evaluate_genes

__all__ = [
    "DecodeContext",
    "context_for",
    "ParallelEvaluator",
    "PROFILER",
    "PerfStats",
    "PhaseProfiler",
    "EvalRecord",
    "evaluate_genes",
]
