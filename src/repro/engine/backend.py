"""The evaluation-backend protocol behind the generation loop.

The :class:`~repro.synthesis.driver.GenerationDriver` never touches a
pool directly: it submits genome batches to an
:class:`EvaluationBackend` and drains records back, and the backend
decides *where* they are computed — in-process
(:class:`SerialBackend`), on the barrier or work-stealing process pools
(:class:`PooledBackend`), or, later, on a remote shard set.  Every
backend is bit-identical for the same genomes, because evaluation is a
pure function of the genome; backends differ only in wall-clock and
accounting.

The protocol is deliberately submit/drain shaped rather than a single
``evaluate(batch)`` call: it leaves room for backends that overlap the
parent's breeding work with evaluation — which is exactly what
:meth:`EvaluationBackend.speculate` does today on the async pool, and
what a distributed backend would do with real asynchrony.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.engine.parallel import ParallelEvaluator, evaluate_inprocess
from repro.engine.profile import PerfStats
from repro.engine.records import EvalRecord
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.synthesis.config import SynthesisConfig


class EvaluationBackend(ABC):
    """Where one synthesis run's genome batches get evaluated.

    Usage protocol, per batch: :meth:`submit` a deduplicated list of
    genomes, then :meth:`drain` their records in submission order.
    One batch may be outstanding at a time.  :meth:`speculate` offers
    *predicted* future genomes the backend may evaluate early (or
    ignore — the default); a prediction the driver abandons is cleaned
    up by :meth:`cancel_speculation`.  :meth:`finalize_perf` folds the
    backend's accounting into the run's :class:`PerfStats`;
    :meth:`close` / :meth:`terminate` end service.
    """

    #: Configured worker count (1 = in-process).
    jobs: int = 1

    @abstractmethod
    def submit(self, genomes: Sequence[MappingString]) -> None:
        """Accept one batch of genomes for evaluation."""

    @abstractmethod
    def drain(self) -> List[EvalRecord]:
        """Records of the submitted batch, in submission order."""

    @property
    def supports_speculation(self) -> bool:
        """Whether :meth:`speculate` can do anything useful right now."""
        return False

    def speculate(self, genomes: Sequence[MappingString]) -> int:
        """Offer predicted next-batch genomes for early evaluation.

        Returns the number of speculative evaluations actually issued;
        backends without idle capacity to fill simply return 0.
        """
        return 0

    def cancel_speculation(self) -> None:
        """Abandon any outstanding or buffered speculative work."""

    def finalize_perf(self, perf: PerfStats) -> None:
        """Fold this backend's accounting into a run summary."""

    def close(self) -> None:
        """Graceful shutdown (idempotent)."""

    def terminate(self) -> None:
        """Hard stop for abnormal exits (idempotent)."""


class SerialBackend(EvaluationBackend):
    """In-process evaluation — the reference backend.

    Books its work through the shared
    :func:`~repro.engine.parallel.evaluate_inprocess` helper, so the
    ``inprocess_*`` figures mean the same thing they mean under a
    :class:`PooledBackend` that fell back.
    """

    def __init__(self, problem: Problem, config: SynthesisConfig) -> None:
        self.problem = problem
        self.config = config
        self.jobs = 1
        self.inprocess_evaluations = 0
        self.inprocess_eval_seconds = 0.0
        self._pending: Optional[List[MappingString]] = None

    def submit(self, genomes: Sequence[MappingString]) -> None:
        assert self._pending is None, "one batch may be outstanding"
        self._pending = list(genomes)

    def drain(self) -> List[EvalRecord]:
        assert self._pending is not None, "nothing submitted"
        genomes, self._pending = self._pending, None
        records, elapsed = evaluate_inprocess(
            self.problem, self.config, genomes
        )
        self.inprocess_evaluations += len(records)
        self.inprocess_eval_seconds += elapsed
        return records

    def finalize_perf(self, perf: PerfStats) -> None:
        perf.inprocess_evaluations += self.inprocess_evaluations
        perf.inprocess_eval_seconds += self.inprocess_eval_seconds


class PooledBackend(EvaluationBackend):
    """Process-pool evaluation via :class:`ParallelEvaluator`.

    Wraps the evaluator rather than replacing it: failure fallback,
    tiny-batch routing, worker phase/metric folding and the
    speculation machinery all live there; this class adapts them to
    the backend protocol and copies the accounting out at the end.
    """

    def __init__(self, problem: Problem, config: SynthesisConfig) -> None:
        self.evaluator = ParallelEvaluator(problem, config)
        self.jobs = self.evaluator.jobs
        self._pending: Optional[List[MappingString]] = None

    def submit(self, genomes: Sequence[MappingString]) -> None:
        assert self._pending is None, "one batch may be outstanding"
        self._pending = list(genomes)

    def drain(self) -> List[EvalRecord]:
        assert self._pending is not None, "nothing submitted"
        genomes, self._pending = self._pending, None
        return self.evaluator.evaluate_batch(genomes)

    @property
    def supports_speculation(self) -> bool:
        return self.evaluator.supports_speculation

    def speculate(self, genomes: Sequence[MappingString]) -> int:
        return self.evaluator.speculate(genomes)

    def cancel_speculation(self) -> None:
        self.evaluator.cancel_speculation()

    def finalize_perf(self, perf: PerfStats) -> None:
        evaluator = self.evaluator
        perf.merge_phase_totals(evaluator.worker_phase_totals)
        perf.batches = evaluator.batches
        perf.parallel_evaluations = evaluator.parallel_evaluations
        perf.pool_busy_seconds = evaluator.pool_busy_seconds
        perf.pool_workers = evaluator.pool_workers
        perf.pool_service_seconds = evaluator.pool_service_seconds
        perf.pool_dispatch_seconds = evaluator.pool_dispatch_seconds
        perf.pool_steals = evaluator.pool_steals
        perf.pool_fallbacks = evaluator.pool_failures
        perf.inprocess_evaluations = evaluator.inprocess_evaluations
        perf.inprocess_eval_seconds = evaluator.inprocess_eval_seconds
        perf.speculation_issued = evaluator.speculation_issued
        perf.speculation_hits = evaluator.speculation_hits
        perf.speculation_discards = evaluator.speculation_discards

    def close(self) -> None:
        self.evaluator.close()

    def terminate(self) -> None:
        self.evaluator.terminate()


def backend_for(
    problem: Problem, config: SynthesisConfig
) -> EvaluationBackend:
    """The backend a configuration asks for: serial or pooled."""
    if config.jobs > 1:
        return PooledBackend(problem, config)
    return SerialBackend(problem, config)
