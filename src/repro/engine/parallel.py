"""Process-pool evaluation of GA candidate batches.

A :class:`ParallelEvaluator` owns a ``multiprocessing`` pool whose
workers are initialised exactly once with the pickled problem parts and
synthesis configuration; each worker rebuilds the :class:`Problem` and
its :class:`~repro.engine.decode_cache.DecodeContext` at startup, so
per-candidate dispatch only ships raw gene tuples out and compact
:class:`~repro.engine.records.EvalRecord` objects back.

Evaluation is a pure function of the genome, so dispatch order cannot
change results: a batch evaluated on ``jobs=N`` workers is bit-identical
to the same batch evaluated serially (the determinism tests pin this).
When ``jobs == 1`` the evaluator runs in-process.

Two pool strategies share this façade.  The default
(``SynthesisConfig.async_pool``) is the work-stealing asynchronous pool
of :mod:`repro.engine.async_pool`: workers pull single genomes from a
shared task queue, results merge as they land, and mode-cache entries
computed by one worker are published to all others.  Disabling it
restores the original per-generation barrier pool (static chunks,
``map_async``, diverging copy-on-write caches) as an ablation oracle —
both strategies produce bit-identical records.

What a *failed* pool
(worker crash, pickling surprise, platform without multiprocessing)
does is governed by ``pool_failure_mode``: ``"fallback"`` degrades to
in-process evaluation — with the failure recorded on
:attr:`ParallelEvaluator.pool_failures` and a :class:`RuntimeWarning`,
never silently — while ``"raise"`` surfaces a
:class:`~repro.errors.WorkerPoolError` so a supervising runtime (the
campaign runner) can retry the job on a fresh pool.
"""

from __future__ import annotations

import math
import multiprocessing
import multiprocessing.pool
import pickle
import time
import warnings
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.async_pool import AsyncWorkStealingPool
from repro.engine.decode_cache import DecodeContext, context_for
from repro.engine.profile import PROFILER, PhaseTotals
from repro.engine.records import (
    EvalRecord,
    evaluate_genes,
    record_from_implementation,
)
from repro.eval.cache import mode_cache_for
from repro.errors import WorkerPoolError
from repro.obs.metrics import REGISTRY, MetricsSnapshot
from repro.problem import Problem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.synthesis.config import SynthesisConfig

# Worker-process globals, populated by _init_worker (spawn) or set in
# the parent before forking (fork start method inherits them for free).
_worker_problem: Optional[Problem] = None
_worker_config = None
_worker_context: Optional[DecodeContext] = None


def _init_worker(payload: bytes) -> None:
    """Rebuild problem + config + decode context inside a pool worker."""
    global _worker_problem, _worker_config, _worker_context
    omsm, architecture, technology, config = pickle.loads(payload)
    _worker_problem = Problem(omsm, architecture, technology)
    _worker_config = config
    _worker_context = (
        DecodeContext.build(_worker_problem) if config.decode_cache else None
    )
    # Forked workers inherit the parent's accumulated phase totals and
    # metrics; deltas shipped back must only cover work done in this
    # process.
    PROFILER.reset()
    REGISTRY.reset()


def _init_forked_worker() -> None:
    """Initialise a fork-start worker: state arrived copy-on-write."""
    PROFILER.reset()
    REGISTRY.reset()


def evaluate_inprocess(
    problem: Problem,
    config: "SynthesisConfig",
    genomes: Sequence[Any],
) -> Tuple[List[EvalRecord], float]:
    """Evaluate mapping strings in the current process, with accounting.

    The one in-process batch path, shared by the serial backend, the
    synthesizer's no-backend evaluation and the parallel evaluator's
    tiny-batch/fallback route — so ``inprocess_*`` accounting and the
    ``engine_inprocess_evaluations_total`` meter mean the same thing
    everywhere.  Takes the :class:`~repro.mapping.encoding.
    MappingString` objects themselves (not gene tuples) to preserve
    their dirty-mode sets for the incremental pipeline.  Returns the
    records and the wall-clock seconds spent.
    """
    from repro.synthesis.evaluator import evaluate_mapping

    context = context_for(problem) if config.decode_cache else None
    started = time.perf_counter()
    records = [
        record_from_implementation(
            evaluate_mapping(problem, genome, config, context)
        )
        for genome in genomes
    ]
    elapsed = time.perf_counter() - started
    REGISTRY.inc(
        "engine_inprocess_evaluations_total", amount=len(records)
    )
    return records, elapsed


def _eval_chunk(
    chunk: Sequence[Tuple[str, ...]],
) -> Tuple[List[EvalRecord], PhaseTotals, MetricsSnapshot, float]:
    """Evaluate one chunk of genomes; returns records + profile/metric deltas."""
    assert _worker_problem is not None and _worker_config is not None
    base = PROFILER.snapshot()
    metrics_base = REGISTRY.snapshot()
    started = time.perf_counter()
    records = [
        evaluate_genes(_worker_problem, genes, _worker_config, _worker_context)
        for genes in chunk
    ]
    busy = time.perf_counter() - started
    return (
        records,
        PROFILER.delta_since(base),
        REGISTRY.delta_since(metrics_base),
        busy,
    )


class ParallelEvaluator:
    """Batched candidate evaluation over an optional process pool.

    Parameters
    ----------
    problem / config:
        The synthesis instance; workers receive both in pickled form.
    jobs:
        Worker count; defaults to ``config.jobs``.  ``1`` means no pool
        is created and batches evaluate in-process.
    failure_mode:
        ``"fallback"`` or ``"raise"``; defaults to
        ``config.pool_failure_mode``.  See the module docstring.
    """

    def __init__(
        self,
        problem: Problem,
        config: "SynthesisConfig",
        jobs: Optional[int] = None,
        failure_mode: Optional[str] = None,
    ) -> None:
        self.problem = problem
        self.config = config
        self.jobs = max(1, jobs if jobs is not None else config.jobs)
        self.failure_mode = (
            failure_mode
            if failure_mode is not None
            else getattr(config, "pool_failure_mode", "fallback")
        )
        if self.failure_mode not in ("fallback", "raise"):
            raise ValueError(
                f"unknown pool failure mode {self.failure_mode!r}"
            )
        self.async_pool = bool(getattr(config, "async_pool", True))
        self.batches = 0
        self.parallel_evaluations = 0
        self.pool_busy_seconds = 0.0
        #: Summed per-batch dispatch windows (work outstanding) — the
        #: capacity basis of the corrected pool utilisation.
        self.pool_dispatch_seconds = 0.0
        self.pool_steals = 0
        self.pool_failures = 0
        #: In-process evaluations (tiny batches, post-fallback batches)
        #: and their wall-clock, booked apart from the pool busy window
        #: so they cannot inflate pool utilisation.
        self.inprocess_evaluations = 0
        self.inprocess_eval_seconds = 0.0
        #: Speculative next-generation evaluation accounting, mirrored
        #: from the async pool so the figures survive a pool retirement.
        self.speculation_issued = 0
        self.speculation_hits = 0
        self.speculation_discards = 0
        self.last_pool_error: Optional[str] = None
        self.worker_phase_totals: Dict[str, Tuple[float, int]] = {}
        #: Workers actually placed in service (0 = never had a pool).
        self.pool_workers = 0
        self._pool = None
        self._async: Optional[AsyncWorkStealingPool] = None
        self._pool_started: Optional[float] = None
        self._pool_service_seconds = 0.0
        if self.jobs > 1:
            if self.async_pool:
                self._async = self._create_async_pool()
            else:
                self._pool = self._create_pool()
            if self._pool is not None or self._async is not None:
                self.pool_workers = self.jobs
                self._pool_started = time.perf_counter()
                REGISTRY.set_gauge("engine_pool_workers", self.jobs)

    @property
    def pool_service_seconds(self) -> float:
        """Wall-clock seconds the pool has been (or was) in service."""
        total = self._pool_service_seconds
        if self._pool_started is not None:
            total += time.perf_counter() - self._pool_started
        return total

    def _stop_service_clock(self) -> None:
        if self._pool_started is not None:
            self._pool_service_seconds += (
                time.perf_counter() - self._pool_started
            )
            self._pool_started = None

    def _record_failure(self, stage: str, exc: BaseException) -> None:
        """Count a pool failure and either warn or raise, per mode."""
        self.pool_failures += 1
        self.last_pool_error = f"{stage}: {exc!r}"
        self._stop_service_clock()
        REGISTRY.inc("engine_pool_failures_total", stage=stage)
        if self.failure_mode == "raise":
            raise WorkerPoolError(
                f"worker pool {stage} failed after "
                f"{self.parallel_evaluations} parallel evaluations: {exc!r}"
            ) from exc
        # The fallback transition is surfaced three ways: the counter
        # below, the pool_workers gauge dropping to zero, and the
        # RuntimeWarning for interactive runs.
        REGISTRY.inc("engine_pool_fallbacks_total")
        REGISTRY.set_gauge("engine_pool_workers", 0)
        warnings.warn(
            f"parallel evaluation pool {stage} failed ({exc!r}); "
            f"continuing with in-process evaluation",
            RuntimeWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _create_pool(self) -> Optional[multiprocessing.pool.Pool]:
        try:
            if multiprocessing.get_start_method() == "fork":
                # Forked workers share the parent's address space
                # copy-on-write: publish the problem, config and the
                # parent's (memoised) decode context as module globals
                # right before forking, and every worker starts with
                # them already built — no pickling, no per-worker
                # Problem/DecodeContext reconstruction.
                global _worker_problem, _worker_config, _worker_context
                _worker_problem = self.problem
                _worker_config = self.config
                _worker_context = (
                    context_for(self.problem)
                    if self.config.decode_cache
                    else None
                )
                if self.config.mode_cache:
                    # Materialise the parent's mode-result cache before
                    # forking: workers inherit its warm entries
                    # copy-on-write and keep their own copies from
                    # there on (hits/misses still reach the parent via
                    # the metric deltas shipped with each chunk).
                    mode_cache_for(self.problem, self.config)
                return multiprocessing.Pool(
                    processes=self.jobs,
                    initializer=_init_forked_worker,
                )
            payload = pickle.dumps(
                (
                    self.problem.omsm,
                    self.problem.architecture,
                    self.problem.technology,
                    self.config,
                )
            )
            return multiprocessing.Pool(
                processes=self.jobs,
                initializer=_init_worker,
                initargs=(payload,),
            )
        except Exception as exc:  # pragma: no cover - platform-dependent
            self._record_failure("creation", exc)
            return None

    def _create_async_pool(self) -> Optional[AsyncWorkStealingPool]:
        try:
            return AsyncWorkStealingPool(
                self.problem, self.config, self.jobs
            )
        except Exception as exc:  # pragma: no cover - platform-dependent
            self._record_failure("creation", exc)
            return None

    def close(self) -> None:
        """Shut the pool down gracefully (idempotent)."""
        if self._async is not None:
            # Outstanding speculation would otherwise finish unobserved
            # inside the pool's join: drain it so its busy time, cache
            # journals and discard counts are accounted first.
            self.cancel_speculation()
        if self._async is not None:
            self._stop_service_clock()
            self._async.close()
            self._async = None
        if self._pool is not None:
            self._stop_service_clock()
            try:
                self._pool.close()
                self._pool.join()
            except Exception:  # pragma: no cover - defensive
                self._pool.terminate()
            self._pool = None

    def terminate(self) -> None:
        """Hard-stop the pool without draining queued tasks.

        The shutdown path for abnormal exits (KeyboardInterrupt,
        errors): after an interrupt the pool's internal feeder thread
        may already be dead, in which case ``close()``'s join would
        block forever waiting for worker sentinels.
        """
        if self._async is not None:
            self._stop_service_clock()
            self._async.terminate()
            self._async = None
        if self._pool is not None:
            self._stop_service_clock()
            try:  # pragma: no cover - teardown robustness
                self._pool.terminate()
                self._pool.join()
            except Exception:
                pass
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is not None:
            self.terminate()
        else:
            self.close()

    @property
    def uses_pool(self) -> bool:
        return self._pool is not None or self._async is not None

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate_batch(self, genomes: Sequence) -> List[EvalRecord]:
        """Evaluate a batch of (already deduplicated) genomes, in order."""
        if not genomes:
            return []
        # Tiny batches (late generations run mostly from cache) are not
        # worth a round-trip through the pool: dispatch and result
        # pickling cost more than the evaluations.  Results are the
        # same either way, only the wall-clock differs.  The in-process
        # path books its time into the inprocess_* counters, never the
        # pool busy window.  A batch partly covered by outstanding
        # speculation always goes through the pool — the predicted
        # results are already paid for there.
        if self.uses_pool and (
            len(genomes) >= self.jobs
            or self._speculation_covers(genomes)
        ):
            try:
                if self._async is not None:
                    return self._evaluate_async(genomes)
                return self._evaluate_pooled(genomes)
            except Exception as exc:
                # The pool died (worker crash, interpreter teardown,
                # unpicklable surprise).  Retire it either way; then
                # raise WorkerPoolError or fall back to serial
                # evaluation for this and all future batches, per the
                # configured failure mode.
                if self._async is not None:
                    self._async.terminate()
                    self._async = None
                if self._pool is not None:
                    try:  # pragma: no cover - defensive
                        self._pool.terminate()
                    except Exception:
                        pass
                    self._pool = None
                self._record_failure("dispatch", exc)
        return self._evaluate_serial(genomes)

    def _evaluate_serial(self, genomes: Sequence) -> List[EvalRecord]:
        records, elapsed = evaluate_inprocess(
            self.problem, self.config, genomes
        )
        self.inprocess_eval_seconds += elapsed
        self.inprocess_evaluations += len(records)
        return records

    def _evaluate_async(self, genomes: Sequence) -> List[EvalRecord]:
        assert self._async is not None
        batch = self._async.evaluate(
            [genome.genes for genome in genomes],
            self.worker_phase_totals,
        )
        self.pool_busy_seconds += batch.busy_seconds
        self.pool_dispatch_seconds += batch.dispatch_seconds
        self.pool_steals += batch.steals
        self.speculation_hits = self._async.speculation_hits
        self.parallel_evaluations += len(batch.records)
        self.batches += 1
        REGISTRY.inc("engine_pool_batches_total")
        return batch.records

    # ------------------------------------------------------------------
    # Speculative evaluation (async pool only)
    # ------------------------------------------------------------------

    @property
    def supports_speculation(self) -> bool:
        """Whether predicted genomes can be dispatched ahead of time."""
        return self._async is not None

    def _speculation_covers(self, genomes: Sequence) -> bool:
        if self._async is None:
            return False
        return self._async.speculation_covers_any(
            [genome.genes for genome in genomes]
        )

    def speculate(self, genomes: Sequence) -> int:
        """Dispatch predicted genomes to the async pool ahead of time.

        Returns the number of speculative tasks issued (0 when no
        async pool is live).  A dispatch failure retires the pool and
        follows the configured failure mode, exactly like a batch
        dispatch failure — subsequent batches fall back in-process.
        """
        if self._async is None or not genomes:
            return 0
        try:
            issued = self._async.submit_speculative(
                [genome.genes for genome in genomes]
            )
            self.speculation_issued = self._async.speculation_issued
            return issued
        except Exception as exc:
            self._async.terminate()
            self._async = None
            self._record_failure("speculate", exc)
            return 0

    def cancel_speculation(self) -> None:
        """Retire outstanding speculation, folding its accounting in.

        Draining publishes the mispredictions' cache journals; their
        busy and window time is charged to the pool like any batch.
        """
        if self._async is None:
            return
        try:
            batch = self._async.cancel_speculation(
                self.worker_phase_totals
            )
        except Exception as exc:  # pragma: no cover - defensive
            self._async.terminate()
            self._async = None
            self._record_failure("speculate", exc)
            return
        self.pool_busy_seconds += batch.busy_seconds
        self.pool_dispatch_seconds += batch.dispatch_seconds
        self.speculation_discards = self._async.speculation_discards

    def _evaluate_pooled(self, genomes: Sequence) -> List[EvalRecord]:
        gene_tuples = [genome.genes for genome in genomes]
        dispatch_started = time.perf_counter()
        # Two chunks per job: small enough for the pool to balance load
        # across workers, large enough that per-chunk pickling/wakeup
        # overhead stays negligible (measured best on this workload).
        chunk_size = max(1, math.ceil(len(gene_tuples) / (self.jobs * 2)))
        chunks = [
            gene_tuples[start : start + chunk_size]
            for start in range(0, len(gene_tuples), chunk_size)
        ]
        # The dispatching process is a worker too: it evaluates the
        # final chunk itself while the pool drains the rest, instead of
        # blocking idle in map().  Its phase timings land in the global
        # PROFILER like any in-process evaluation.
        pending = self._pool.map_async(_eval_chunk, chunks[:-1])
        context = (
            context_for(self.problem) if self.config.decode_cache else None
        )
        local_records = [
            evaluate_genes(self.problem, genes, self.config, context)
            for genes in chunks[-1]
        ]
        results = pending.get()
        records: List[EvalRecord] = []
        for chunk_records, phase_delta, metrics_delta, busy in results:
            records.extend(chunk_records)
            self.pool_busy_seconds += busy
            for name, (seconds, calls) in phase_delta.items():
                prev_seconds, prev_calls = self.worker_phase_totals.get(
                    name, (0.0, 0)
                )
                self.worker_phase_totals[name] = (
                    prev_seconds + seconds,
                    prev_calls + calls,
                )
            # Fold the worker's metric delta into this process's
            # registry: the pool is transparent to observability.
            REGISTRY.merge(metrics_delta)
            REGISTRY.observe("engine_chunk_seconds", busy)
        self.parallel_evaluations += len(records)
        records.extend(local_records)
        self.pool_dispatch_seconds += (
            time.perf_counter() - dispatch_started
        )
        self.batches += 1
        REGISTRY.inc("engine_pool_batches_total")
        return records
