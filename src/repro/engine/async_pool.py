"""Work-stealing asynchronous evaluation with a shared mode cache.

The barrier pool in :mod:`repro.engine.parallel` splits each generation
into static chunks and blocks until the whole batch returns: one slow
chunk idles every other worker, and each fork worker's
:class:`~repro.eval.cache.ModeResultCache` diverges copy-on-write the
moment it inserts an entry the others never see.  This module replaces
both behaviours while keeping the results bit-identical:

**Work stealing.**  Genomes are dispatched one at a time through
``imap_unordered(chunksize=1)`` — the pool's task queue *is* the shared
deque, and a worker that finishes early simply pulls the next genome
instead of waiting behind a barrier.  Results carry their batch index
and are assembled in deterministic genome order, so ``jobs=1`` vs
``jobs=N`` (and async vs barrier) stay bit-identical: evaluation is a
pure function of the genome, and dispatch order can only change *when*
a result arrives, never *what* it is.

**Cache coherence.**  Each worker journals its mode-cache insertions
(:meth:`~repro.eval.cache.ModeResultCache.start_journal`) and ships the
journal back with every result.  The parent — acting as the cache
server — folds the entries into its own master cache (so serial and
local-search evaluations benefit too) and broadcasts them to every
*other* worker over a per-worker unbounded queue; workers drain their
queue before each task with non-blocking gets.  Entries are Ψ- and
probability-independent values, applied insert-if-absent without
touching hit/miss meters, so coherence is purely a performance channel:
it can never change a result, only how fast one is produced.

**Speculation.**  :meth:`AsyncWorkStealingPool.submit_speculative`
dispatches *predicted* genomes through a separate ``imap_unordered``
call while the parent is still breeding the real next generation.
Speculative tasks are tagged in their payload, evaluated identically
(their mode-cache journals publish either way), and buffered by gene
tuple on arrival; the next :meth:`evaluate` serves matching genomes
from the buffer instead of re-dispatching them.  Because evaluation is
a pure function of the genome, a served speculation is bit-identical to
an on-demand evaluation — speculation, like coherence, is purely a
performance channel.  Unconfirmed buffer entries persist across batches
(deeper probes may land generations later) until
:meth:`cancel_speculation` counts them as discards.  The dispatch
window used for pool utilisation re-bases onto the earliest outstanding
speculative submission, so idle-filling work is honestly charged as
capacity.

Worker identity (which broadcast queue a worker drains) is claimed from
a shared counter in the pool initializer.  A worker respawned after a
crash re-claims a slot modulo the worker count, which at worst shares a
queue between two processes — lost broadcasts degrade hit rate, never
correctness.
"""

from __future__ import annotations

import math
import multiprocessing
import multiprocessing.pool
import pickle
import queue
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.engine.profile import PROFILER, PhaseTotals
from repro.engine.records import EvalRecord, evaluate_genes
from repro.eval.cache import ModeResultCache, PublishedEntry, mode_cache_for
from repro.obs.metrics import REGISTRY, MetricsSnapshot
from repro.problem import Problem

# Worker-process state claimed in the pool initializer: this worker's
# broadcast slot and the queue it drains for cache updates published by
# its peers.
_worker_slot: int = -1
_worker_updates: Optional[Any] = None

#: Gene tuple of one genome — the identity speculation is keyed by.
GeneTuple = Tuple[str, ...]

#: One task payload: ``(batch index, genes, speculative)``.  Speculative
#: tasks carry index ``-1``; their identity is the gene tuple.
TaskPayload = Tuple[int, GeneTuple, bool]

#: One task result: ``(batch index, worker slot, record, profiler
#: delta, metrics delta, busy seconds, journalled cache insertions,
#: genes — echoed for speculative tasks, ``None`` otherwise)``.
TaskResult = Tuple[
    int,
    int,
    EvalRecord,
    PhaseTotals,
    MetricsSnapshot,
    float,
    List[PublishedEntry],
    Optional[GeneTuple],
]


def _init_async_worker(
    counter: Any,
    updates: Sequence[Any],
    payload: Optional[bytes],
) -> None:
    """Claim a worker slot and arm the cache journal.

    Delegates problem/config state to the :mod:`repro.engine.parallel`
    initializers (fork workers inherited it copy-on-write; spawn
    workers rebuild it from ``payload``), then claims the next free
    broadcast slot from the shared counter.
    """
    from repro.engine import parallel

    if payload is not None:
        parallel._init_worker(payload)
    else:
        parallel._init_forked_worker()
    global _worker_slot, _worker_updates
    with counter.get_lock():
        slot = counter.value
        counter.value += 1
    _worker_slot = slot % len(updates)
    _worker_updates = updates[_worker_slot]
    config = parallel._worker_config
    if config is not None and config.mode_cache:
        assert parallel._worker_problem is not None
        mode_cache_for(parallel._worker_problem, config).start_journal()


def _drain_updates(cache: ModeResultCache) -> None:
    """Apply every pending peer-published cache batch (non-blocking)."""
    if _worker_updates is None:
        return
    while True:
        try:
            entries = _worker_updates.get_nowait()
        except queue.Empty:
            return
        cache.apply_published(entries)


def _eval_one(payload: TaskPayload) -> TaskResult:
    """Evaluate one genome inside a pool worker (the stolen task body)."""
    from repro.engine import parallel

    # The busy window spans the whole task service — peer-update drain,
    # profiling bookkeeping and journal drain included — because that is
    # worker capacity spent on this task; only queue waits are idle.
    started = time.perf_counter()
    index, genes, speculative = payload
    problem = parallel._worker_problem
    config = parallel._worker_config
    assert problem is not None and config is not None
    cache = (
        mode_cache_for(problem, config) if config.mode_cache else None
    )
    if cache is not None:
        _drain_updates(cache)
    base = PROFILER.snapshot()
    metrics_base = REGISTRY.snapshot()
    if speculative:
        # The same evaluation, additionally attributed to the
        # `speculate` phase; the inner per-mode phases still record
        # themselves, so a confirmed prediction's phase profile matches
        # an on-demand evaluation's exactly, plus the speculate bucket.
        with PROFILER.phase("speculate"):
            record = evaluate_genes(
                problem, genes, config, parallel._worker_context
            )
    else:
        record = evaluate_genes(
            problem, genes, config, parallel._worker_context
        )
    published = cache.drain_journal() if cache is not None else []
    busy = time.perf_counter() - started
    return (
        index,
        _worker_slot,
        record,
        PROFILER.delta_since(base),
        REGISTRY.delta_since(metrics_base),
        busy,
        published,
        genes if speculative else None,
    )


@dataclass
class AsyncBatchResult:
    """What one work-stealing batch produced, parent-side.

    ``records`` is in genome order regardless of completion order;
    ``steals`` counts non-speculative tasks taken beyond an even static
    split (``sum over workers of max(0, taken − ceil(total / workers))``)
    — the work the barrier pool would have left stranded behind its
    slowest chunk.  ``speculation_hits`` counts batch slots served from
    the speculation buffer; ``speculation_discards`` counts buffered
    predictions abandoned by :meth:`AsyncWorkStealingPool.
    cancel_speculation`.
    """

    records: List[EvalRecord]
    busy_seconds: float = 0.0
    dispatch_seconds: float = 0.0
    steals: int = 0
    tasks_per_worker: Dict[int, int] = field(default_factory=dict)
    published_entries: int = 0
    speculation_hits: int = 0
    speculation_discards: int = 0


class AsyncWorkStealingPool:
    """A process pool dispatching single genomes with cache publication.

    Construction creates the worker processes (raising on any platform
    failure — the caller owns fallback policy); :meth:`evaluate` runs
    one batch; :meth:`submit_speculative` dispatches predicted genomes
    ahead of their batch; :meth:`close` / :meth:`terminate` end
    service.  One instance serves one :class:`ParallelEvaluator` for
    its lifetime.
    """

    def __init__(
        self, problem: Problem, config: Any, jobs: int
    ) -> None:
        self.problem = problem
        self.config = config
        self.jobs = jobs
        self.speculation_issued = 0
        self.speculation_hits = 0
        self.speculation_discards = 0
        self._master_cache: Optional[ModeResultCache] = (
            mode_cache_for(problem, config) if config.mode_cache else None
        )
        #: Results of completed speculative tasks, keyed by gene tuple,
        #: awaiting confirmation by a later batch.
        self._spec_buffer: Dict[GeneTuple, EvalRecord] = {}
        #: Gene tuples dispatched speculatively but not yet returned.
        self._spec_pending: Set[GeneTuple] = set()
        #: Live ``imap_unordered`` iterators of speculative submissions.
        self._spec_iters: List[Iterator[TaskResult]] = []
        #: Start of the current dispatch window: set by the earliest
        #: outstanding speculative submission so idle-filling work is
        #: charged as pool capacity; ``None`` between windows.
        self._window_started: Optional[float] = None
        counter = multiprocessing.Value("i", 0)
        # Unbounded queues with feeder threads: the parent's broadcast
        # put never blocks on a worker that is slow to drain, so the
        # result loop cannot deadlock against a full pipe.
        self._updates = [multiprocessing.Queue() for _ in range(jobs)]
        if multiprocessing.get_start_method() == "fork":
            from repro.engine import parallel

            parallel._worker_problem = problem
            parallel._worker_config = config
            parallel._worker_context = (
                parallel.context_for(problem)
                if config.decode_cache
                else None
            )
            payload: Optional[bytes] = None
        else:  # pragma: no cover - spawn platforms
            payload = pickle.dumps(
                (
                    problem.omsm,
                    problem.architecture,
                    problem.technology,
                    config,
                )
            )
        self._pool: Optional[multiprocessing.pool.Pool] = (
            multiprocessing.Pool(
                processes=jobs,
                initializer=_init_async_worker,
                initargs=(counter, self._updates, payload),
            )
        )

    # ------------------------------------------------------------------
    # Result absorption (shared by batch and speculative drains)
    # ------------------------------------------------------------------

    def _absorb(
        self,
        task: TaskResult,
        worker_phase_totals: Dict[Any, Tuple[float, int]],
        result: AsyncBatchResult,
    ) -> Tuple[int, EvalRecord, Optional[GeneTuple], int]:
        """Fold one task result into parent state.

        Merges the worker's profiler and metric deltas, applies and
        broadcasts published cache entries, and books busy time.
        Returns ``(index, record, speculative genes, worker slot)``.
        """
        (
            index,
            slot,
            record,
            phase_delta,
            metrics_delta,
            busy,
            published,
            spec_genes,
        ) = task
        result.busy_seconds += busy
        for name, (seconds, calls) in phase_delta.items():
            prev_seconds, prev_calls = worker_phase_totals.get(
                name, (0.0, 0)
            )
            worker_phase_totals[name] = (
                prev_seconds + seconds,
                prev_calls + calls,
            )
        REGISTRY.merge(metrics_delta)
        REGISTRY.observe("engine_task_seconds", busy)
        REGISTRY.inc("engine_pool_tasks_total", worker=str(slot))
        if published:
            result.published_entries += len(published)
            if self._master_cache is not None:
                self._master_cache.apply_published(published)
            for peer, updates in enumerate(self._updates):
                if peer != slot:
                    updates.put(published)
        return index, record, spec_genes, slot

    def _drain_speculation(
        self,
        worker_phase_totals: Dict[Any, Tuple[float, int]],
        result: AsyncBatchResult,
    ) -> None:
        """Absorb every outstanding speculative result into the buffer.

        Blocks until the speculative iterators are exhausted — their
        tasks were queued ahead of any batch now being dispatched, so
        workers finish them first anyway; journal entries publish here
        even for predictions that turn out wrong.
        """
        for iterator in self._spec_iters:
            for task in iterator:
                _, record, spec_genes, _ = self._absorb(
                    task, worker_phase_totals, result
                )
                assert spec_genes is not None
                self._spec_buffer[spec_genes] = record
        self._spec_iters.clear()
        self._spec_pending.clear()

    def _update_hit_rate_gauge(self) -> None:
        if self.speculation_issued:
            REGISTRY.set_gauge(
                "engine_speculation_hit_rate",
                self.speculation_hits / self.speculation_issued,
            )

    # ------------------------------------------------------------------
    # Speculative dispatch
    # ------------------------------------------------------------------

    def speculation_covers_any(
        self, gene_tuples: Sequence[GeneTuple]
    ) -> bool:
        """Whether any of these genomes has a speculative result coming."""
        if not self._spec_pending and not self._spec_buffer:
            return False
        return any(
            genes in self._spec_pending or genes in self._spec_buffer
            for genes in gene_tuples
        )

    def submit_speculative(
        self, gene_tuples: Sequence[GeneTuple]
    ) -> int:
        """Dispatch predicted genomes ahead of their batch.

        Genomes already speculated (outstanding or buffered) are
        skipped; the rest enter the pool's shared task queue through a
        dedicated ``imap_unordered`` call that a later
        :meth:`evaluate` or :meth:`cancel_speculation` drains.  Returns
        the number of tasks actually issued.
        """
        assert self._pool is not None
        fresh: List[GeneTuple] = []
        for genes in gene_tuples:
            if (
                genes in self._spec_pending
                or genes in self._spec_buffer
                or genes in fresh
            ):
                continue
            fresh.append(genes)
        if not fresh:
            return 0
        if self._window_started is None:
            self._window_started = time.perf_counter()
        payloads: List[TaskPayload] = [
            (-1, genes, True) for genes in fresh
        ]
        self._spec_iters.append(
            self._pool.imap_unordered(_eval_one, payloads, chunksize=1)
        )
        self._spec_pending.update(fresh)
        self.speculation_issued += len(fresh)
        REGISTRY.inc(
            "engine_speculation_issued_total", amount=len(fresh)
        )
        return len(fresh)

    def cancel_speculation(
        self, worker_phase_totals: Dict[Any, Tuple[float, int]]
    ) -> AsyncBatchResult:
        """Retire all speculative state, counting leftovers as discards.

        Outstanding tasks cannot be revoked from the pool's queue, so
        they are drained (publishing their cache journals — a
        misprediction still warms every cache) and then dropped with
        the rest of the buffer.  Returns an empty-records batch result
        carrying the busy/dispatch seconds and discard count to fold
        into the evaluator's accounting.
        """
        result = AsyncBatchResult(records=[])
        if not self._spec_iters and not self._spec_buffer:
            return result
        window_started = self._window_started
        self._window_started = None
        self._drain_speculation(worker_phase_totals, result)
        discards = len(self._spec_buffer)
        self._spec_buffer.clear()
        if discards:
            self.speculation_discards += discards
            result.speculation_discards = discards
            REGISTRY.inc(
                "engine_speculation_discards_total", amount=discards
            )
        if window_started is not None:
            result.dispatch_seconds = (
                time.perf_counter() - window_started
            )
        self._update_hit_rate_gauge()
        return result

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self,
        gene_tuples: Sequence[GeneTuple],
        worker_phase_totals: Dict[Any, Tuple[float, int]],
    ) -> AsyncBatchResult:
        """Run one batch through the shared task queue.

        Results merge as they land: records slot into their genome
        index, profiler deltas accumulate into ``worker_phase_totals``,
        metric deltas fold into the parent registry, and published
        cache entries are applied to the master cache then broadcast to
        every other worker.  Genomes covered by speculation are served
        from the buffer once the speculative iterators drain; only the
        uncovered remainder is dispatched.
        """
        assert self._pool is not None
        total = len(gene_tuples)
        records: List[Optional[EvalRecord]] = [None] * total
        result = AsyncBatchResult(records=[])
        window_started = self._window_started
        self._window_started = None
        if window_started is None:
            window_started = time.perf_counter()
        covered: List[Tuple[int, GeneTuple]] = []
        payloads: List[TaskPayload] = []
        for position, genes in enumerate(gene_tuples):
            if (
                genes in self._spec_buffer
                or genes in self._spec_pending
            ):
                covered.append((position, genes))
            else:
                payloads.append((position, genes, False))
        outstanding = len(payloads)
        REGISTRY.set_gauge("engine_pool_queue_depth", outstanding)
        iterator = (
            self._pool.imap_unordered(_eval_one, payloads, chunksize=1)
            if payloads
            else None
        )
        # Speculative tasks entered the queue first, so workers drain
        # them before batch tasks regardless; absorbing them first just
        # makes their records servable below.
        if self._spec_iters:
            self._drain_speculation(worker_phase_totals, result)
        if iterator is not None:
            for task in iterator:
                index, record, _, slot = self._absorb(
                    task, worker_phase_totals, result
                )
                records[index] = record
                result.tasks_per_worker[slot] = (
                    result.tasks_per_worker.get(slot, 0) + 1
                )
                outstanding -= 1
                REGISTRY.set_gauge(
                    "engine_pool_queue_depth", outstanding
                )
        served: Set[GeneTuple] = set()
        for position, genes in covered:
            records[position] = self._spec_buffer[genes]
            served.add(genes)
        for genes in served:
            del self._spec_buffer[genes]
        if served:
            result.speculation_hits = len(served)
            self.speculation_hits += len(served)
            REGISTRY.inc(
                "engine_speculation_hits_total", amount=len(served)
            )
            self._update_hit_rate_gauge()
        result.dispatch_seconds = time.perf_counter() - window_started
        # Steal accounting covers the batch's own tasks: an even static
        # split is only defined for work that existed at dispatch time.
        fair_share = math.ceil(max(1, len(payloads)) / self.jobs)
        result.steals = sum(
            max(0, taken - fair_share)
            for taken in result.tasks_per_worker.values()
        )
        if result.steals:
            REGISTRY.inc("engine_pool_steals_total", amount=result.steals)
        assert all(record is not None for record in records)
        result.records = records  # type: ignore[assignment]
        return result

    def _close_queues(self) -> None:
        for updates in self._updates:
            try:  # pragma: no cover - teardown robustness
                updates.cancel_join_thread()
                updates.close()
            except Exception:
                pass

    def close(self) -> None:
        """Graceful shutdown (idempotent)."""
        if self._pool is not None:
            try:
                self._pool.close()
                self._pool.join()
            except Exception:  # pragma: no cover - defensive
                self._pool.terminate()
            self._pool = None
        self._close_queues()

    def terminate(self) -> None:
        """Hard stop without draining queued tasks (abnormal exits)."""
        if self._pool is not None:
            try:  # pragma: no cover - teardown robustness
                self._pool.terminate()
                self._pool.join()
            except Exception:
                pass
            self._pool = None
        self._close_queues()
