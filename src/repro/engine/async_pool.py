"""Work-stealing asynchronous evaluation with a shared mode cache.

The barrier pool in :mod:`repro.engine.parallel` splits each generation
into static chunks and blocks until the whole batch returns: one slow
chunk idles every other worker, and each fork worker's
:class:`~repro.eval.cache.ModeResultCache` diverges copy-on-write the
moment it inserts an entry the others never see.  This module replaces
both behaviours while keeping the results bit-identical:

**Work stealing.**  Genomes are dispatched one at a time through
``imap_unordered(chunksize=1)`` — the pool's task queue *is* the shared
deque, and a worker that finishes early simply pulls the next genome
instead of waiting behind a barrier.  Results carry their batch index
and are assembled in deterministic genome order, so ``jobs=1`` vs
``jobs=N`` (and async vs barrier) stay bit-identical: evaluation is a
pure function of the genome, and dispatch order can only change *when*
a result arrives, never *what* it is.

**Cache coherence.**  Each worker journals its mode-cache insertions
(:meth:`~repro.eval.cache.ModeResultCache.start_journal`) and ships the
journal back with every result.  The parent — acting as the cache
server — folds the entries into its own master cache (so serial and
local-search evaluations benefit too) and broadcasts them to every
*other* worker over a per-worker unbounded queue; workers drain their
queue before each task with non-blocking gets.  Entries are Ψ- and
probability-independent values, applied insert-if-absent without
touching hit/miss meters, so coherence is purely a performance channel:
it can never change a result, only how fast one is produced.

Worker identity (which broadcast queue a worker drains) is claimed from
a shared counter in the pool initializer.  A worker respawned after a
crash re-claims a slot modulo the worker count, which at worst shares a
queue between two processes — lost broadcasts degrade hit rate, never
correctness.
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
import queue
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.profile import PROFILER, PhaseTotals
from repro.engine.records import EvalRecord, evaluate_genes
from repro.eval.cache import ModeResultCache, PublishedEntry, mode_cache_for
from repro.obs.metrics import REGISTRY, MetricsSnapshot
from repro.problem import Problem

# Worker-process state claimed in the pool initializer: this worker's
# broadcast slot and the queue it drains for cache updates published by
# its peers.
_worker_slot: int = -1
_worker_updates: Optional[Any] = None

#: One task result: ``(batch index, worker slot, record, profiler
#: delta, metrics delta, busy seconds, journalled cache insertions)``.
TaskResult = Tuple[
    int,
    int,
    EvalRecord,
    PhaseTotals,
    MetricsSnapshot,
    float,
    List[PublishedEntry],
]


def _init_async_worker(
    counter: Any,
    updates: Sequence[Any],
    payload: Optional[bytes],
) -> None:
    """Claim a worker slot and arm the cache journal.

    Delegates problem/config state to the :mod:`repro.engine.parallel`
    initializers (fork workers inherited it copy-on-write; spawn
    workers rebuild it from ``payload``), then claims the next free
    broadcast slot from the shared counter.
    """
    from repro.engine import parallel

    if payload is not None:
        parallel._init_worker(payload)
    else:
        parallel._init_forked_worker()
    global _worker_slot, _worker_updates
    with counter.get_lock():
        slot = counter.value
        counter.value += 1
    _worker_slot = slot % len(updates)
    _worker_updates = updates[_worker_slot]
    config = parallel._worker_config
    if config is not None and config.mode_cache:
        assert parallel._worker_problem is not None
        mode_cache_for(parallel._worker_problem, config).start_journal()


def _drain_updates(cache: ModeResultCache) -> None:
    """Apply every pending peer-published cache batch (non-blocking)."""
    if _worker_updates is None:
        return
    while True:
        try:
            entries = _worker_updates.get_nowait()
        except queue.Empty:
            return
        cache.apply_published(entries)


def _eval_one(payload: Tuple[int, Tuple[str, ...]]) -> TaskResult:
    """Evaluate one genome inside a pool worker (the stolen task body)."""
    from repro.engine import parallel

    # The busy window spans the whole task service — peer-update drain,
    # profiling bookkeeping and journal drain included — because that is
    # worker capacity spent on this task; only queue waits are idle.
    started = time.perf_counter()
    index, genes = payload
    problem = parallel._worker_problem
    config = parallel._worker_config
    assert problem is not None and config is not None
    cache = (
        mode_cache_for(problem, config) if config.mode_cache else None
    )
    if cache is not None:
        _drain_updates(cache)
    base = PROFILER.snapshot()
    metrics_base = REGISTRY.snapshot()
    record = evaluate_genes(
        problem, genes, config, parallel._worker_context
    )
    published = cache.drain_journal() if cache is not None else []
    busy = time.perf_counter() - started
    return (
        index,
        _worker_slot,
        record,
        PROFILER.delta_since(base),
        REGISTRY.delta_since(metrics_base),
        busy,
        published,
    )


@dataclass
class AsyncBatchResult:
    """What one work-stealing batch produced, parent-side.

    ``records`` is in genome order regardless of completion order;
    ``steals`` counts tasks taken beyond an even static split
    (``sum over workers of max(0, taken − ceil(total / workers))``) —
    the work the barrier pool would have left stranded behind its
    slowest chunk.
    """

    records: List[EvalRecord]
    busy_seconds: float = 0.0
    dispatch_seconds: float = 0.0
    steals: int = 0
    tasks_per_worker: Dict[int, int] = field(default_factory=dict)
    published_entries: int = 0


class AsyncWorkStealingPool:
    """A process pool dispatching single genomes with cache publication.

    Construction creates the worker processes (raising on any platform
    failure — the caller owns fallback policy); :meth:`evaluate` runs
    one batch; :meth:`close` / :meth:`terminate` end service.  One
    instance serves one :class:`ParallelEvaluator` for its lifetime.
    """

    def __init__(
        self, problem: Problem, config: Any, jobs: int
    ) -> None:
        self.problem = problem
        self.config = config
        self.jobs = jobs
        self._master_cache: Optional[ModeResultCache] = (
            mode_cache_for(problem, config) if config.mode_cache else None
        )
        counter = multiprocessing.Value("i", 0)
        # Unbounded queues with feeder threads: the parent's broadcast
        # put never blocks on a worker that is slow to drain, so the
        # result loop cannot deadlock against a full pipe.
        self._updates = [multiprocessing.Queue() for _ in range(jobs)]
        if multiprocessing.get_start_method() == "fork":
            from repro.engine import parallel

            parallel._worker_problem = problem
            parallel._worker_config = config
            parallel._worker_context = (
                parallel.context_for(problem)
                if config.decode_cache
                else None
            )
            payload: Optional[bytes] = None
        else:  # pragma: no cover - spawn platforms
            payload = pickle.dumps(
                (
                    problem.omsm,
                    problem.architecture,
                    problem.technology,
                    config,
                )
            )
        self._pool = multiprocessing.Pool(
            processes=jobs,
            initializer=_init_async_worker,
            initargs=(counter, self._updates, payload),
        )

    def evaluate(
        self,
        gene_tuples: Sequence[Tuple[str, ...]],
        worker_phase_totals: Dict[Any, Tuple[float, int]],
    ) -> AsyncBatchResult:
        """Run one batch through the shared task queue.

        Results merge as they land: records slot into their genome
        index, profiler deltas accumulate into ``worker_phase_totals``,
        metric deltas fold into the parent registry, and published
        cache entries are applied to the master cache then broadcast to
        every other worker.
        """
        total = len(gene_tuples)
        records: List[Optional[EvalRecord]] = [None] * total
        result = AsyncBatchResult(records=[])
        outstanding = total
        REGISTRY.set_gauge("engine_pool_queue_depth", outstanding)
        started = time.perf_counter()
        payloads = list(enumerate(gene_tuples))
        for task in self._pool.imap_unordered(
            _eval_one, payloads, chunksize=1
        ):
            (
                index,
                slot,
                record,
                phase_delta,
                metrics_delta,
                busy,
                published,
            ) = task
            records[index] = record
            result.busy_seconds += busy
            result.tasks_per_worker[slot] = (
                result.tasks_per_worker.get(slot, 0) + 1
            )
            for name, (seconds, calls) in phase_delta.items():
                prev_seconds, prev_calls = worker_phase_totals.get(
                    name, (0.0, 0)
                )
                worker_phase_totals[name] = (
                    prev_seconds + seconds,
                    prev_calls + calls,
                )
            REGISTRY.merge(metrics_delta)
            REGISTRY.observe("engine_task_seconds", busy)
            REGISTRY.inc("engine_pool_tasks_total", worker=str(slot))
            outstanding -= 1
            REGISTRY.set_gauge("engine_pool_queue_depth", outstanding)
            if published:
                result.published_entries += len(published)
                if self._master_cache is not None:
                    self._master_cache.apply_published(published)
                for peer, updates in enumerate(self._updates):
                    if peer != slot:
                        updates.put(published)
        result.dispatch_seconds = time.perf_counter() - started
        fair_share = math.ceil(total / self.jobs)
        result.steals = sum(
            max(0, taken - fair_share)
            for taken in result.tasks_per_worker.values()
        )
        if result.steals:
            REGISTRY.inc("engine_pool_steals_total", amount=result.steals)
        assert all(record is not None for record in records)
        result.records = records  # type: ignore[assignment]
        return result

    def _close_queues(self) -> None:
        for updates in self._updates:
            try:  # pragma: no cover - teardown robustness
                updates.cancel_join_thread()
                updates.close()
            except Exception:
                pass

    def close(self) -> None:
        """Graceful shutdown (idempotent)."""
        if self._pool is not None:
            try:
                self._pool.close()
                self._pool.join()
            except Exception:  # pragma: no cover - defensive
                self._pool.terminate()
            self._pool = None
        self._close_queues()

    def terminate(self) -> None:
        """Hard stop without draining queued tasks (abnormal exits)."""
        if self._pool is not None:
            try:  # pragma: no cover - teardown robustness
                self._pool.terminate()
                self._pool.join()
            except Exception:
                pass
            self._pool = None
        self._close_queues()
