"""Mapping-independent decode tables, hoisted out of the candidate path.

Every candidate evaluation used to re-derive the same data: per-task
implementation entries behind an ``O(genes)`` ``pe_of`` scan, task-graph
adjacency tuples rebuilt per access, ``links_between`` scans per
message, effective deadlines, same-type independence queries and the
per-(task, PE) voltage/duration tables of the DVS layer.  None of it
depends on the mapping string — only on the :class:`Problem`.

A :class:`DecodeContext` computes all of it exactly once (per process:
pool workers build their own at initialisation) and the evaluator's
phases read from plain dicts.  The fast paths replicate the original
float operations in the original order, so results are bit-identical
with and without the context — asserted by the engine test suite.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Tuple

from repro.architecture.processing_element import ProcessingElement
from repro.problem import Problem
from repro.scheduling.mobility import MobilityInfo
from repro.specification.task_graph import CommEdge

#: Soft cap on the memoised DVS voltage tables (segment durations vary
#: per schedule, so the memo can grow without bound on long runs).
_DVS_TABLE_CAP = 65536


class ModeDecodeData:
    """Per-mode immutable decode tables (see :class:`DecodeContext`)."""

    __slots__ = (
        "name",
        "task_names",
        "topo_order",
        "graph_rank",
        "task_types",
        "predecessors",
        "successors",
        "in_edges",
        "deadlines",
        "exec_times",
        "powers",
        "independent_same_type",
        "period",
    )

    def __init__(self, problem: Problem, mode) -> None:
        graph = mode.task_graph
        technology = problem.technology
        self.name: str = mode.name
        self.period: float = mode.period
        self.task_names: Tuple[str, ...] = graph.task_names
        self.topo_order: Tuple[str, ...] = graph.topological_order()
        self.graph_rank: Dict[str, int] = {
            name: index for index, name in enumerate(self.task_names)
        }
        self.task_types: Dict[str, str] = {
            task.name: task.task_type for task in graph
        }
        self.predecessors: Dict[str, Tuple[str, ...]] = {
            name: graph.predecessors(name) for name in self.task_names
        }
        self.successors: Dict[str, Tuple[str, ...]] = {
            name: graph.successors(name) for name in self.task_names
        }
        self.in_edges: Dict[str, Tuple[CommEdge, ...]] = {
            name: graph.in_edges(name) for name in self.task_names
        }
        self.deadlines: Dict[str, float] = {
            name: mode.effective_deadline(name) for name in self.task_names
        }

        self.exec_times: Dict[str, Dict[str, float]] = {}
        self.powers: Dict[str, Dict[str, float]] = {}
        for task_name, candidates in problem.gene_space(mode.name):
            task_type = self.task_types[task_name]
            times: Dict[str, float] = {}
            powers: Dict[str, float] = {}
            for pe_name in candidates:
                entry = technology.implementation(task_type, pe_name)
                times[pe_name] = entry.exec_time
                powers[pe_name] = entry.power
            self.exec_times[task_name] = times
            self.powers[task_name] = powers

        # Same-type independence: the core allocator asks, for tasks of
        # one type mapped to one hardware component, which group members
        # can run in parallel.  The relation only depends on the graph.
        self.independent_same_type: Dict[str, FrozenSet[str]] = {}
        by_type: Dict[str, List[str]] = {}
        for name in self.task_names:
            by_type.setdefault(self.task_types[name], []).append(name)
        for members in by_type.values():
            if len(members) < 2:
                continue
            for name in members:
                self.independent_same_type[name] = frozenset(
                    other
                    for other in members
                    if other != name and graph.independent(name, other)
                )


class DecodeContext:
    """All mapping-independent tables of one co-synthesis problem.

    Built once per process via :func:`context_for` (or explicitly with
    :meth:`build`) and threaded through
    :func:`~repro.synthesis.evaluator.evaluate_mapping`.
    """

    __slots__ = (
        "problem",
        "modes",
        "pes",
        "links_between",
        "hw_dvs_pes",
        "dvs_pes",
        "_dvs_tables",
    )

    def __init__(
        self,
        problem: Problem,
        modes: Dict[str, ModeDecodeData],
        pes: Dict[str, ProcessingElement],
        links_between: Dict[Tuple[str, str], tuple],
        hw_dvs_pes: FrozenSet[str],
        dvs_pes: FrozenSet[str] = frozenset(),
    ) -> None:
        self.problem = problem
        self.modes = modes
        self.pes = pes
        self.links_between = links_between
        self.hw_dvs_pes = hw_dvs_pes
        #: All DVS-enabled PEs — software and hardware alike (the
        #: hardware subset is `hw_dvs_pes`).
        self.dvs_pes = dvs_pes
        self._dvs_tables: Dict[
            Tuple[str, float, float],
            Tuple[Tuple[float, ...], Tuple[float, ...]],
        ] = {}

    @classmethod
    def build(cls, problem: Problem) -> "DecodeContext":
        architecture = problem.architecture
        modes = {
            mode.name: ModeDecodeData(problem, mode)
            for mode in problem.omsm.modes
        }
        pes = {pe.name: pe for pe in architecture.pes}
        links: Dict[Tuple[str, str], tuple] = {}
        names = [pe.name for pe in architecture.pes]
        for first in names:
            for second in names:
                if first == second:
                    continue
                links[(first, second)] = architecture.links_between(
                    first, second
                )
        hw_dvs = frozenset(
            pe.name
            for pe in architecture.hardware_pes()
            if pe.dvs_enabled
        )
        dvs = frozenset(
            pe.name for pe in architecture.pes if pe.dvs_enabled
        )
        return cls(problem, modes, pes, links, hw_dvs, dvs)

    def mode(self, mode_name: str) -> ModeDecodeData:
        return self.modes[mode_name]

    def duration_energy_tables(
        self, pe_name: str, duration: float, energy: float
    ) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """Memoised per-(PE, duration, energy) DVS voltage tables.

        Task-level tables repeat exactly across candidates (a task's
        nominal duration is fixed per PE choice); segment-level tables
        repeat whenever schedules coincide.  The memo is capped to keep
        long runs bounded.
        """
        key = (pe_name, duration, energy)
        tables = self._dvs_tables.get(key)
        if tables is None:
            from repro.dvs.voltage import duration_energy_tables

            pe = self.pes[pe_name]
            tables = duration_energy_tables(
                duration, energy, pe.voltage_levels, pe.threshold_voltage
            )
            if len(self._dvs_tables) >= _DVS_TABLE_CAP:
                self._dvs_tables.clear()
            self._dvs_tables[key] = tables
        return tables

    # ------------------------------------------------------------------
    # Fast evaluator phases
    # ------------------------------------------------------------------

    def compute_mobilities(
        self, mode_name: str, pe_by_task: Mapping[str, str]
    ) -> Dict[str, MobilityInfo]:
        """ASAP/ALAP analysis from the cached tables.

        Mirrors :func:`repro.scheduling.mobility.compute_mobilities`
        operation-for-operation (same traversal and accumulation order)
        so the produced floats are bit-identical.
        """
        data = self.modes[mode_name]
        order = data.topo_order
        exec_times = data.exec_times
        durations = {
            name: exec_times[name][pe_by_task[name]] for name in order
        }

        asap: Dict[str, float] = {}
        for name in order:
            arrival = 0.0
            for pred in data.predecessors[name]:
                arrival = max(arrival, asap[pred] + durations[pred])
            asap[name] = arrival

        alap: Dict[str, float] = {}
        for name in reversed(order):
            latest_finish = data.deadlines[name]
            for succ in data.successors[name]:
                latest_finish = min(latest_finish, alap[succ])
            alap[name] = latest_finish - durations[name]

        return {
            name: MobilityInfo(asap=asap[name], alap=alap[name])
            for name in order
        }


def context_for(problem: Problem) -> DecodeContext:
    """The problem's decode context, built on first use and memoised.

    Follows the ``_genome_layout`` pattern of the mapping encoding: the
    context is pure precomputation over an immutable problem, so one
    instance per :class:`Problem` object is always valid.
    """
    cached = getattr(problem, "_decode_context", None)
    if cached is None:
        cached = DecodeContext.build(problem)
        problem._decode_context = cached  # type: ignore[attr-defined]
    return cached
