"""The compact evaluation result shipped between processes.

The GA only needs a candidate's fitness and its constraint-violation
summary to drive selection and the repair mutations; the fully decoded
:class:`~repro.mapping.implementation.Implementation` (schedules, core
tables) is reconstructed once at the end for the best genome.  Keeping
pool results this small makes parallel dispatch cheap: a worker returns
a few floats and tuples of names, never a schedule or a problem
reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.obs.metrics import REGISTRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.decode_cache import DecodeContext
    from repro.mapping.implementation import Implementation
    from repro.problem import Problem
    from repro.synthesis.config import SynthesisConfig


@dataclass(frozen=True)
class EvalRecord:
    """Per-genome evaluation outcome (picklable, problem-free)."""

    fitness: float
    area_violating_pes: Tuple[str, ...] = ()
    timing_violating_modes: Tuple[str, ...] = ()
    transition_violating: bool = False
    feasible: bool = False


def record_from_implementation(
    implementation: Optional["Implementation"],
) -> EvalRecord:
    """Summarise one decoded implementation (``None`` = comm-infeasible).

    Every candidate evaluation in the system funnels through here —
    serial, cached-context or pool-worker alike — which makes it the
    one place to meter evaluation throughput and feasibility.
    """
    if implementation is None:
        REGISTRY.inc("engine_evaluations_total", outcome="infeasible")
        return EvalRecord(fitness=math.inf)
    metrics = implementation.metrics
    REGISTRY.inc(
        "engine_evaluations_total",
        outcome="feasible" if metrics.is_feasible else "violating",
    )
    return EvalRecord(
        fitness=metrics.fitness,
        area_violating_pes=tuple(sorted(metrics.area_violation)),
        timing_violating_modes=tuple(sorted(metrics.timing_violation)),
        transition_violating=bool(metrics.transition_violation),
        feasible=metrics.is_feasible,
    )


def evaluate_genes(
    problem: "Problem",
    genes: Sequence[str],
    config: "SynthesisConfig",
    context: Optional["DecodeContext"] = None,
) -> EvalRecord:
    """Evaluate one genome given as its raw gene tuple.

    This is the worker-side entry point: genomes cross the process
    boundary as plain string tuples (cheap pickles) and are rebuilt
    against the worker's own :class:`Problem` instance.
    """
    from repro.mapping.encoding import MappingString
    from repro.synthesis.evaluator import evaluate_mapping

    mapping = MappingString(problem, genes)
    implementation = evaluate_mapping(problem, mapping, config, context)
    return record_from_implementation(implementation)
