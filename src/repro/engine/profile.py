"""Lightweight perf instrumentation for the evaluation hot path.

A :class:`PhaseProfiler` accumulates wall-clock seconds and call counts
per named phase (mobility, cores, schedule, dvs, power).  The module
keeps one process-global instance, :data:`PROFILER`, that the evaluator
records into; worker processes each accumulate into their own copy and
ship deltas back with every result chunk, so the synthesizer can merge a
complete picture into :class:`PerfStats` regardless of where candidates
were evaluated.

The timers are two ``perf_counter`` calls per phase — cheap enough to
stay enabled unconditionally.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple

#: A snapshot/delta of accumulated phase data: name -> (seconds, calls).
PhaseTotals = Dict[str, Tuple[float, int]]


class PhaseProfiler:
    """Accumulates (seconds, calls) per named phase."""

    __slots__ = ("_seconds", "_calls")

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase execution (re-entrant accumulation)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record an externally measured phase duration."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + calls

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()

    def snapshot(self) -> PhaseTotals:
        """Current totals, safe to keep across further accumulation."""
        return {
            name: (self._seconds[name], self._calls[name])
            for name in self._seconds
        }

    def delta_since(self, base: PhaseTotals) -> PhaseTotals:
        """Accumulation that happened after ``base`` was snapshotted."""
        delta: PhaseTotals = {}
        for name, seconds in self._seconds.items():
            base_seconds, base_calls = base.get(name, (0.0, 0))
            extra_seconds = seconds - base_seconds
            extra_calls = self._calls[name] - base_calls
            if extra_calls > 0 or extra_seconds > 1e-12:
                delta[name] = (extra_seconds, extra_calls)
        return delta

    def merge(self, totals: Mapping[str, Tuple[float, int]]) -> None:
        """Fold another profiler's totals (or a delta) into this one."""
        for name, (seconds, calls) in totals.items():
            self.add(name, seconds, calls)


#: The process-global profiler the evaluator records into.
PROFILER = PhaseProfiler()


@dataclass
class PerfStats:
    """Per-run performance summary, exposed on ``SynthesisResult.perf``.

    Attributes
    ----------
    phase_seconds / phase_calls:
        Accumulated evaluator phase timings (mobility, cores, schedule,
        dvs, power) across the main process and all pool workers.
    evaluations:
        Full candidate evaluations actually performed (cache misses).
    cache_hits:
        Evaluations answered from the per-genome result cache.
    dedup_hits:
        Population slots collapsed by per-generation deduplication
        before they ever reached the cache or the pool.
    wall_time:
        Total optimisation wall-clock seconds.
    jobs:
        Configured worker count (1 = in-process serial evaluation).
    batches:
        Generation batches dispatched to the pool.
    parallel_evaluations:
        Evaluations that ran inside pool workers.
    pool_busy_seconds:
        Summed wall-clock seconds workers spent evaluating chunks.
    """

    phase_seconds: Dict[str, float] = field(default_factory=dict)
    phase_calls: Dict[str, int] = field(default_factory=dict)
    evaluations: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    wall_time: float = 0.0
    jobs: int = 1
    batches: int = 0
    parallel_evaluations: int = 0
    pool_busy_seconds: float = 0.0

    @property
    def evaluations_per_second(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return self.evaluations / self.wall_time

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of evaluation requests served without evaluating."""
        served = self.evaluations + self.cache_hits + self.dedup_hits
        if served == 0:
            return 0.0
        return (self.cache_hits + self.dedup_hits) / served

    @property
    def pool_utilisation(self) -> float:
        """Worker busy-time as a fraction of ``wall_time × jobs``."""
        if self.wall_time <= 0 or self.jobs <= 1:
            return 0.0
        return self.pool_busy_seconds / (self.wall_time * self.jobs)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (used by the benchmark harness)."""
        return {
            "phase_seconds": dict(self.phase_seconds),
            "phase_calls": dict(self.phase_calls),
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "dedup_hits": self.dedup_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "wall_time": self.wall_time,
            "evaluations_per_second": self.evaluations_per_second,
            "jobs": self.jobs,
            "batches": self.batches,
            "parallel_evaluations": self.parallel_evaluations,
            "pool_utilisation": self.pool_utilisation,
        }

    def merge_phase_totals(self, totals: Mapping[str, Tuple[float, int]]) -> None:
        for name, (seconds, calls) in totals.items():
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + seconds
            )
            self.phase_calls[name] = self.phase_calls.get(name, 0) + calls
