"""Lightweight perf instrumentation for the evaluation hot path.

A :class:`PhaseProfiler` accumulates wall-clock seconds and call counts
per named phase (mobility, cores, schedule, dvs, power).  The module
keeps one process-global instance, :data:`PROFILER`, that the evaluator
records into; worker processes each accumulate into their own copy and
ship deltas back with every result chunk, so the synthesizer can merge a
complete picture into :class:`PerfStats` regardless of where candidates
were evaluated.

Phases can additionally be attributed to one *operational mode*
(``PROFILER.phase("schedule", mode="gsm")``): per-mode buckets travel
through the same snapshot/delta/merge machinery (keys become
``(name, mode)`` tuples) and :class:`PerfStats` derives both the
aggregate per-phase totals and the per-mode breakdown from them, so the
mode buckets of a phase always sum exactly to its aggregate.  Work that
spans all modes at once (core allocation, the power model) is recorded
without a mode and lands in the reserved :data:`SHARED_MODE` bucket.

The timers are two ``perf_counter`` calls per phase — cheap enough to
stay enabled unconditionally.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

#: Phase identity: a bare name, or ``(name, mode)`` for mode-attributed
#: accumulation.
PhaseKey = Union[str, Tuple[str, str]]

#: A snapshot/delta of accumulated phase data: key -> (seconds, calls).
PhaseTotals = Dict[PhaseKey, Tuple[float, int]]

#: Pseudo-mode for phase work that spans all operational modes at once.
SHARED_MODE = "*"


def split_phase_key(key: PhaseKey) -> Tuple[str, Optional[str]]:
    """``(name, mode)`` of a phase key (mode ``None`` when unattributed)."""
    if isinstance(key, tuple):
        return key[0], key[1]
    return key, None


class PhaseProfiler:
    """Accumulates (seconds, calls) per named phase."""

    __slots__ = ("_seconds", "_calls")

    def __init__(self) -> None:
        self._seconds: Dict[PhaseKey, float] = {}
        self._calls: Dict[PhaseKey, int] = {}

    @contextmanager
    def phase(
        self, name: str, mode: Optional[str] = None
    ) -> Iterator[None]:
        """Time one phase execution (re-entrant accumulation)."""
        key: PhaseKey = name if mode is None else (name, mode)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._seconds[key] = self._seconds.get(key, 0.0) + elapsed
            self._calls[key] = self._calls.get(key, 0) + 1

    def add(
        self,
        name: str,
        seconds: float,
        calls: int = 1,
        mode: Optional[str] = None,
    ) -> None:
        """Record an externally measured phase duration."""
        key: PhaseKey = name if mode is None else (name, mode)
        self._seconds[key] = self._seconds.get(key, 0.0) + seconds
        self._calls[key] = self._calls.get(key, 0) + calls

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()

    def snapshot(self) -> PhaseTotals:
        """Current totals, safe to keep across further accumulation."""
        return {
            key: (self._seconds[key], self._calls[key])
            for key in self._seconds
        }

    def delta_since(self, base: PhaseTotals) -> PhaseTotals:
        """Accumulation that happened after ``base`` was snapshotted."""
        delta: PhaseTotals = {}
        for key, seconds in self._seconds.items():
            base_seconds, base_calls = base.get(key, (0.0, 0))
            extra_seconds = seconds - base_seconds
            extra_calls = self._calls[key] - base_calls
            if extra_calls > 0 or extra_seconds > 1e-12:
                delta[key] = (extra_seconds, extra_calls)
        return delta

    def merge(self, totals: Mapping[PhaseKey, Tuple[float, int]]) -> None:
        """Fold another profiler's totals (or a delta) into this one."""
        for key, (seconds, calls) in totals.items():
            name, mode = split_phase_key(key)
            self.add(name, seconds, calls, mode=mode)


#: The process-global profiler the evaluator records into.
PROFILER = PhaseProfiler()


@dataclass
class PerfStats:
    """Per-run performance summary, exposed on ``SynthesisResult.perf``.

    Attributes
    ----------
    phase_seconds / phase_calls:
        Accumulated evaluator phase timings (mobility, cores, schedule,
        dvs, power) across the main process and all pool workers.
    mode_phase_seconds / mode_phase_calls:
        The same timings split per operational mode
        (``phase -> mode -> value``).  Phases that run once across all
        modes appear under the :data:`SHARED_MODE` (``"*"``) bucket;
        per phase, the mode buckets sum exactly to the aggregate.
    evaluations:
        Full candidate evaluations actually performed (cache misses).
    cache_hits:
        Evaluations answered from the per-genome result cache.
    dedup_hits:
        Population slots collapsed by per-generation deduplication
        before they ever reached the cache or the pool.
    wall_time:
        Total optimisation wall-clock seconds.
    jobs:
        Configured worker count (1 = in-process serial evaluation).
    batches:
        Generation batches dispatched to the pool.
    parallel_evaluations:
        Evaluations that ran inside pool workers.
    pool_busy_seconds:
        Summed wall-clock seconds workers spent evaluating chunks.
    pool_workers:
        Worker processes actually placed in service (0 when no pool was
        ever created — including runs configured with ``jobs > 1``
        whose pool failed at creation).
    pool_service_seconds:
        Wall-clock seconds the pool was in service (creation until
        close, death or fallback).  Kept as the back-compat denominator
        basis of :attr:`pool_utilisation` for runs recorded before
        dispatch windows existed, so a mid-run serial fallback stops
        accruing capacity instead of reporting nonsense utilisation.
    pool_dispatch_seconds:
        Wall-clock seconds pool work was actually *outstanding* — the
        sum of per-batch dispatch windows (submit until the last result
        landed).  The preferred denominator basis of
        :attr:`pool_utilisation`: a pool idling between generations
        (GA bookkeeping, cache-hot batches that never dispatch) no
        longer dilutes the figure.
    pool_steals:
        Tasks workers pulled beyond an even static split — per batch,
        ``sum over workers of max(0, tasks_taken − ceil(total / N))``.
        Zero under the barrier pool's static chunking; positive counts
        are the work-stealing dynamic balancing paying off.
    pool_fallbacks:
        Pool failures that degraded the run to in-process evaluation.
    inprocess_evaluations / inprocess_eval_seconds:
        Evaluations (and their wall-clock) run in-process by the
        parallel evaluator — tiny batches below the dispatch threshold
        and post-fallback batches.  Booked separately from
        :attr:`pool_busy_seconds` so cache-hot late generations cannot
        inflate :attr:`pool_utilisation`.
    mode_cache_hits / mode_cache_misses / mode_cache_evictions:
        Per-mode stage-result cache activity of the incremental
        evaluation pipeline (:mod:`repro.eval`), summed over the main
        process and all pool workers via the run's metric delta.  All
        zero when ``SynthesisConfig.mode_cache`` is disabled.
    speculation_issued / speculation_hits / speculation_discards:
        Speculative next-generation evaluation activity on the async
        pool: predicted genomes dispatched ahead of their batch, batch
        slots served from the speculation buffer, and buffered
        predictions abandoned at run end.  All zero when
        ``SynthesisConfig.speculative`` is off or no async pool ran.
    """

    phase_seconds: Dict[str, float] = field(default_factory=dict)
    phase_calls: Dict[str, int] = field(default_factory=dict)
    mode_phase_seconds: Dict[str, Dict[str, float]] = field(
        default_factory=dict
    )
    mode_phase_calls: Dict[str, Dict[str, int]] = field(
        default_factory=dict
    )
    evaluations: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    wall_time: float = 0.0
    jobs: int = 1
    batches: int = 0
    parallel_evaluations: int = 0
    pool_busy_seconds: float = 0.0
    pool_workers: int = 0
    pool_service_seconds: float = 0.0
    pool_dispatch_seconds: float = 0.0
    pool_steals: int = 0
    pool_fallbacks: int = 0
    inprocess_evaluations: int = 0
    inprocess_eval_seconds: float = 0.0
    mode_cache_hits: int = 0
    mode_cache_misses: int = 0
    mode_cache_evictions: int = 0
    speculation_issued: int = 0
    speculation_hits: int = 0
    speculation_discards: int = 0

    @property
    def evaluations_per_second(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return self.evaluations / self.wall_time

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of evaluation requests served without evaluating."""
        served = self.evaluations + self.cache_hits + self.dedup_hits
        if served == 0:
            return 0.0
        return (self.cache_hits + self.dedup_hits) / served

    @property
    def mode_cache_hit_rate(self) -> float:
        """Fraction of per-mode stage lookups served from the cache."""
        looked_up = self.mode_cache_hits + self.mode_cache_misses
        if looked_up == 0:
            return 0.0
        return self.mode_cache_hits / looked_up

    @property
    def speculation_hit_rate(self) -> float:
        """Fraction of speculative dispatches a later batch confirmed.

        Exact-replay prediction (``speculation_depth=1``) confirms
        everything the run actually needed; unconfirmed leftovers at
        run end (convergence struck, or deeper heuristic probes) are
        the discard side of the ledger.
        """
        if self.speculation_issued == 0:
            return 0.0
        return self.speculation_hits / self.speculation_issued

    @property
    def pool_utilisation(self) -> float:
        """Worker busy-time as a fraction of the pool's *working* capacity.

        Capacity is ``pool_dispatch_seconds × pool_workers`` — the
        workers genuinely in service, for the time pool work was
        actually outstanding.  Time the pool sat idle between
        generations (GA bookkeeping, batches answered entirely from
        cache) is not capacity the evaluator could have used, so it no
        longer dilutes the figure.  Runs recorded before dispatch
        windows existed fall back to the old whole-service-window
        basis; a run that never had a pool reports 0.
        """
        window = self.pool_dispatch_seconds
        if window <= 0:
            window = self.pool_service_seconds
        capacity = window * self.pool_workers
        if capacity <= 0:
            return 0.0
        return self.pool_busy_seconds / capacity

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (used by the benchmark harness)."""
        return {
            "phase_seconds": dict(self.phase_seconds),
            "phase_calls": dict(self.phase_calls),
            "mode_phase_seconds": {
                phase: dict(modes)
                for phase, modes in self.mode_phase_seconds.items()
            },
            "mode_phase_calls": {
                phase: dict(modes)
                for phase, modes in self.mode_phase_calls.items()
            },
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "dedup_hits": self.dedup_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "wall_time": self.wall_time,
            "evaluations_per_second": self.evaluations_per_second,
            "jobs": self.jobs,
            "batches": self.batches,
            "parallel_evaluations": self.parallel_evaluations,
            "pool_utilisation": self.pool_utilisation,
            "pool_busy_seconds": self.pool_busy_seconds,
            "pool_workers": self.pool_workers,
            "pool_service_seconds": self.pool_service_seconds,
            "pool_dispatch_seconds": self.pool_dispatch_seconds,
            "pool_steals": self.pool_steals,
            "pool_fallbacks": self.pool_fallbacks,
            "inprocess_evaluations": self.inprocess_evaluations,
            "inprocess_eval_seconds": self.inprocess_eval_seconds,
            "mode_cache_hits": self.mode_cache_hits,
            "mode_cache_misses": self.mode_cache_misses,
            "mode_cache_evictions": self.mode_cache_evictions,
            "mode_cache_hit_rate": self.mode_cache_hit_rate,
            "speculation_issued": self.speculation_issued,
            "speculation_hits": self.speculation_hits,
            "speculation_discards": self.speculation_discards,
            "speculation_hit_rate": self.speculation_hit_rate,
        }

    def merge_phase_totals(
        self, totals: Mapping[PhaseKey, Tuple[float, int]]
    ) -> None:
        """Fold a :class:`PhaseProfiler` snapshot/delta into this summary.

        Mode-attributed keys feed both the aggregate per-phase totals
        and the per-mode breakdown, which keeps the two views exactly
        consistent by construction.
        """
        for key, (seconds, calls) in totals.items():
            name, mode = split_phase_key(key)
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + seconds
            )
            self.phase_calls[name] = self.phase_calls.get(name, 0) + calls
            bucket = mode if mode is not None else SHARED_MODE
            seconds_by_mode = self.mode_phase_seconds.setdefault(name, {})
            seconds_by_mode[bucket] = (
                seconds_by_mode.get(bucket, 0.0) + seconds
            )
            calls_by_mode = self.mode_phase_calls.setdefault(name, {})
            calls_by_mode[bucket] = calls_by_mode.get(bucket, 0) + calls
