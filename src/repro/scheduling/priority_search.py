"""Priority refinement for the list scheduler (inner-loop search).

The list scheduler's solution quality depends on its priority function;
ALAP urgency (the default) is good but not optimal under resource and
bus contention.  Following the spirit of the paper's inner-loop
optimisation (ref. [12] optimises communication mapping and schedules
per mode), this module hill-climbs over *priority perturbations*: task
priorities start at their ALAP values and are locally jittered; a
perturbation is kept when the resulting schedule improves the objective
(makespan by default — shorter schedules both meet deadlines more
easily and leave more slack for voltage scaling).

Disabled by default in the synthesis (it multiplies the inner-loop cost)
and exposed through ``SynthesisConfig.inner_loop_iterations``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Mapping, Optional, TYPE_CHECKING

from repro.problem import Problem
from repro.scheduling.list_scheduler import schedule_mode
from repro.scheduling.mobility import MobilityInfo, compute_mobilities
from repro.scheduling.schedule import ModeSchedule
from repro.specification.mode import Mode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mapping.cores import CoreAllocation


def refine_schedule(
    problem: Problem,
    mode: Mode,
    task_mapping: Mapping[str, str],
    cores: "CoreAllocation",
    iterations: int = 25,
    rng: Optional[random.Random] = None,
    objective: Optional[Callable[[ModeSchedule], float]] = None,
) -> ModeSchedule:
    """Hill-climb priorities for one mode; return the best schedule.

    Parameters
    ----------
    iterations:
        Number of perturbations to try (0 returns the plain ALAP
        schedule).
    objective:
        Schedule score to minimise; defaults to the makespan.
    rng:
        Random source (defaults to a fixed-seed generator so the result
        is deterministic for given inputs).
    """
    if rng is None:
        rng = random.Random(0)
    if objective is None:
        objective = lambda schedule: schedule.makespan  # noqa: E731

    graph = mode.task_graph

    def exec_time(task_name: str) -> float:
        task = graph.task(task_name)
        return problem.technology.implementation(
            task.task_type, task_mapping[task_name]
        ).exec_time

    base = compute_mobilities(mode, exec_time)
    priorities: Dict[str, float] = {
        name: info.alap for name, info in base.items()
    }

    def schedule_with(current: Mapping[str, float]) -> ModeSchedule:
        faked = {
            name: MobilityInfo(asap=base[name].asap, alap=value)
            for name, value in current.items()
        }
        return schedule_mode(
            problem, mode, task_mapping, cores, faked
        )

    best_schedule = schedule_with(priorities)
    best_score = objective(best_schedule)
    if len(graph) < 2:
        return best_schedule

    names = list(graph.task_names)
    spread = max(
        (info.alap for info in base.values()), default=1.0
    ) or 1.0

    for _ in range(max(0, iterations)):
        candidate = dict(priorities)
        # Jitter one or two task priorities by a fraction of the
        # schedule horizon; swapping urgency order between contending
        # tasks is exactly what this reaches.
        for _ in range(rng.choice((1, 2))):
            name = rng.choice(names)
            candidate[name] += rng.uniform(-0.25, 0.25) * spread
        schedule = schedule_with(candidate)
        score = objective(schedule)
        if score < best_score - 1e-15:
            best_score = score
            best_schedule = schedule
            priorities = candidate
    return best_schedule
